//! Deterministic case generation: the RNG, per-test seeding, config and
//! the case-failure error type.

use std::fmt;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Attempts a `prop_filter` may spend before giving up on a case.
    pub max_filter_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_filter_rejects: 1_000 }
    }
}

/// A failed test case (early return from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Stable seed per property name (FNV-1a), so every test draws its own
/// reproducible stream independent of declaration order.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The generator strategies draw from: xoroshiro128++, seeded via
/// SplitMix64. Small, fast, and good enough for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s0: u64,
    s1: u64,
}

impl TestRng {
    pub fn seed_from(seed: u64) -> Self {
        let mut state = seed;
        let mut split = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s0 = split();
        let mut s1 = split();
        if s0 == 0 && s1 == 0 {
            s1 = 1;
        }
        TestRng { s0, s1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let (s0, mut s1) = (self.s0, self.s1);
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s1 = s1.rotate_left(28);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let wide = self.next_u64() as u128 * n as u128;
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("alpha"), seed_for("beta"));
        assert_eq!(seed_for("alpha"), seed_for("alpha"));
    }

    #[test]
    fn below_is_bounded_and_reaches_ends() {
        let mut rng = TestRng::seed_from(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
