//! `any::<T>()`: default strategies per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    /// Mixes IEEE special values with wide-dynamic-range finite values,
    /// mirroring real proptest's habit of surfacing NaN/∞ edge cases.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => f64::MAX,
            6 => f64::MIN,
            7 => f64::MIN_POSITIVE,
            _ => {
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                let exponent = rng.below(601) as i32 - 300;
                sign * rng.uniform() * 10f64.powi(exponent)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_any_produces_specials_and_finites() {
        let mut rng = TestRng::seed_from(1);
        let samples: Vec<f64> = (0..2_000).map(|_| f64::arbitrary(&mut rng)).collect();
        assert!(samples.iter().any(|v| v.is_nan()));
        assert!(samples.iter().any(|v| v.is_infinite()));
        assert!(samples.iter().any(|v| v.is_finite() && *v != 0.0));
    }

    #[test]
    fn uint_any_spans_the_domain() {
        let mut rng = TestRng::seed_from(2);
        let bytes: Vec<u8> = (0..4_000).map(|_| u8::arbitrary(&mut rng)).collect();
        let distinct: std::collections::HashSet<u8> = bytes.iter().copied().collect();
        assert!(distinct.len() > 200, "only {} distinct bytes", distinct.len());
    }
}
