//! A mini regex-as-generator: enough of the syntax to serve string
//! strategies like `"[a-z ]{0,30}"`.
//!
//! Supported: literal characters, `[...]` classes with ranges, and the
//! quantifiers `{n}`, `{n,m}`, `*`, `+`, `?` (starred forms cap at 8
//! repetitions). Anything fancier panics loudly rather than generating
//! strings that silently fail to match.

use crate::test_runner::TestRng;

struct Element {
    /// The characters this element may produce.
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Element> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "reversed class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                i = close + 1;
                set
            }
            '\\' => {
                let escaped = *chars.get(i + 1).unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 2;
                vec![escaped]
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let parsed = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("exact quantifier");
                        (n, n)
                    }
                };
                i = close + 1;
                parsed
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "reversed quantifier in {pattern:?}");
        elements.push(Element { choices, min, max });
    }
    elements
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for element in parse(pattern) {
        let count = if element.max > element.min {
            element.min + rng.below((element.max - element.min + 1) as u64) as usize
        } else {
            element.min
        };
        for _ in 0..count {
            let pick = rng.below(element.choices.len() as u64) as usize;
            out.push(element.choices[pick]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_space_and_bounds() {
        let mut rng = TestRng::seed_from(3);
        for _ in 0..200 {
            let s = generate_matching("[a-z ]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed_from(4);
        let s = generate_matching("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
        assert!(s.len() <= 5);
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected() {
        let mut rng = TestRng::seed_from(5);
        let _ = generate_matching("a|b", &mut rng);
    }
}
