//! The [`Strategy`] trait and its adapters: how test inputs are built.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from the test RNG.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, fun }
    }

    /// Rejects values failing the predicate (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, fun: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), fun }
    }

    /// Feeds generated values into a second, value-dependent strategy.
    fn prop_flat_map<S2, F>(self, fun: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, fun }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Wraps a plain generation closure (used by `prop_compose!`).
pub struct FnStrategy<F, T>
where
    F: Fn(&mut TestRng) -> T,
{
    fun: F,
    _marker: PhantomData<fn() -> T>,
}

impl<F, T> FnStrategy<F, T>
where
    F: Fn(&mut TestRng) -> T,
{
    pub fn new(fun: F) -> Self {
        FnStrategy { fun, _marker: PhantomData }
    }
}

impl<F, T> Strategy for FnStrategy<F, T>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.fun)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    fun: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.fun)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    fun: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.generate(rng);
            if (self.fun)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive candidates", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    fun: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.fun)(self.inner.generate(rng)).generate(rng)
    }
}

/// A `Vec` of strategies is a strategy for a `Vec` of values, generated
/// element-wise in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.uniform()
    }
}

/// String literals act as character-class regex strategies
/// (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
