//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/property-test subset the workspace's test
//! suites use: `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range and collection
//! strategies, a mini character-class string strategy, and the
//! `prop_map`/`prop_filter`/`prop_flat_map` combinators.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a fixed per-test seed (fully deterministic runs, no
//! persistence files), and failing cases are reported without shrinking.
//! Every failure message carries the case number and seed so a failure
//! reproduces exactly by re-running the test.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};
}

/// Runs one property: `cases` generated inputs through `body`.
/// Used by the `proptest!` macro expansion; not public API in real
/// proptest, but keeping it a function keeps the macro small.
pub fn run_property<F>(name: &str, config: &test_runner::ProptestConfig, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let seed = test_runner::seed_for(name);
    let mut rng = test_runner::TestRng::seed_from(seed);
    for case in 0..config.cases {
        if let Err(e) = body(&mut rng) {
            panic!("property `{name}` failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

/// `proptest! { ... }`: a block of deterministic property tests.
#[macro_export]
macro_rules! proptest {
    // The internal rule must come first: the public catch-all below
    // matches any token stream (including `@with_config ...`), so trying
    // it first would re-wrap the dispatch forever.
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_compose! { fn name(outer...)(bindings in strategies...) -> T { ... } }`
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($p:ident: $pty:ty),* $(,)?)($($arg:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($p: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |prop_rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                $body
            })
        }
    };
}

/// `prop_oneof![a, b, c]`: uniform choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`: fail the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)`: fail the case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `prop_assert_ne!(left, right)`: fail the case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn point(scale: f64)(x in 0.0f64..1.0, y in 0.0f64..1.0) -> (f64, f64) {
            (x * scale, y * scale)
        }
    }

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(any::<u8>(), 0..4)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn composed_points_scale(p in point(10.0)) {
            prop_assert!((0.0..10.0).contains(&p.0));
            prop_assert!((0.0..10.0).contains(&p.1));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(any::<u8>(), 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn filter_upholds_predicate(
            v in any::<f64>().prop_filter("finite", |x| x.is_finite()),
        ) {
            prop_assert!(v.is_finite());
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(0u8), n))) {
            prop_assert!((1..5).contains(&v.len()));
        }

        #[test]
        fn string_regex_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_of_strategies_is_a_strategy(
            v in crate::collection::vec(any::<u8>(), 1..4).prop_flat_map(|seeds| {
                let parts: Vec<_> = seeds.iter().map(|_| point(1.0)).collect();
                parts
            }),
        ) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn tuples_generate_componentwise(pair in (0usize..2, 5u64..7)) {
            prop_assert!(pair.0 < 2);
            prop_assert!((5..7).contains(&pair.1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_form_compiles(v in small_vec()) {
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let config = ProptestConfig::with_cases(10);
            crate::run_property("determinism_probe", &config, |rng| {
                out.push(Strategy::generate(&(0u64..1000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_panic_with_case_info() {
        let config = ProptestConfig::with_cases(2);
        crate::run_property("always_fails", &config, |_| {
            Err(crate::test_runner::TestCaseError::fail("nope".to_string()))
        });
    }
}
