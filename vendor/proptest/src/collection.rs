//! Collection strategies: `proptest::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for generated collections: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { lo: range.start, hi: range.end }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, 0..10)` or `vec(element, 8)`: vectors of generated
/// elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
