//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact* API subset it consumes: `StdRng` seeded
//! from a `u64`, the `RngCore`/`SeedableRng`/`Rng` traits, `random::<f64>()`
//! and `random_range` over `u64` ranges. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality, fast, and fully deterministic
//! from the seed, which is all `netsim::rng::SimRng` requires (its tests
//! assert distributional properties and reproducibility, never exact
//! stream values).

use std::ops::{Range, RangeInclusive};

/// Core random-source trait: raw integer output and byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material via SplitMix64, the
    /// standard seeding procedure for the xoshiro family.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value of a type with a "standard" distribution
    /// (`f64` ⇒ uniform in `[0, 1)`).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait SampleStandard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw in `[0, n)` (Lemire's multiply-with-rejection).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let wide = x as u128 * n as u128;
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo as u64 == 0 && hi as u64 == <$t>::MAX as u64 && std::mem::size_of::<$t>() == 8 {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one degenerate orbit of xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
        assert_eq!(rng.random_range(4u64..5), 4);
        assert_eq!(rng.random_range(4u64..=4), 4);
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
