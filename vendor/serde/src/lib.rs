//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros and defines the minimal trait
//! surface the workspace actually calls: `netsim::packet`'s
//! `serde_bytes_compat` helper serializes payloads through
//! `<[u8]>::serialize` and `Vec::<u8>::deserialize`, so those two impls
//! are real; everything else is declaration-only.

pub use serde_derive::{Deserialize, Serialize};

/// Sink for serialized values. Only the byte-oriented entry point is
/// modelled; a real backend would add the full data-model methods.
pub trait Serializer: Sized {
    type Ok;
    type Error;

    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// Values that can drive a [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Source of deserialized values. Only the byte-buffer entry point is
/// modelled.
pub trait Deserializer<'de>: Sized {
    type Error;

    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
}

/// Values reconstructable from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for [u8] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecSink;

    impl Serializer for VecSink {
        type Ok = Vec<u8>;
        type Error = ();

        fn serialize_bytes(self, v: &[u8]) -> Result<Vec<u8>, ()> {
            Ok(v.to_vec())
        }
    }

    struct VecSource(Vec<u8>);

    impl<'de> Deserializer<'de> for VecSource {
        type Error = ();

        fn deserialize_byte_buf(self) -> Result<Vec<u8>, ()> {
            Ok(self.0)
        }
    }

    #[test]
    fn byte_roundtrip_through_traits() {
        let bytes = vec![1u8, 2, 3];
        let out = bytes.serialize(VecSink).unwrap();
        assert_eq!(out, bytes);
        let back = Vec::<u8>::deserialize(VecSource(out)).unwrap();
        assert_eq!(back, bytes);
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct DeriveSmoke {
        #[serde(with = "helper")]
        field: u32,
    }

    mod helper {}

    #[test]
    fn derive_macros_accept_helper_attributes() {
        // Compilation of `DeriveSmoke` above is the assertion.
    }
}
