//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] subset the packet model uses: an immutable,
//! cheaply-cloneable byte buffer. Cloning shares the underlying
//! allocation via `Arc`, which matters because simulated packets are
//! cloned on every hop and capture.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation is shared until content exists).
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi".to_vec());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"h\\x00\"");
    }
}
