//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] subset the packet model uses: an immutable,
//! cheaply-cloneable byte buffer. Cloning shares the underlying
//! allocation via `Arc`, which matters because simulated packets are
//! cloned on every hop and capture. [`Bytes::slice`] additionally
//! shares the allocation for sub-ranges, so TCP segmentation can carve
//! mss-sized payloads out of an application write without copying.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// An immutable, reference-counted byte buffer (a view into a shared
/// allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

/// All empty buffers share one allocation, so constructing empty
/// payloads (bare SYN/ACK/RST segments, probe datagrams) on a hot path
/// never touches the allocator.
static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes { data, offset: 0, len }
    }

    /// An empty buffer (shares a single process-wide allocation).
    pub fn new() -> Self {
        Bytes::from_arc(Arc::clone(EMPTY.get_or_init(|| Arc::from(&[][..]))))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// A view of `range` sharing this buffer's allocation (no copy).
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside the buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of bounds (len {})", self.len);
        Bytes { data: Arc::clone(&self.data), offset: self.offset + start, len: end - start }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi".to_vec());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn empty_buffers_share_one_allocation() {
        let a = Bytes::new();
        let b = Bytes::default();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn slices_share_storage_without_copying() {
        let a = Bytes::from((0u8..=99).collect::<Vec<u8>>());
        let mid = a.slice(10..20);
        assert_eq!(mid.len(), 10);
        assert_eq!(&mid[..], &(10u8..20).collect::<Vec<u8>>()[..]);
        // The view points into the parent's allocation.
        assert_eq!(mid.as_ref().as_ptr(), a.as_ref()[10..].as_ptr());
        // Slicing a slice composes offsets.
        let inner = mid.slice(5..);
        assert_eq!(&inner[..], &[15, 16, 17, 18, 19]);
        // Open-ended and full ranges.
        assert_eq!(a.slice(..).len(), 100);
        assert_eq!(a.slice(95..).len(), 5);
        assert!(a.slice(40..40).is_empty());
    }

    #[test]
    fn equality_and_hash_follow_contents_not_offsets() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Bytes::from(vec![0, 7, 7, 0]).slice(1..3);
        let b = Bytes::from(vec![7, 7]);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        assert!(Bytes::from(vec![1]) < Bytes::from(vec![2]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from(vec![1u8, 2, 3]).slice(2..5);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"h\\x00\"");
    }
}
