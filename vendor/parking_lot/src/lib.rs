//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` and `std::sync::RwLock` behind parking_lot's
//! poison-free `lock()`/`read()`/`write()` signatures (returning the
//! guard directly, recovering from poisoning), which is the API surface
//! the resource meter and the `ml::handle` swap slot consume.

use std::fmt;
use std::sync::Mutex as StdMutex;
use std::sync::RwLock as StdRwLock;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering the data if a holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a poison
/// error.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering the data if a writer
    /// panicked.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering the data if a holder
    /// panicked.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<u8> = Mutex::default();
        assert_eq!(format!("{m:?}"), "Mutex { data: 0 }");
    }

    #[test]
    fn rwlock_read_write() {
        let l = super::RwLock::new(1u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn rwlock_default_and_debug() {
        let l: super::RwLock<u8> = super::RwLock::default();
        assert_eq!(format!("{l:?}"), "RwLock { data: 0 }");
    }
}
