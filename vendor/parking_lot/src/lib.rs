//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free `lock()`
//! signature (returns the guard directly, recovering from poisoning),
//! which is the only API the resource meter consumes.

use std::fmt;
use std::sync::Mutex as StdMutex;

pub use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering the data if a holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<u8> = Mutex::default();
        assert_eq!(format!("{m:?}"), "Mutex { data: 0 }");
    }
}
