//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its model types with
//! `#[derive(Serialize, Deserialize)]` to document the wire-facing
//! surface, but nothing in the tree ever *invokes* those derived
//! implementations (persistence uses the hand-rolled `ml::codec` and CSV
//! writers). These macros therefore accept the derive syntax — including
//! `#[serde(...)]` helper attributes — and expand to nothing, which keeps
//! every annotated type compiling without a code generator.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
