//! Offline stand-in for `rayon`.
//!
//! Supplies the fork-join primitive the ML layer builds on:
//! [`join`] runs two closures potentially in parallel (scoped threads, so
//! borrows work exactly like rayon's) and [`current_num_threads`]
//! reports the parallelism budget, honouring `RAYON_NUM_THREADS` like
//! the real crate. There is no work-stealing pool — callers are expected
//! to split work coarsely (the `ml::par` helpers do), at which point a
//! scoped thread per branch costs microseconds against the
//! hundreds-of-milliseconds training tasks it parallelizes.

use std::sync::OnceLock;

/// Runs both closures, the second on a freshly scoped thread when the
/// parallelism budget allows, and returns both results. Panics in either
/// closure propagate to the caller, as with real rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle_b = scope.spawn(oper_b);
        let ra = oper_a();
        match handle_b.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The number of threads `join` may use, mirroring rayon's global-pool
/// sizing: `RAYON_NUM_THREADS` when set to a positive integer, otherwise
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let data = [1u64, 2, 3, 4];
        let (a, b) = join(|| data[..2].iter().sum::<u64>(), || data[2..].iter().sum::<u64>());
        assert_eq!((a, b), (3, 7));
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn thread_budget_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
