//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/builder API of the real crate (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_with_input`) but measures
//! simply: per benchmark it warms up once, sizes an iteration batch to a
//! time budget, takes `sample_size` samples, and reports the fastest
//! sample's mean nanoseconds-per-iteration (minimum-of-means is robust
//! against scheduler noise). Results print to stdout and accumulate in a
//! process-global registry; setting `CRITERION_JSON_OUT=<path>` writes
//! them as a JSON array at exit of `criterion_main!`, which is how the
//! repo's `BENCH_ml.json` trajectory file is produced.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` or `group/function/param`.
    pub id: String,
    /// Nanoseconds per iteration (fastest sample mean).
    pub ns_per_iter: f64,
    /// Total iterations executed across all samples.
    pub iterations: u64,
}

/// Drains every result recorded so far (used by custom bench mains that
/// post-process timings).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap_or_else(|e| e.into_inner()))
}

fn record(result: BenchResult) {
    println!(
        "{:<55} {:>14}/iter ({} iters)",
        result.id,
        format_ns(result.ns_per_iter),
        result.iterations
    );
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push(result);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Writes all accumulated results to `CRITERION_JSON_OUT` if set.
/// Called by `criterion_main!` after every group has run.
pub fn write_json_summary() {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else { return };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.ns_per_iter,
            r.iterations,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write {path}: {e}");
    }
}

/// Identifies a parameterized benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs closures and accumulates timing samples.
pub struct Bencher {
    sample_size: usize,
    /// (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via a sink so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch sizing: target ~40ms per sample, at least 1 iter.
        let warmup_start = Instant::now();
        let _keep = routine();
        let once = warmup_start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (Duration::from_millis(40).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push((start.elapsed(), per_sample));
        }
    }

    fn best_ns_per_iter(&self) -> (f64, u64) {
        let total: u64 = self.samples.iter().map(|(_, n)| n).sum();
        let best = self
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .fold(f64::INFINITY, f64::min);
        (best, total)
    }
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher { sample_size: self.criterion.sample_size, samples: Vec::new() };
        f(&mut bencher);
        let (ns, iters) = bencher.best_ns_per_iter();
        record(BenchResult { id: full, ns_per_iter: ns, iterations: iters });
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; command-line parsing is not
    /// modelled.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        let (ns, iters) = bencher.best_ns_per_iter();
        record(BenchResult { id: id.into_id(), ns_per_iter: ns, iterations: iters });
        self
    }
}

/// Re-export so `criterion::black_box` callers keep working; benches in
/// this repo import `std::hint::black_box` directly.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn harness_records_results() {
        let mut c = Criterion::default().sample_size(3);
        smoke(&mut c);
        let results = take_results();
        assert!(results.iter().any(|r| r.id == "smoke/sum"));
        assert!(results.iter().any(|r| r.id == "smoke/sum_n/50"));
        assert!(results.iter().any(|r| r.id == "top_level"));
        assert!(results.iter().all(|r| r.ns_per_iter >= 0.0 && r.iterations > 0));
    }
}
