//! Canned experiment runners: one function per table/figure of the paper
//! (the per-experiment index lives in DESIGN.md §4).
//!
//! The paper's runs are 10 minutes of capture + 5 minutes of live
//! detection on a physical laptop; ours are virtual-time runs whose
//! durations scale via [`ExperimentScale`]. Crucially, the live run is a
//! *fresh deployment with a different seed and shifted traffic
//! intensities* — like the paper's separate detection run — which is the
//! distribution shift that exposes the RF's brittleness on
//! window-statistical features (Table I).

use capture::dataset::ClassCounts;
use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ids::realtime::DetectionLog;
use ids::resources::SustainabilityReport;
use ml::cnn::CnnConfig;
use ml::kmeans::KMeansConfig;
use ml::metrics::MetricsReport;
use ml::rf::{ForestConfig, TreeConfig};
use netsim::rng::SimRng;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::scenario::{
    rotation, CpuPressureSpec, FaultPlanConfig, JitterSpec, LifecycleTarget, LinkFlapSpec,
    LossRampSpec, RebootSpec, ScenarioConfig, ThrottleSpec,
};
use crate::testbed::{LiveReport, ServingRunReport, ServingTenantTarget, Testbed};

/// How long the capture and detection phases run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Capture (training) phase length in virtual seconds.
    pub capture_secs: u64,
    /// Live detection phase length in virtual seconds.
    pub live_secs: u64,
    /// Cap on training samples after feature extraction.
    pub max_train_samples: usize,
    /// CNN training epochs.
    pub cnn_epochs: usize,
}

impl ExperimentScale {
    /// Fast profile for tests (seconds of wall-clock).
    pub fn quick() -> Self {
        ExperimentScale { capture_secs: 90, live_secs: 70, max_train_samples: 4_000, cnn_epochs: 4 }
    }

    /// The swarm-testing profile: the shortest run that still trains a
    /// two-class model and pushes a handful of windows through the live
    /// IDS. A thousand-seed swarm must finish locally in minutes.
    pub fn swarm() -> Self {
        ExperimentScale { capture_secs: 30, live_secs: 30, max_train_samples: 1_500, cnn_epochs: 1 }
    }

    /// The default benchmarking profile.
    pub fn standard() -> Self {
        ExperimentScale { capture_secs: 140, live_secs: 70, max_train_samples: 12_000, cnn_epochs: 6 }
    }

    /// Durations matching the paper's 10 min + 5 min runs.
    pub fn paper() -> Self {
        ExperimentScale {
            capture_secs: 600,
            live_secs: 300,
            max_train_samples: 40_000,
            cnn_epochs: 8,
        }
    }
}

/// The training-run scenario.
pub fn training_scenario(seed: u64, capture_secs: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::paper_default(seed);
    config.attacks = attack_plan(capture_secs, 8, 140, 12, 25);
    config
}

/// The detection-run scenario: same topology, different seed, shifted
/// intensities — the out-of-training-distribution conditions of a
/// separate live run. The benign side is much busier (every device runs
/// the full three-protocol client mix with shorter think times) while
/// the floods are *slower-and-longer* per bot, so live window volumes
/// land in the gap between the two training clusters. Basic per-packet
/// features keep their meaning, but decision trees cannot extrapolate
/// into that unseen interior and the RF's axis-aligned thresholds flip
/// whole windows — the mechanism behind Table I's RF collapse — whereas
/// centroid distances (K-Means) and a smooth learned decision function
/// (CNN) degrade gracefully.
pub fn detection_scenario(seed: u64, live_secs: u64, epoch_offset_secs: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::paper_default(seed ^ 0x5eed_0fde_7ec7);
    // The live run happens *after* the training run on the same
    // continuing clock (the paper's separate 5-minute detection run):
    // its attacks start `epoch_offset_secs` in, once the training
    // epoch has elapsed, and are phase-shifted relative to training.
    config.attacks = attack_plan(live_secs, epoch_offset_secs + 16, 34, 16, 24);
    config.clients_per_device = 3;
    config.workload.http_think_mean *= 0.25;
    config.workload.ftp_think_mean *= 0.5;
    config.workload.video_think_mean *= 0.5;
    config
}

/// Evenly spaced SYN/ACK/UDP rotation over the
/// `[first_start, first_start + run_secs]` span, leaving a quiet tail.
fn attack_plan(
    run_secs: u64,
    first_start: u64,
    pps: u32,
    duration: u32,
    spacing: u64,
) -> Vec<crate::scenario::AttackPhase> {
    let end = first_start + run_secs;
    let mut starts = Vec::new();
    let mut t = first_start;
    while t + duration as u64 + 8 < end {
        starts.push(t);
        t += spacing;
    }
    if starts.is_empty() {
        starts.push(end.saturating_sub(duration as u64 + 3).max(1));
    }
    rotation(&starts, duration, pps)
}

/// The three model profiles evaluated in Tables I and II, mirroring the
/// paper's toolchain defaults (scikit-learn's unbounded-depth forests, a
/// compact TensorFlow CNN, U-K-Means).
pub fn paper_models(scale: &ExperimentScale) -> Vec<ModelKind> {
    vec![
        ModelKind::RandomForest(ForestConfig {
            n_trees: 60,
            tree: TreeConfig {
                max_depth: 22,
                min_samples_split: 2,
                max_features: None,
                threshold_candidates: 24,
            },
            bootstrap: true,
        }),
        ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ModelKind::Cnn(CnnConfig { epochs: scale.cnn_epochs, ..CnnConfig::default() }),
    ]
}

/// Everything one full evaluation produces: Table I, Table II, the
/// dataset statistics (§IV-D) and the per-second accuracy series.
#[derive(Debug)]
pub struct FullReport {
    /// Composition of the training capture (E3).
    pub dataset: ClassCounts,
    /// Duration of the training capture in virtual seconds.
    pub capture_secs: f64,
    /// Per-model results.
    pub models: Vec<ModelReport>,
}

/// One model's end-to-end results.
#[derive(Debug)]
pub struct ModelReport {
    /// Model display name ("RF", "K-Means", "CNN").
    pub name: &'static str,
    /// Train-time holdout metrics (E5: §IV-D "training metrics").
    pub train_metrics: MetricsReport,
    /// Samples used for fitting.
    pub train_samples: usize,
    /// Real-time per-window log (E1 / E4).
    pub log: DetectionLog,
    /// Sustainability row (E2 / Table II).
    pub sustainability: SustainabilityReport,
}

impl ModelReport {
    /// The Table I cell: average real-time accuracy in percent.
    pub fn accuracy_percent(&self) -> f64 {
        self.log.mean_accuracy() * 100.0
    }
}

/// Runs the complete evaluation: one training capture, three model
/// trainings, and one (identical, same-seed) live deployment per model.
pub fn run_full_evaluation(seed: u64, scale: &ExperimentScale) -> FullReport {
    let capture = run_training_capture(seed, scale);
    let dataset = capture.class_counts();
    let capture_secs = capture.duration_secs();

    let models = paper_models(scale)
        .into_iter()
        .map(|kind| {
            let ids_config = IdsConfig {
                max_train_samples: scale.max_train_samples,
                ..IdsConfig::default()
            };
            let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
            let outcome = TrainedIds::train(&capture, &kind, ids_config, &mut rng)
                .expect("training capture contains both classes");
            // Fresh live deployment; the same detection seed for every
            // model makes the packet streams identical across models.
            // The detection epoch starts after the training epoch has
            // elapsed on the continuing clock (as in the paper's
            // back-to-back runs), so live timestamps exceed trained ones.
            let epoch_offset = scale.capture_secs + 5;
            let mut live = Testbed::deploy(detection_scenario(seed, scale.live_secs, epoch_offset));
            live.run_infection_lead();
            let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
            let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);
            ModelReport {
                name: kind.name(),
                train_metrics: outcome.holdout_metrics,
                train_samples: outcome.train_samples,
                log: report.log,
                sustainability: report.sustainability,
            }
        })
        .collect();

    FullReport { dataset, capture_secs, models }
}

/// E8 (§V extension): evaluates the paper's *planned* additional models
/// — SVM, Isolation Forest and an autoencoder — in the identical
/// capture-train-live pipeline as Table I, alongside the original three.
pub fn run_extended_evaluation(seed: u64, scale: &ExperimentScale) -> FullReport {
    let capture = run_training_capture(seed, scale);
    let dataset = capture.class_counts();
    let capture_secs = capture.duration_secs();

    let mut kinds = paper_models(scale);
    kinds.push(ModelKind::Svm(Default::default()));
    kinds.push(ModelKind::IsolationForest(Default::default()));
    kinds.push(ModelKind::Autoencoder(Default::default()));

    let models = kinds
        .into_iter()
        .map(|kind| {
            let ids_config = IdsConfig {
                max_train_samples: scale.max_train_samples,
                ..IdsConfig::default()
            };
            let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
            let outcome = TrainedIds::train(&capture, &kind, ids_config, &mut rng)
                .expect("training capture contains both classes");
            let epoch_offset = scale.capture_secs + 5;
            let mut live = Testbed::deploy(detection_scenario(seed, scale.live_secs, epoch_offset));
            live.run_infection_lead();
            let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
            let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);
            ModelReport {
                name: kind.name(),
                train_metrics: outcome.holdout_metrics,
                train_samples: outcome.train_samples,
                log: report.log,
                sustainability: report.sustainability,
            }
        })
        .collect();

    FullReport { dataset, capture_secs, models }
}

/// The outcome of the federated-learning experiment (E9).
#[derive(Debug)]
pub struct FederatedReport {
    /// Coordinator-holdout accuracy after each FedAvg round.
    pub round_accuracy: Vec<f64>,
    /// Live real-time accuracy of the federated global model (%).
    pub federated_live_percent: f64,
    /// Live real-time accuracy of the centrally trained CNN (%).
    pub centralized_live_percent: f64,
    /// Number of participating clients.
    pub clients: usize,
}

/// E9 (§VI future work): emulates the FL-based NIDS the paper plans —
/// several monitoring sites capture their own traffic (separate testbed
/// deployments with different seeds), train the shared CNN locally, and
/// only exchange parameters (FedAvg). The federated global model is then
/// pitted against a centrally trained CNN on the same live run.
pub fn run_federated_experiment(
    seed: u64,
    scale: &ExperimentScale,
    clients: usize,
) -> FederatedReport {
    use ids::federated::{train_federated, FederatedConfig};

    // Each client is an independent site: same topology (so addresses
    // transfer), different seed.
    let shards: Vec<capture::dataset::Dataset> = (0..clients)
        .map(|i| run_training_capture(seed.wrapping_add(i as u64 * 101), scale))
        .collect();
    let holdout = run_training_capture(seed.wrapping_add(7_777), scale);

    let mut rng = SimRng::seed_from(seed ^ 0xfed);
    let fed_config = FederatedConfig {
        rounds: 5,
        local_epochs: scale.cnn_epochs.max(2) / 2 + 1,
        cnn: CnnConfig { ..CnnConfig::default() },
        window_secs: 1,
    };
    let outcome =
        train_federated(&shards, &holdout, &fed_config, &mut rng).expect("clients have both classes");
    let round_accuracy: Vec<f64> = outcome.round_metrics.iter().map(|m| m.accuracy).collect();

    let ids_config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let federated_ids =
        TrainedIds::from_parts(Box::new(outcome.global), outcome.scaler, ids_config);

    // Centralised baseline: the ordinary pipeline on the first shard.
    let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
    let central = TrainedIds::train(
        &shards[0],
        &ModelKind::Cnn(CnnConfig { epochs: scale.cnn_epochs, ..CnnConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("shard has both classes");

    let epoch_offset = scale.capture_secs + 5;
    let live_accuracy = |ids: TrainedIds| {
        let mut live = Testbed::deploy(detection_scenario(seed, scale.live_secs, epoch_offset));
        live.run_infection_lead();
        let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
        let report = live.run_live(SimDuration::from_secs(scale.live_secs), ids);
        report.log.mean_accuracy() * 100.0
    };

    FederatedReport {
        round_accuracy,
        federated_live_percent: live_accuracy(federated_ids),
        centralized_live_percent: live_accuracy(central.ids),
        clients,
    }
}

/// One vector's live-detection outcome in the detectability comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorDetectability {
    /// The attack vector (display name).
    pub vector: String,
    /// Mean real-time accuracy (%).
    pub accuracy_percent: f64,
    /// Malicious-packet recall over the whole run (%): the fraction of
    /// the flood's packets the IDS flagged.
    pub malicious_recall_percent: f64,
}

/// E10 (extension): per-vector detectability. The IDS trains on the
/// paper's three vectors, then faces live runs that each use a single
/// vector — including the HTTP flood the paper defers because it
/// "necessitates additional application-level analysis". The expected
/// shape: SYN/ACK/UDP floods remain detectable; the HTTP flood (real
/// GET requests over real connections) is much harder for the
/// flow-statistics IDS.
pub fn run_vector_detectability(seed: u64, scale: &ExperimentScale) -> Vec<VectorDetectability> {
    use botnet::commands::AttackVector;
    let capture = run_training_capture(seed, scale);
    let ids_config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };

    AttackVector::EXTENDED
        .iter()
        .map(|&vector| {
            let epoch_offset = scale.capture_secs + 5;
            let mut config = detection_scenario(seed, scale.live_secs, epoch_offset);
            // Single-vector schedule at the same cadence.
            for phase in &mut config.attacks {
                phase.vector = vector;
                if vector == AttackVector::HttpFlood {
                    phase.pps = 120; // requests/s per bot
                }
            }
            let mut live = Testbed::deploy(config);
            live.run_infection_lead();
            let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
            // Training is deterministic in the seed, so re-fitting here
            // yields the *identical* model for every vector — one
            // deployed IDS facing each attack in turn.
            let mut rng2 = SimRng::seed_from(seed ^ 0x7ea1);
            let fresh = TrainedIds::train(
                &capture,
                &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
                ids_config,
                &mut rng2,
            )
            .expect("training capture contains both classes");
            let report = live.run_live(SimDuration::from_secs(scale.live_secs), fresh.ids);
            VectorDetectability {
                vector: vector.to_string(),
                accuracy_percent: report.log.mean_accuracy() * 100.0,
                malicious_recall_percent: report
                    .log
                    .malicious_recall()
                    .map_or(f64::NAN, |r| r * 100.0),
            }
        })
        .collect()
}

/// The detection scenario under chaos: the standard live run plus a
/// full fault plan — a bridge outage mid-flood, a transient loss ramp,
/// a latency-jitter ramp, a bandwidth throttle, and a CPU-pressure
/// spike on the IDS node strong enough to drive windows into
/// `degraded`. All offsets are relative to the end of the infection
/// lead, scaled to land inside the live phase.
pub fn chaos_scenario(seed: u64, live_secs: u64, epoch_offset_secs: u64) -> ScenarioConfig {
    let mut config = detection_scenario(seed, live_secs, epoch_offset_secs);
    let live_start = epoch_offset_secs; // live phase begins after the epoch gap
    let at = |frac: f64| SimDuration::from_secs_f64(live_start as f64 + live_secs as f64 * frac);
    config.faults = FaultPlanConfig {
        flaps: vec![LinkFlapSpec { start: at(0.20), down_for: SimDuration::from_secs(2) }],
        random_flap: None,
        loss_ramps: vec![LossRampSpec {
            start: at(0.40),
            duration: SimDuration::from_secs(6),
            peak: 0.25,
            steps: 6,
        }],
        jitter: vec![JitterSpec {
            start: at(0.55),
            duration: SimDuration::from_secs(6),
            peak: SimDuration::from_millis(40),
            steps: 6,
        }],
        throttles: vec![ThrottleSpec {
            start: at(0.70),
            duration: SimDuration::from_secs(5),
            factor: 0.25,
        }],
        ids_pressure: vec![CpuPressureSpec {
            start: at(0.30),
            duration: SimDuration::from_secs(10),
            factor: 5_000.0,
        }],
        crashes: Vec::new(),
        reboots: Vec::new(),
    };
    config
}

/// The detection scenario under container-lifecycle faults: a device
/// reboots mid-run (losing its memory-resident bot, as a Mirai
/// infection would), and later the TServer itself reboots, failing
/// benign transactions until it returns. Offsets are relative to the
/// end of the infection lead, scaled to land inside the live phase
/// with enough tail for the C2 to evict the silent bot (heartbeat
/// timeout, ~25 s) and re-scan the rebooted device.
pub fn lifecycle_scenario(seed: u64, live_secs: u64, epoch_offset_secs: u64) -> ScenarioConfig {
    let mut config = detection_scenario(seed, live_secs, epoch_offset_secs);
    let live_start = epoch_offset_secs;
    let at = |frac: f64| SimDuration::from_secs_f64(live_start as f64 + live_secs as f64 * frac);
    config.faults.reboots = vec![
        RebootSpec {
            target: LifecycleTarget::Device(0),
            start: at(0.25),
            down_for: SimDuration::from_secs(3),
        },
        RebootSpec {
            target: LifecycleTarget::TServer,
            start: at(0.35),
            down_for: SimDuration::from_secs(4),
        },
    ];
    config
}

/// The outcome of a lifecycle chaos run: detection log, robustness
/// accounting (downtime, benign success rate, eviction/reinfection)
/// and bridge counters. Like [`run_chaos_detection`], a pure function
/// of the seed — repeated runs are byte-identical.
#[derive(Debug)]
pub struct LifecycleOutcome {
    /// The live phase's detection log, sustainability and robustness.
    pub live: LiveReport,
    /// Bridge counters after the run.
    pub bridge_stats: netsim::link::LinkStats,
    /// The exact scenario that ran.
    pub scenario: ScenarioConfig,
}

/// E12: the detection pipeline while containers crash and reboot.
/// Trains the K-Means IDS on a clean capture, then deploys the live
/// run with the [`lifecycle_scenario`] reboot plan. The robustness
/// report shows the benign success-rate dip during the TServer outage
/// and the eviction → reinfection cycle after the device reboot.
pub fn run_lifecycle_detection(seed: u64, scale: &ExperimentScale) -> LifecycleOutcome {
    let capture = run_training_capture(seed, scale);
    let ids_config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes");

    let epoch_offset = scale.capture_secs + 5;
    let scenario = lifecycle_scenario(seed, scale.live_secs, epoch_offset);
    let mut live = Testbed::deploy(scenario.clone());
    live.run_infection_lead();
    let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
    let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);
    let bridge_stats = live.bridge_stats();
    LifecycleOutcome { live: report, bridge_stats, scenario }
}

/// The outcome of a chaos detection run (E11).
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The live phase's detection log, sustainability and robustness.
    pub live: LiveReport,
    /// Bridge counters after the run — fault drops are visible as
    /// `drops_link_down` and the loss ramp as `drops_lost`.
    pub bridge_stats: netsim::link::LinkStats,
    /// The exact scenario that ran (fault plan included).
    pub scenario: ScenarioConfig,
}

/// E11: the detection pipeline under injected faults. Trains on a clean
/// capture, then deploys the live run with the [`chaos_scenario`] fault
/// plan. The whole run is a pure function of `seed`: repeated
/// invocations produce byte-identical detection logs
/// ([`ids::realtime::DetectionLog::serialize_compact`]) and link counters.
pub fn run_chaos_detection(seed: u64, scale: &ExperimentScale) -> ChaosOutcome {
    run_kmeans_live(seed, scale, true)
}

/// The fault-free twin of [`run_chaos_detection`]: identical training,
/// identical scenario, empty fault plan. Pairing the two isolates the
/// effect of the injected chaos on the same traffic.
pub fn run_baseline_detection(seed: u64, scale: &ExperimentScale) -> ChaosOutcome {
    run_kmeans_live(seed, scale, false)
}

fn run_kmeans_live(seed: u64, scale: &ExperimentScale, with_faults: bool) -> ChaosOutcome {
    let capture = run_training_capture(seed, scale);
    let ids_config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes");

    let epoch_offset = scale.capture_secs + 5;
    let scenario = if with_faults {
        chaos_scenario(seed, scale.live_secs, epoch_offset)
    } else {
        detection_scenario(seed, scale.live_secs, epoch_offset)
    };
    let mut live = Testbed::deploy(scenario.clone());
    live.run_infection_lead();
    let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
    let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);
    let bridge_stats = live.bridge_stats();
    ChaosOutcome { live: report, bridge_stats, scenario }
}

/// Champion and challenger for a serving run, trained deterministically
/// from one capture: the champion is the standard K-Means IDS, the
/// challenger a coarser (cheaper) K-Means fitted from an independent
/// RNG stream.
pub fn train_serving_models(
    capture: &capture::dataset::Dataset,
    scale: &ExperimentScale,
    seed: u64,
) -> (TrainedIds, TrainedIds) {
    let ids_config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
    let champion = TrainedIds::train(
        capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes");
    let mut rng = SimRng::seed_from(seed ^ 0xc4a1);
    let challenger = TrainedIds::train(
        capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 8, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes");
    (champion.ids, challenger.ids)
}

/// The outcome of a serving-layer run (E13).
#[derive(Debug)]
pub struct ServingOutcome {
    /// Per-tenant logs, accounting, swap history and telemetry.
    pub report: ServingRunReport,
    /// Bridge counters after the run.
    pub bridge_stats: netsim::link::LinkStats,
    /// The exact scenario that ran.
    pub scenario: ScenarioConfig,
}

/// E13: the long-lived serving layer under the full chaos plan (CPU
/// pressure spike + link flap + loss/jitter/throttle ramps). Trains a
/// champion and a cheaper challenger, deploys a two-tenant
/// [`ids::serving::IdsService`] — the TServer link on a drop-oldest
/// bounded queue, one device link on sampled degradation — promotes the
/// challenger mid-run (a boundary hot-swap that bumps the generation in
/// the `DetectionLog`), and retrains in the background from the replay
/// buffer. Budgets are sized so the flood phases actually overflow the
/// queues: the run exercises every shed/degrade path while conservation
/// (`ingested == classified + degraded + shed`) holds exactly.
///
/// A pure function of `seed`: repeated runs (and runs under different
/// `ml::par` thread counts) are byte-identical.
pub fn run_serving_detection(seed: u64, scale: &ExperimentScale) -> ServingOutcome {
    let capture = run_training_capture(seed, scale);
    let (champion, challenger) = train_serving_models(&capture, scale, seed);

    let epoch_offset = scale.capture_secs + 5;
    let scenario = chaos_scenario(seed, scale.live_secs, epoch_offset);
    let mut live = Testbed::deploy(scenario.clone());
    live.run_infection_lead();
    let _ = live.run_capture(SimDuration::from_secs(epoch_offset));

    let mut config = ids::serving::ServingConfig::new(champion);
    config.challenger = Some(challenger);
    config.promote_challenger_at_tick = Some(scale.live_secs / 2);
    config.promote_delay_ticks = 2;
    config.retrain = Some(ids::serving::RetrainPolicy {
        every_windows: (scale.live_secs / 4).max(4),
        delay_windows: 2,
        kind: ModelKind::KMeans(KMeansConfig { k_max: 8, ..KMeansConfig::default() }),
        replay_capacity: scale.max_train_samples.min(4_000),
        rng_salt: seed ^ 0x5e47e,
    });
    if scenario.buggify.enabled {
        config.chaos = Some((scenario.buggify.swarm_seed, scenario.buggify.intensity));
    }
    let tenants = vec![
        (
            {
                let mut t = ids::serving::TenantConfig::new("tserver");
                t.queue_capacity = 512;
                t.policy = ids::serving::BackpressurePolicy::DropOldest;
                t.budget.drain_records_per_tick = 256;
                t
            },
            ServingTenantTarget::TServer,
        ),
        (
            {
                let mut t = ids::serving::TenantConfig::new("dev0");
                t.queue_capacity = 256;
                t.policy = ids::serving::BackpressurePolicy::DegradeSampled { keep: 2 };
                t.budget.drain_records_per_tick = 128;
                t
            },
            ServingTenantTarget::Device(0),
        ),
    ];
    let report = live.run_live_serving(SimDuration::from_secs(scale.live_secs), config, tenants);
    let bridge_stats = live.bridge_stats();
    ServingOutcome { report, bridge_stats, scenario }
}

/// Runs just the training capture (E3's dataset statistics).
pub fn run_training_capture(seed: u64, scale: &ExperimentScale) -> capture::dataset::Dataset {
    let mut testbed = Testbed::deploy(training_scenario(seed, scale.capture_secs));
    testbed.run_infection_lead();
    testbed.run_capture(SimDuration::from_secs(scale.capture_secs))
}

/// One churn/duration grid point of the attack-impact experiment (E6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackImpactPoint {
    /// Churn rate (departures per device per minute).
    pub churn_per_min: f64,
    /// Attack duration in seconds.
    pub attack_secs: u32,
    /// Bots connected to the C2 at the end of the run.
    pub connected_bots: u64,
    /// Flood packets that reached the victim's NIC.
    pub victim_recv_packets: u64,
    /// SYNs the victim's HTTP backlog had to drop.
    pub victim_syn_drops: u64,
    /// Benign HTTP transactions completed during the run.
    pub benign_completed: u64,
    /// Benign HTTP transactions that failed during the run.
    pub benign_failed: u64,
}

/// E6: how churn and attack duration shape attack impact on the TServer
/// (the scenario axes DDoSim/the paper call out in §III-A).
pub fn run_attack_impact(seed: u64, churn_rates: &[f64], attack_secs: &[u32]) -> Vec<AttackImpactPoint> {
    let mut out = Vec::new();
    for &churn in churn_rates {
        for &duration in attack_secs {
            let mut config = ScenarioConfig::paper_default(seed);
            config.churn_rate_per_min = churn;
            config.attacks = rotation(&[10], duration, 400);
            let run_secs = 10 + duration as u64 + 10;
            let mut testbed = Testbed::deploy(config);
            testbed.run_infection_lead();
            let before_recv =
                testbed.runtime().world().node_stats(testbed.runtime().node(testbed.tserver())).recv_packets;
            let _ = testbed.run_capture(SimDuration::from_secs(run_secs));
            let stats =
                testbed.runtime().world().node_stats(testbed.runtime().node(testbed.tserver()));
            let (_, syn_drops) = testbed.tserver_backlog_pressure();
            let http = testbed.client_stats().http.snapshot();
            out.push(AttackImpactPoint {
                churn_per_min: churn,
                attack_secs: duration,
                connected_bots: testbed.botnet_stats().snapshot().connected_bots,
                victim_recv_packets: stats.recv_packets - before_recv,
                victim_syn_drops: syn_drops,
                benign_completed: http.completed,
                benign_failed: http.failed,
            });
        }
    }
    out
}

/// One point of the statistical-feature-period ablation (E7: §IV-E's
/// CPU mitigation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowAblationPoint {
    /// Statistical-feature recomputation period, in 1-second windows.
    pub stats_period: u64,
    /// Mean IDS CPU utilisation (%).
    pub cpu_percent: f64,
    /// Mean real-time accuracy (%).
    pub accuracy_percent: f64,
    /// Distinct flows folded at window closes over the run
    /// (`features.incremental.flows_touched`) — the deterministic
    /// measure of statistical-feature work: downgraded windows track
    /// handshakes only and fold nothing, so a longer period folds
    /// strictly fewer flows.
    pub flows_folded: u64,
}

/// E7: "extending the period for computing these features" reduces CPU
/// use (at some accuracy cost from staler statistics) — the mitigation
/// §IV-E proposes. Detection windows stay at 1 s; the statistical
/// features are recomputed only every `stats_period`-th window.
pub fn run_window_ablation(seed: u64, scale: &ExperimentScale, periods: &[u64]) -> Vec<WindowAblationPoint> {
    let capture = run_training_capture(seed, scale);
    periods
        .iter()
        .map(|&stats_period| {
            let ids_config = IdsConfig {
                stats_refresh: stats_period.max(1) as usize,
                max_train_samples: scale.max_train_samples,
                ..IdsConfig::default()
            };
            let mut rng = SimRng::seed_from(seed ^ 0xab1a);
            let outcome = TrainedIds::train(
                &capture,
                &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
                ids_config,
                &mut rng,
            )
            .expect("capture contains both classes");
            let epoch_offset = scale.capture_secs + 5;
            let mut live = Testbed::deploy(detection_scenario(seed, scale.live_secs, epoch_offset));
            live.run_infection_lead();
            let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
            let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);
            WindowAblationPoint {
                stats_period,
                cpu_percent: report.sustainability.cpu_percent,
                accuracy_percent: report.log.mean_accuracy() * 100.0,
                flows_folded: report
                    .telemetry
                    .counter("features.incremental.flows_touched")
                    .unwrap_or(0),
            }
        })
        .collect()
}
