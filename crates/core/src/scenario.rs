//! Scenario configuration: every knob of a testbed run.

use botnet::commands::AttackVector;
use botnet::flood::FloodConfig;
use containers::runtime::BridgeMedium;
use netsim::buggify::BuggifyConfig;
use netsim::faults::FaultPlan;
use netsim::link::LinkConfig;
use netsim::rng::SimRng;
use netsim::time::SimDuration;
use netsim::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use traffic::workload::WorkloadConfig;

/// One scheduled attack phase, relative to the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackPhase {
    /// Offset from run start at which the C2 broadcasts the order.
    pub start: SimDuration,
    /// Flood vector.
    pub vector: AttackVector,
    /// Attack duration in seconds.
    pub duration_secs: u32,
    /// Packets per second per bot.
    pub pps: u32,
}

/// A deterministic bridge outage: down at `start`, restored `down_for`
/// later. Offsets are relative to the end of the infection lead, like
/// [`AttackPhase::start`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlapSpec {
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// Outage length.
    pub down_for: SimDuration,
}

/// Randomised bridge flapping over an interval (exponential up/down
/// holding times, drawn from the scenario seed at deploy time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomFlapSpec {
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// End of the flapping interval (the link is restored here).
    pub until: SimDuration,
    /// Mean up-time between outages, seconds.
    pub mean_up_secs: f64,
    /// Mean outage length, seconds.
    pub mean_down_secs: f64,
}

/// A transient triangular loss ramp on the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossRampSpec {
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// Ramp length.
    pub duration: SimDuration,
    /// Peak loss probability at the ramp midpoint.
    pub peak: f64,
    /// Number of equal ramp segments.
    pub steps: usize,
}

/// A transient latency-jitter ramp on the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterSpec {
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// Ramp length.
    pub duration: SimDuration,
    /// Approximate peak extra one-way delay.
    pub peak: SimDuration,
    /// Number of equal ramp segments.
    pub steps: usize,
}

/// A bandwidth throttle interval on the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleSpec {
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// Throttle length.
    pub duration: SimDuration,
    /// Bandwidth multiplier in `(0, 1]` (0.25 = quarter speed).
    pub factor: f64,
}

/// A CPU-pressure interval on the IDS node: modelled detection compute
/// is stretched by `factor` while active, driving the overload policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPressureSpec {
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// Pressure interval length.
    pub duration: SimDuration,
    /// Compute-time multiplier (1.0 = unloaded).
    pub factor: f64,
}

/// A container that lifecycle faults (crash, reboot) can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleTarget {
    /// The TServer container (takes the benign services down with it).
    TServer,
    /// Device container `i` (in deployment order, `dev-<i>`).
    Device(usize),
}

/// A scheduled container crash: power lost at `start`, never restored.
/// In-flight connections vanish without emitting segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Which container loses power.
    pub target: LifecycleTarget,
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
}

/// A scheduled container reboot: power lost at `start`, back up
/// `down_for` later. Memory-resident state — including a Mirai
/// infection — does not survive the reboot, so a rebooted device
/// becomes scannable again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebootSpec {
    /// Which container power-cycles.
    pub target: LifecycleTarget,
    /// Offset from the end of the infection lead.
    pub start: SimDuration,
    /// Boot delay: how long the container stays dark.
    pub down_for: SimDuration,
}

/// Declarative fault injection for a scenario: which chaos the bridge,
/// the IDS node and the containers endure, scheduled relative to the
/// end of the infection lead. Deploy compiles this into a [`FaultPlan`]
/// of concrete timestamped actions (lifecycle events go through the
/// container runtime so per-container state is tracked), so two runs of
/// the same seed inject byte-identical fault schedules.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Deterministic bridge outages.
    pub flaps: Vec<LinkFlapSpec>,
    /// Seed-driven random flapping, if any.
    pub random_flap: Option<RandomFlapSpec>,
    /// Transient loss ramps.
    pub loss_ramps: Vec<LossRampSpec>,
    /// Latency-jitter ramps.
    pub jitter: Vec<JitterSpec>,
    /// Bandwidth throttles.
    pub throttles: Vec<ThrottleSpec>,
    /// CPU pressure on the IDS container's node.
    pub ids_pressure: Vec<CpuPressureSpec>,
    /// Permanent container crashes.
    pub crashes: Vec<CrashSpec>,
    /// Container power-cycles.
    pub reboots: Vec<RebootSpec>,
}

impl FaultPlanConfig {
    /// `true` if no faults are configured.
    pub fn is_empty(&self) -> bool {
        self.flaps.is_empty()
            && self.random_flap.is_none()
            && self.loss_ramps.is_empty()
            && self.jitter.is_empty()
            && self.throttles.is_empty()
            && self.ids_pressure.is_empty()
            && self.crashes.is_empty()
            && self.reboots.is_empty()
    }

    /// Compiles the declarative config into concrete fault actions
    /// against `bridge` and `ids_node`, shifting every offset by `lead`
    /// (the infection lead). Random draws (flap holding times, jitter
    /// wobble) are taken from `rng` *now*; the returned plan is plain
    /// data.
    pub fn to_fault_plan(
        &self,
        bridge: LinkId,
        ids_node: NodeId,
        lead: SimDuration,
        rng: &mut SimRng,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for flap in &self.flaps {
            plan.link_flap(bridge, lead + flap.start, flap.down_for);
        }
        if let Some(random) = &self.random_flap {
            plan.link_flap_random(
                bridge,
                lead + random.start,
                lead + random.until,
                random.mean_up_secs,
                random.mean_down_secs,
                rng,
            );
        }
        for ramp in &self.loss_ramps {
            plan.loss_ramp(bridge, lead + ramp.start, ramp.duration, ramp.peak, ramp.steps);
        }
        for jitter in &self.jitter {
            plan.delay_jitter_ramp(
                bridge,
                lead + jitter.start,
                jitter.duration,
                jitter.peak,
                jitter.steps,
                rng,
            );
        }
        for throttle in &self.throttles {
            plan.throttle(bridge, lead + throttle.start, throttle.duration, throttle.factor);
        }
        for pressure in &self.ids_pressure {
            plan.cpu_pressure(ids_node, lead + pressure.start, pressure.duration, pressure.factor);
        }
        plan
    }

    /// Appends this config's validation problems to `problems`.
    /// `devices` is the scenario's fleet size, for bounds-checking
    /// lifecycle targets.
    fn validate_into(&self, devices: usize, problems: &mut Vec<String>) {
        if let Some(random) = &self.random_flap {
            if random.mean_up_secs <= 0.0 || random.mean_down_secs <= 0.0 {
                problems.push("random_flap means must be positive".to_owned());
            }
            if random.until <= random.start {
                problems.push("random_flap interval is empty".to_owned());
            }
        }
        for (i, ramp) in self.loss_ramps.iter().enumerate() {
            if !(0.0..=1.0).contains(&ramp.peak) {
                problems.push(format!("loss ramp {i} peak {} outside [0, 1]", ramp.peak));
            }
            if ramp.steps == 0 {
                problems.push(format!("loss ramp {i} has zero steps"));
            }
        }
        for (i, jitter) in self.jitter.iter().enumerate() {
            if jitter.steps == 0 {
                problems.push(format!("jitter ramp {i} has zero steps"));
            }
        }
        for (i, throttle) in self.throttles.iter().enumerate() {
            if !(throttle.factor > 0.0 && throttle.factor <= 1.0) {
                problems.push(format!("throttle {i} factor {} outside (0, 1]", throttle.factor));
            }
        }
        for (i, pressure) in self.ids_pressure.iter().enumerate() {
            if !(pressure.factor.is_finite() && pressure.factor >= 0.0) {
                problems.push(format!(
                    "cpu pressure {i} factor {} must be finite and non-negative",
                    pressure.factor
                ));
            }
        }
        for (i, reboot) in self.reboots.iter().enumerate() {
            if reboot.down_for == SimDuration::ZERO {
                problems.push(format!("reboot {i} has zero boot delay"));
            }
        }
        for (i, target) in self
            .crashes
            .iter()
            .map(|c| c.target)
            .chain(self.reboots.iter().map(|r| r.target))
            .enumerate()
        {
            if let LifecycleTarget::Device(d) = target {
                if d >= devices {
                    problems.push(format!(
                        "lifecycle fault {i} targets device {d} of a {devices}-device fleet"
                    ));
                }
            }
        }
    }
}

/// Full configuration of one testbed deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Root seed: the whole run is a pure function of it.
    pub seed: u64,
    /// Number of IoT device containers.
    pub devices: usize,
    /// Benign client workloads stacked per device (1 = the default mix;
    /// higher values model a busier deployment).
    pub clients_per_device: usize,
    /// Fraction of devices with factory-default (crackable) credentials.
    pub vulnerable_fraction: f64,
    /// Benign workload intensities.
    pub workload: WorkloadConfig,
    /// The shared bridge link profile.
    pub link: LinkConfig,
    /// The bridge medium (wired CSMA by default; DDoSim also supports
    /// Wi-Fi networks).
    pub medium: BridgeMedium,
    /// Mean pause between scanner probes (seconds).
    pub scan_interval_mean: f64,
    /// Time given to the infection phase before attacks/detection start.
    pub infection_lead: SimDuration,
    /// Scheduled attack phases (relative to the *end* of the lead).
    pub attacks: Vec<AttackPhase>,
    /// Flood construction options (spoofing).
    pub flood: FloodConfig,
    /// Device churn: expected departures per device per minute (0 = off).
    pub churn_rate_per_min: f64,
    /// Mean downtime per churn departure.
    pub churn_mean_down: SimDuration,
    /// Target port of SYN/ACK floods (the TServer's HTTP port).
    pub attack_port: u16,
    /// Declarative fault injection (empty = a fault-free run).
    pub faults: FaultPlanConfig,
    /// Buggify perturbation layer for swarm testing (disabled by
    /// default, in which case the run is byte-identical to a build
    /// without the layer).
    #[serde(default)]
    pub buggify: BuggifyConfig,
}

impl ScenarioConfig {
    /// The same scenario on an 802.11-style Wi-Fi bridge.
    pub fn paper_default_wifi(seed: u64) -> Self {
        let mut config = ScenarioConfig::paper_default(seed);
        config.medium = BridgeMedium::Wifi;
        config.link = LinkConfig::wifi_54mbps();
        config
    }

    /// A laptop-scale version of the paper's scenario: a dozen devices,
    /// three-protocol benign workload, Mirai infection, and a rotation of
    /// SYN → ACK → UDP floods with quiet gaps in between.
    pub fn paper_default(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            devices: 12,
            clients_per_device: 1,
            vulnerable_fraction: 0.75,
            workload: WorkloadConfig {
                http_think_mean: 0.25,
                video_think_mean: 2.0,
                video_watch_mean: 8.0,
                ftp_think_mean: 1.5,
                ..WorkloadConfig::default()
            },
            link: LinkConfig::lan_100mbps(),
            medium: BridgeMedium::Csma,
            scan_interval_mean: 0.1,
            infection_lead: SimDuration::from_secs(20),
            attacks: rotation(&[20, 50, 80], 15, 400),
            flood: FloodConfig::default(),
            churn_rate_per_min: 0.0,
            churn_mean_down: SimDuration::from_secs(5),
            attack_port: 80,
            faults: FaultPlanConfig::default(),
            buggify: BuggifyConfig::default(),
        }
    }

    /// Validates the configuration, returning every problem found.
    ///
    /// [`crate::Testbed::deploy`] panics on an invalid scenario; calling
    /// this first gives user-facing tooling a chance to report nicely.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.devices == 0 {
            problems.push("scenario needs at least one device".to_owned());
        }
        if self.devices > 10_000 {
            problems.push(format!("{} devices exceeds the 10.0.x.y address plan", self.devices));
        }
        if !(0.0..=1.0).contains(&self.vulnerable_fraction) {
            problems.push(format!(
                "vulnerable_fraction {} outside [0, 1]",
                self.vulnerable_fraction
            ));
        }
        if self.clients_per_device == 0 {
            problems.push("clients_per_device must be at least 1".to_owned());
        }
        if self.scan_interval_mean <= 0.0 {
            problems.push("scan_interval_mean must be positive".to_owned());
        }
        if self.churn_rate_per_min < 0.0 {
            problems.push("churn_rate_per_min must be non-negative".to_owned());
        }
        for (i, phase) in self.attacks.iter().enumerate() {
            if phase.duration_secs == 0 {
                problems.push(format!("attack {i} has zero duration"));
            }
            if phase.pps == 0 {
                problems.push(format!("attack {i} has zero pps"));
            }
        }
        if self.link.bandwidth_bps == 0 {
            problems.push("link bandwidth must be positive".to_owned());
        }
        if !(0.0..=1.0).contains(&self.link.loss_rate) {
            problems.push(format!("link loss_rate {} outside [0, 1]", self.link.loss_rate));
        }
        self.faults.validate_into(self.devices, &mut problems);
        if !(self.buggify.intensity.is_finite() && (0.0..=1.0).contains(&self.buggify.intensity)) {
            problems.push(format!(
                "buggify intensity {} outside [0, 1]",
                self.buggify.intensity
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Total virtual time the scheduled attacks span (lead + last end).
    pub fn attack_horizon(&self) -> SimDuration {
        let last = self
            .attacks
            .iter()
            .map(|a| a.start + SimDuration::from_secs(a.duration_secs as u64))
            .max()
            .unwrap_or(SimDuration::ZERO);
        self.infection_lead + last
    }
}

/// Builds the paper's three-vector rotation: SYN, ACK and UDP floods
/// starting at the given offsets (seconds after the lead), each lasting
/// `duration_secs` at `pps` per bot.
pub fn rotation(starts: &[u64], duration_secs: u32, pps: u32) -> Vec<AttackPhase> {
    starts
        .iter()
        .zip(AttackVector::ALL.iter().cycle())
        .map(|(&start, &vector)| AttackPhase {
            start: SimDuration::from_secs(start),
            vector,
            duration_secs,
            pps,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cycles_vectors() {
        let phases = rotation(&[10, 20, 30, 40], 5, 100);
        assert_eq!(phases.len(), 4);
        assert_eq!(phases[0].vector, AttackVector::SynFlood);
        assert_eq!(phases[1].vector, AttackVector::AckFlood);
        assert_eq!(phases[2].vector, AttackVector::UdpFlood);
        assert_eq!(phases[3].vector, AttackVector::SynFlood);
    }

    #[test]
    fn horizon_covers_last_attack() {
        let config = ScenarioConfig::paper_default(1);
        let horizon = config.attack_horizon();
        assert_eq!(horizon, SimDuration::from_secs(20 + 80 + 15));
    }

    #[test]
    fn defaults_validate() {
        ScenarioConfig::paper_default(1).validate().expect("default is valid");
        ScenarioConfig::paper_default_wifi(1).validate().expect("wifi default is valid");
    }

    #[test]
    fn validation_reports_every_problem() {
        let mut config = ScenarioConfig::paper_default(1);
        config.devices = 0;
        config.vulnerable_fraction = 1.5;
        config.clients_per_device = 0;
        config.attacks[0].pps = 0;
        let problems = config.validate().unwrap_err();
        assert!(problems.len() >= 4, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("device")));
        assert!(problems.iter().any(|p| p.contains("vulnerable_fraction")));
        assert!(problems.iter().any(|p| p.contains("pps")));
    }

    #[test]
    fn default_is_serializable() {
        let config = ScenarioConfig::paper_default(7);
        // Round-trips through the serde data model (config files).
        let clone = config.clone();
        assert_eq!(clone, config);
    }

    fn full_fault_config() -> FaultPlanConfig {
        FaultPlanConfig {
            flaps: vec![LinkFlapSpec {
                start: SimDuration::from_secs(5),
                down_for: SimDuration::from_secs(2),
            }],
            random_flap: Some(RandomFlapSpec {
                start: SimDuration::from_secs(10),
                until: SimDuration::from_secs(30),
                mean_up_secs: 4.0,
                mean_down_secs: 1.0,
            }),
            loss_ramps: vec![LossRampSpec {
                start: SimDuration::from_secs(12),
                duration: SimDuration::from_secs(6),
                peak: 0.3,
                steps: 6,
            }],
            jitter: vec![JitterSpec {
                start: SimDuration::from_secs(15),
                duration: SimDuration::from_secs(4),
                peak: SimDuration::from_millis(30),
                steps: 4,
            }],
            throttles: vec![ThrottleSpec {
                start: SimDuration::from_secs(20),
                duration: SimDuration::from_secs(5),
                factor: 0.5,
            }],
            ids_pressure: vec![CpuPressureSpec {
                start: SimDuration::from_secs(8),
                duration: SimDuration::from_secs(10),
                factor: 3.0,
            }],
            crashes: vec![CrashSpec {
                target: LifecycleTarget::Device(1),
                start: SimDuration::from_secs(25),
            }],
            reboots: vec![RebootSpec {
                target: LifecycleTarget::TServer,
                start: SimDuration::from_secs(18),
                down_for: SimDuration::from_secs(3),
            }],
        }
    }

    #[test]
    fn fault_config_validation_catches_bad_specs() {
        let mut config = ScenarioConfig::paper_default(1);
        config.faults = full_fault_config();
        config.validate().expect("full fault config is valid");

        config.faults.random_flap.as_mut().unwrap().mean_up_secs = 0.0;
        config.faults.random_flap.as_mut().unwrap().until = SimDuration::from_secs(1);
        config.faults.loss_ramps[0].peak = 1.5;
        config.faults.jitter[0].steps = 0;
        config.faults.throttles[0].factor = 0.0;
        config.faults.ids_pressure[0].factor = f64::NAN;
        config.faults.reboots[0].down_for = SimDuration::ZERO;
        config.faults.crashes[0].target = LifecycleTarget::Device(99);
        let problems = config.validate().unwrap_err();
        assert!(problems.len() >= 8, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("random_flap means")));
        assert!(problems.iter().any(|p| p.contains("interval is empty")));
        assert!(problems.iter().any(|p| p.contains("peak")));
        assert!(problems.iter().any(|p| p.contains("zero steps")));
        assert!(problems.iter().any(|p| p.contains("throttle")));
        assert!(problems.iter().any(|p| p.contains("cpu pressure")));
        assert!(problems.iter().any(|p| p.contains("zero boot delay")));
        assert!(problems.iter().any(|p| p.contains("targets device 99")));
    }

    #[test]
    fn fault_plan_compilation_is_deterministic() {
        let faults = full_fault_config();
        let bridge = LinkId::from_raw(0);
        let node = NodeId::from_raw(3);
        let lead = SimDuration::from_secs(20);
        let a = faults.to_fault_plan(bridge, node, lead, &mut SimRng::seed_from(99));
        let b = faults.to_fault_plan(bridge, node, lead, &mut SimRng::seed_from(99));
        assert!(!a.entries().is_empty());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A different seed draws different random holding times.
        let c = faults.to_fault_plan(bridge, node, lead, &mut SimRng::seed_from(100));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn empty_fault_config_reports_empty() {
        assert!(FaultPlanConfig::default().is_empty());
        assert!(!full_fault_config().is_empty());
    }
}
