//! Scenario configuration: every knob of a testbed run.

use botnet::commands::AttackVector;
use botnet::flood::FloodConfig;
use containers::runtime::BridgeMedium;
use netsim::link::LinkConfig;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};
use traffic::workload::WorkloadConfig;

/// One scheduled attack phase, relative to the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackPhase {
    /// Offset from run start at which the C2 broadcasts the order.
    pub start: SimDuration,
    /// Flood vector.
    pub vector: AttackVector,
    /// Attack duration in seconds.
    pub duration_secs: u32,
    /// Packets per second per bot.
    pub pps: u32,
}

/// Full configuration of one testbed deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Root seed: the whole run is a pure function of it.
    pub seed: u64,
    /// Number of IoT device containers.
    pub devices: usize,
    /// Benign client workloads stacked per device (1 = the default mix;
    /// higher values model a busier deployment).
    pub clients_per_device: usize,
    /// Fraction of devices with factory-default (crackable) credentials.
    pub vulnerable_fraction: f64,
    /// Benign workload intensities.
    pub workload: WorkloadConfig,
    /// The shared bridge link profile.
    pub link: LinkConfig,
    /// The bridge medium (wired CSMA by default; DDoSim also supports
    /// Wi-Fi networks).
    pub medium: BridgeMedium,
    /// Mean pause between scanner probes (seconds).
    pub scan_interval_mean: f64,
    /// Time given to the infection phase before attacks/detection start.
    pub infection_lead: SimDuration,
    /// Scheduled attack phases (relative to the *end* of the lead).
    pub attacks: Vec<AttackPhase>,
    /// Flood construction options (spoofing).
    pub flood: FloodConfig,
    /// Device churn: expected departures per device per minute (0 = off).
    pub churn_rate_per_min: f64,
    /// Mean downtime per churn departure.
    pub churn_mean_down: SimDuration,
    /// Target port of SYN/ACK floods (the TServer's HTTP port).
    pub attack_port: u16,
}

impl ScenarioConfig {
    /// The same scenario on an 802.11-style Wi-Fi bridge.
    pub fn paper_default_wifi(seed: u64) -> Self {
        let mut config = ScenarioConfig::paper_default(seed);
        config.medium = BridgeMedium::Wifi;
        config.link = LinkConfig::wifi_54mbps();
        config
    }

    /// A laptop-scale version of the paper's scenario: a dozen devices,
    /// three-protocol benign workload, Mirai infection, and a rotation of
    /// SYN → ACK → UDP floods with quiet gaps in between.
    pub fn paper_default(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            devices: 12,
            clients_per_device: 1,
            vulnerable_fraction: 0.75,
            workload: WorkloadConfig {
                http_think_mean: 0.25,
                video_think_mean: 2.0,
                video_watch_mean: 8.0,
                ftp_think_mean: 1.5,
                ..WorkloadConfig::default()
            },
            link: LinkConfig::lan_100mbps(),
            medium: BridgeMedium::Csma,
            scan_interval_mean: 0.1,
            infection_lead: SimDuration::from_secs(20),
            attacks: rotation(&[20, 50, 80], 15, 400),
            flood: FloodConfig::default(),
            churn_rate_per_min: 0.0,
            churn_mean_down: SimDuration::from_secs(5),
            attack_port: 80,
        }
    }

    /// Validates the configuration, returning every problem found.
    ///
    /// [`crate::Testbed::deploy`] panics on an invalid scenario; calling
    /// this first gives user-facing tooling a chance to report nicely.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.devices == 0 {
            problems.push("scenario needs at least one device".to_owned());
        }
        if self.devices > 10_000 {
            problems.push(format!("{} devices exceeds the 10.0.x.y address plan", self.devices));
        }
        if !(0.0..=1.0).contains(&self.vulnerable_fraction) {
            problems.push(format!(
                "vulnerable_fraction {} outside [0, 1]",
                self.vulnerable_fraction
            ));
        }
        if self.clients_per_device == 0 {
            problems.push("clients_per_device must be at least 1".to_owned());
        }
        if self.scan_interval_mean <= 0.0 {
            problems.push("scan_interval_mean must be positive".to_owned());
        }
        if self.churn_rate_per_min < 0.0 {
            problems.push("churn_rate_per_min must be non-negative".to_owned());
        }
        for (i, phase) in self.attacks.iter().enumerate() {
            if phase.duration_secs == 0 {
                problems.push(format!("attack {i} has zero duration"));
            }
            if phase.pps == 0 {
                problems.push(format!("attack {i} has zero pps"));
            }
        }
        if self.link.bandwidth_bps == 0 {
            problems.push("link bandwidth must be positive".to_owned());
        }
        if !(0.0..=1.0).contains(&self.link.loss_rate) {
            problems.push(format!("link loss_rate {} outside [0, 1]", self.link.loss_rate));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Total virtual time the scheduled attacks span (lead + last end).
    pub fn attack_horizon(&self) -> SimDuration {
        let last = self
            .attacks
            .iter()
            .map(|a| a.start + SimDuration::from_secs(a.duration_secs as u64))
            .max()
            .unwrap_or(SimDuration::ZERO);
        self.infection_lead + last
    }
}

/// Builds the paper's three-vector rotation: SYN, ACK and UDP floods
/// starting at the given offsets (seconds after the lead), each lasting
/// `duration_secs` at `pps` per bot.
pub fn rotation(starts: &[u64], duration_secs: u32, pps: u32) -> Vec<AttackPhase> {
    starts
        .iter()
        .zip(AttackVector::ALL.iter().cycle())
        .map(|(&start, &vector)| AttackPhase {
            start: SimDuration::from_secs(start),
            vector,
            duration_secs,
            pps,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cycles_vectors() {
        let phases = rotation(&[10, 20, 30, 40], 5, 100);
        assert_eq!(phases.len(), 4);
        assert_eq!(phases[0].vector, AttackVector::SynFlood);
        assert_eq!(phases[1].vector, AttackVector::AckFlood);
        assert_eq!(phases[2].vector, AttackVector::UdpFlood);
        assert_eq!(phases[3].vector, AttackVector::SynFlood);
    }

    #[test]
    fn horizon_covers_last_attack() {
        let config = ScenarioConfig::paper_default(1);
        let horizon = config.attack_horizon();
        assert_eq!(horizon, SimDuration::from_secs(20 + 80 + 15));
    }

    #[test]
    fn defaults_validate() {
        ScenarioConfig::paper_default(1).validate().expect("default is valid");
        ScenarioConfig::paper_default_wifi(1).validate().expect("wifi default is valid");
    }

    #[test]
    fn validation_reports_every_problem() {
        let mut config = ScenarioConfig::paper_default(1);
        config.devices = 0;
        config.vulnerable_fraction = 1.5;
        config.clients_per_device = 0;
        config.attacks[0].pps = 0;
        let problems = config.validate().unwrap_err();
        assert!(problems.len() >= 4, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("device")));
        assert!(problems.iter().any(|p| p.contains("vulnerable_fraction")));
        assert!(problems.iter().any(|p| p.contains("pps")));
    }

    #[test]
    fn default_is_serializable() {
        let config = ScenarioConfig::paper_default(7);
        // Round-trips through the serde data model (config files).
        let clone = config.clone();
        assert_eq!(clone, config);
    }
}
