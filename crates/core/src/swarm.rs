//! Seed-swarm testing: the golden scenarios under buggify perturbation.
//!
//! A swarm run executes one golden scenario (chaos or lifecycle) with
//! the [`netsim::buggify`] layer armed under a *swarm seed*, then checks
//! machine-readable invariants: the run must not panic, the IDS must
//! stay live (every window classified or degraded, indices strictly
//! increasing), the sniffer feed must conserve records, the packet pool
//! must stay healthy, and the virtual clock must land exactly where the
//! phase arithmetic says. Monotone-clock and ChunkQueue-accounting
//! checks ride along as `debug_assert!`s, which is why swarm binaries
//! are built with debug assertions on (the `swarm` profile).
//!
//! A failing swarm seed replays bit-identically:
//! [`SwarmReport::repro_command`] prints the exact command.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ml::kmeans::KMeansConfig;
use netsim::buggify::BuggifyConfig;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};

use crate::experiments::{
    chaos_scenario, lifecycle_scenario, run_training_capture, train_serving_models,
    ExperimentScale,
};
use crate::testbed::{ServingTenantTarget, Testbed};

/// Which golden scenario a swarm run perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwarmCase {
    /// [`chaos_scenario`]: bridge outage, loss/jitter ramps, throttle,
    /// CPU-pressure spike on the IDS.
    Chaos,
    /// [`lifecycle_scenario`]: device and TServer reboots mid-run.
    Lifecycle,
    /// The serving layer under [`chaos_scenario`]: two tenants with
    /// bounded queues, a mid-run champion hot-swap, and the two
    /// `serve.*` decision points armed alongside the kernel's.
    Serving,
    /// The sharded chaos scenario
    /// ([`crate::shardplan::run_sharded_chaos`]) at two shard counts,
    /// with the kernel decision points armed per cell plus the
    /// coordinator's `shard.boundary_delay`: cross-shard packets must
    /// conserve, every cell clock must land on the horizon, and the
    /// two shard counts must produce byte-identical artifacts.
    Sharded,
}

impl SwarmCase {
    /// All cases, in runner order.
    pub const ALL: [SwarmCase; 4] =
        [SwarmCase::Chaos, SwarmCase::Lifecycle, SwarmCase::Serving, SwarmCase::Sharded];

    /// The case's stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            SwarmCase::Chaos => "chaos",
            SwarmCase::Lifecycle => "lifecycle",
            SwarmCase::Serving => "serving",
            SwarmCase::Sharded => "sharded",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<SwarmCase> {
        match s {
            "chaos" => Some(SwarmCase::Chaos),
            "lifecycle" => Some(SwarmCase::Lifecycle),
            "serving" => Some(SwarmCase::Serving),
            "sharded" => Some(SwarmCase::Sharded),
            _ => None,
        }
    }
}

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwarmViolation {
    /// Stable invariant name (`no-panic`, `ids-liveness`,
    /// `feed-conservation`, `pool-health`, `clock-horizon`,
    /// `determinism`; serving case also: `serving-conservation`,
    /// `flow-state-conservation`, `generation-monotone`, `swap-landed`;
    /// sharded case also:
    /// `shard-conservation`, `shard-invariance`).
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// The machine-readable outcome of one swarm run.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Which golden scenario ran.
    pub case: SwarmCase,
    /// The scenario seed (fixed across a swarm).
    pub scenario_seed: u64,
    /// The buggify swarm seed (varies across a swarm).
    pub swarm_seed: u64,
    /// Every invariant violation found (empty = the run passed).
    pub violations: Vec<SwarmViolation>,
    /// Detection windows logged.
    pub windows: usize,
    /// Windows that ran degraded.
    pub degraded: usize,
    /// Total buggify decision-point fires.
    pub buggify_fires: u64,
    /// FNV-1a fingerprint over the detection log and deterministic
    /// telemetry, for same-seed determinism comparisons.
    pub fingerprint: u64,
}

impl SwarmReport {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The copy-pasteable command replaying this exact run.
    pub fn repro_command(&self) -> String {
        format!(
            "cargo run --profile swarm --example swarm_run -- --case {} --seed {} --swarm-seed {}",
            self.case.name(),
            self.scenario_seed,
            self.swarm_seed
        )
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The models a swarm runner trains once per scenario seed: the
/// champion every case deploys, plus the cheaper challenger the serving
/// case hot-swaps in. Every swarm seed replays the *same* trained
/// models (training happens before the perturbed phase), so a runner
/// trains once per scenario seed and clones per run.
#[derive(Debug, Clone)]
pub struct SwarmModels {
    /// The standard K-Means IDS (all cases).
    pub champion: TrainedIds,
    /// The coarser shadow model (serving case only).
    pub challenger: TrainedIds,
}

/// Trains the swarm's champion + challenger once for a scenario seed.
pub fn swarm_models(scenario_seed: u64, scale: &ExperimentScale) -> SwarmModels {
    let capture = run_training_capture(scenario_seed, scale);
    let (champion, challenger) = train_serving_models(&capture, scale, scenario_seed);
    SwarmModels { champion, challenger }
}

/// Trains the swarm's K-Means IDS once for a scenario seed (the
/// champion of [`swarm_models`], for callers that only deploy the
/// single-model cases).
pub fn swarm_trained_ids(scenario_seed: u64, scale: &ExperimentScale) -> TrainedIds {
    let capture = run_training_capture(scenario_seed, scale);
    let ids_config =
        IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(scenario_seed ^ 0x7ea1);
    TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes")
    .ids
}

/// Runs one golden scenario under one buggify swarm seed and checks
/// every invariant. Pure function of its arguments — a failing seed
/// replays bit-identically.
pub fn run_swarm_case(
    case: SwarmCase,
    scenario_seed: u64,
    swarm_seed: u64,
    scale: &ExperimentScale,
    models: &SwarmModels,
) -> SwarmReport {
    if case == SwarmCase::Serving {
        return run_swarm_serving(scenario_seed, swarm_seed, scale, models);
    }
    if case == SwarmCase::Sharded {
        return run_swarm_sharded(scenario_seed, swarm_seed);
    }
    let epoch_offset = scale.capture_secs + 5;
    let mut scenario = match case {
        SwarmCase::Chaos => chaos_scenario(scenario_seed, scale.live_secs, epoch_offset),
        SwarmCase::Lifecycle => lifecycle_scenario(scenario_seed, scale.live_secs, epoch_offset),
        SwarmCase::Serving | SwarmCase::Sharded => unreachable!("dispatched above"),
    };
    scenario.buggify = BuggifyConfig::swarm(swarm_seed);

    let mut violations = Vec::new();
    let ids = models.champion.clone();
    let lead = scenario.infection_lead;
    let live_secs = scale.live_secs;
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut tb = Testbed::deploy(scenario);
        tb.run_infection_lead();
        let _ = tb.run_capture(SimDuration::from_secs(epoch_offset));
        let report = tb.run_live(SimDuration::from_secs(live_secs), ids);
        let sniffer = tb.sniffer();
        let feed = (
            sniffer.captured_total(),
            sniffer.drained_total(),
            sniffer.buffered() as u64,
            sniffer.dropped_overflow(),
        );
        let pool = tb.runtime().world().packet_pool();
        let pool_health = (pool.live(), pool.high_water(), pool.capacity());
        let fires: u64 =
            tb.runtime().world().buggify_counts().iter().map(|&(_, _, f)| f).sum();
        let now = tb.runtime().now();
        let log_text = report.log.serialize_compact();
        let liveness = report.log.liveness_violation();
        let telemetry_text = report.telemetry.render_text();
        let windows = report.log.len();
        let degraded = report.log.degraded_count();
        (feed, pool_health, fires, now, log_text, liveness, telemetry_text, windows, degraded)
    }));

    let (windows, degraded, fires, fingerprint) = match run {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            violations.push(SwarmViolation { invariant: "no-panic", detail: msg });
            (0, 0, 0, 0)
        }
        Ok((feed, pool, fires, now, log_text, liveness, telemetry_text, windows, degraded)) => {
            let (captured, drained, buffered, _dropped) = feed;
            if captured != drained + buffered {
                violations.push(SwarmViolation {
                    invariant: "feed-conservation",
                    detail: format!(
                        "captured {captured} != drained {drained} + buffered {buffered}"
                    ),
                });
            }
            let (live, high_water, capacity) = pool;
            if !(live <= high_water && high_water <= capacity) {
                violations.push(SwarmViolation {
                    invariant: "pool-health",
                    detail: format!(
                        "live {live} <= high_water {high_water} <= capacity {capacity} violated"
                    ),
                });
            }
            if let Some(detail) = liveness {
                violations.push(SwarmViolation { invariant: "ids-liveness", detail });
            }
            let expected =
                SimTime::ZERO + lead + SimDuration::from_secs(epoch_offset + live_secs);
            if now != expected {
                violations.push(SwarmViolation {
                    invariant: "clock-horizon",
                    detail: format!("clock ended at {now:?}, expected {expected:?}"),
                });
            }
            let mut fp = fnv1a(log_text.as_bytes());
            fp ^= fnv1a(telemetry_text.as_bytes()).rotate_left(17);
            (windows, degraded, fires, fp)
        }
    };

    SwarmReport {
        case,
        scenario_seed,
        swarm_seed,
        violations,
        windows,
        degraded,
        buggify_fires: fires,
        fingerprint,
    }
}

/// The serving-layer swarm case: [`chaos_scenario`] + kernel buggify +
/// the two `serve.*` decision points, against a two-tenant
/// [`ids::serving::IdsService`] with a mid-run challenger promotion.
/// On top of the shared invariants it checks *serving conservation*
/// (per tenant, `windows_ingested == windows_classified +
/// windows_degraded + windows_shed`, via both the handle and the
/// telemetry export), *flow-state conservation* (after every
/// `features.state_cull` forced cull, each tenant's incremental flow
/// aggregates must still account for every pushed record byte-for-byte),
/// *generation monotonicity* in every log, and that the staged hot-swap
/// actually landed despite `serve.model_swap_delay` perturbation.
fn run_swarm_serving(
    scenario_seed: u64,
    swarm_seed: u64,
    scale: &ExperimentScale,
    models: &SwarmModels,
) -> SwarmReport {
    let epoch_offset = scale.capture_secs + 5;
    let mut scenario = chaos_scenario(scenario_seed, scale.live_secs, epoch_offset);
    scenario.buggify = BuggifyConfig::swarm(swarm_seed);

    let mut violations = Vec::new();
    let champion = models.champion.clone();
    let challenger = models.challenger.clone();
    let lead = scenario.infection_lead;
    let live_secs = scale.live_secs;
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut tb = Testbed::deploy(scenario.clone());
        tb.run_infection_lead();
        let _ = tb.run_capture(SimDuration::from_secs(epoch_offset));

        let mut config = ids::serving::ServingConfig::new(champion);
        config.challenger = Some(challenger);
        config.promote_challenger_at_tick = Some(live_secs / 2);
        config.promote_delay_ticks = 2;
        config.chaos = Some((scenario.buggify.swarm_seed, scenario.buggify.intensity));
        let tenants = vec![
            (
                {
                    let mut t = ids::serving::TenantConfig::new("tserver");
                    t.queue_capacity = 512;
                    t.policy = ids::serving::BackpressurePolicy::DropOldest;
                    t.budget.drain_records_per_tick = 256;
                    t
                },
                ServingTenantTarget::TServer,
            ),
            (
                {
                    let mut t = ids::serving::TenantConfig::new("dev0");
                    t.queue_capacity = 256;
                    t.policy = ids::serving::BackpressurePolicy::DegradeSampled { keep: 2 };
                    t.budget.drain_records_per_tick = 128;
                    t
                },
                ServingTenantTarget::Device(0),
            ),
        ];
        let report = tb.run_live_serving(SimDuration::from_secs(live_secs), config, tenants);

        let sniffer = tb.sniffer();
        let feed = (
            sniffer.captured_total(),
            sniffer.drained_total(),
            sniffer.buffered() as u64,
            sniffer.dropped_overflow(),
        );
        let pool = tb.runtime().world().packet_pool();
        let pool_health = (pool.live(), pool.high_water(), pool.capacity());
        let fires: u64 =
            tb.runtime().world().buggify_counts().iter().map(|&(_, _, f)| f).sum();
        let now = tb.runtime().now();

        let serving_conservation = report.handle.conservation_violation();
        let flow_state_conservation = report.handle.flow_state_violation();
        let mut log_text = String::new();
        let mut liveness = None;
        let mut generation_violation = None;
        let mut windows = 0usize;
        let mut degraded = 0usize;
        let mut telemetry_conservation = None;
        for tenant in &report.tenants {
            log_text.push_str(&format!("== {} ==\n", tenant.name));
            log_text.push_str(&tenant.log.serialize_compact());
            windows += tenant.log.len();
            degraded += tenant.log.degraded_count();
            if liveness.is_none() {
                liveness = tenant.log.liveness_violation();
            }
            if generation_violation.is_none() {
                generation_violation = tenant.log.generation_violation();
            }
            // The same conservation equation, read back from the obs
            // export: every shed window must be accounted in telemetry,
            // not only in the in-process counters.
            if telemetry_conservation.is_none() {
                let prefix = format!("ids.serving.{}.", tenant.name);
                let get = |name: &str| {
                    report.telemetry.counter(&format!("{prefix}{name}")).unwrap_or(0)
                };
                let ingested = get("windows_ingested");
                let out = get("windows_classified") + get("windows_degraded")
                    + get("windows_shed");
                if ingested != out {
                    telemetry_conservation = Some(format!(
                        "telemetry {prefix}: ingested {ingested} != accounted {out}"
                    ));
                }
            }
        }
        let swap_landed = report.swaps >= 1 && report.generation >= 1;
        let telemetry_text = report.telemetry.render_text();
        (
            feed,
            pool_health,
            fires,
            now,
            log_text,
            liveness,
            serving_conservation,
            flow_state_conservation,
            generation_violation,
            telemetry_conservation,
            swap_landed,
            telemetry_text,
            windows,
            degraded,
        )
    }));

    let (windows, degraded, fires, fingerprint) = match run {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            violations.push(SwarmViolation { invariant: "no-panic", detail: msg });
            (0, 0, 0, 0)
        }
        Ok((
            feed,
            pool,
            fires,
            now,
            log_text,
            liveness,
            serving_conservation,
            flow_state_conservation,
            generation_violation,
            telemetry_conservation,
            swap_landed,
            telemetry_text,
            windows,
            degraded,
        )) => {
            let (captured, drained, buffered, _dropped) = feed;
            if captured != drained + buffered {
                violations.push(SwarmViolation {
                    invariant: "feed-conservation",
                    detail: format!(
                        "captured {captured} != drained {drained} + buffered {buffered}"
                    ),
                });
            }
            let (live, high_water, capacity) = pool;
            if !(live <= high_water && high_water <= capacity) {
                violations.push(SwarmViolation {
                    invariant: "pool-health",
                    detail: format!(
                        "live {live} <= high_water {high_water} <= capacity {capacity} violated"
                    ),
                });
            }
            if let Some(detail) = liveness {
                violations.push(SwarmViolation { invariant: "ids-liveness", detail });
            }
            if let Some(detail) = serving_conservation {
                violations.push(SwarmViolation { invariant: "serving-conservation", detail });
            }
            if let Some(detail) = telemetry_conservation {
                violations.push(SwarmViolation { invariant: "serving-conservation", detail });
            }
            if let Some(detail) = flow_state_conservation {
                violations.push(SwarmViolation { invariant: "flow-state-conservation", detail });
            }
            if let Some(detail) = generation_violation {
                violations.push(SwarmViolation { invariant: "generation-monotone", detail });
            }
            if !swap_landed {
                violations.push(SwarmViolation {
                    invariant: "swap-landed",
                    detail: "the staged challenger promotion never swapped in".to_owned(),
                });
            }
            let expected =
                SimTime::ZERO + lead + SimDuration::from_secs(epoch_offset + live_secs);
            if now != expected {
                violations.push(SwarmViolation {
                    invariant: "clock-horizon",
                    detail: format!("clock ended at {now:?}, expected {expected:?}"),
                });
            }
            let mut fp = fnv1a(log_text.as_bytes());
            fp ^= fnv1a(telemetry_text.as_bytes()).rotate_left(17);
            (windows, degraded, fires, fp)
        }
    };

    SwarmReport {
        case: SwarmCase::Serving,
        scenario_seed,
        swarm_seed,
        violations,
        windows,
        degraded,
        buggify_fires: fires,
        fingerprint,
    }
}

/// The sharded swarm case: the smoke-scale sharded chaos scenario
/// ([`crate::shardplan::ShardPlanConfig::smoke`]) under the swarm seed,
/// executed at one and at two worker shards. On top of `no-panic` it
/// checks *shard conservation* (every cross-shard packet is delivered,
/// unroutable, or in flight at the end), *clock-horizon agreement*
/// (every cell's clock lands exactly on the configured end), and
/// *shard invariance* (the two shard counts produce byte-identical
/// detection logs and telemetry — the tentpole determinism contract,
/// now also exercised under perturbation).
fn run_swarm_sharded(scenario_seed: u64, swarm_seed: u64) -> SwarmReport {
    let mut violations = Vec::new();
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut config = crate::shardplan::ShardPlanConfig::smoke(scenario_seed);
        config.buggify = BuggifyConfig::swarm(swarm_seed);
        config.shards = 1;
        let one = crate::shardplan::run_sharded_chaos(&config);
        config.shards = 2;
        let two = crate::shardplan::run_sharded_chaos(&config);
        (one, two, config.duration)
    }));

    let (windows, fires, fingerprint) = match run {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            violations.push(SwarmViolation { invariant: "no-panic", detail: msg });
            (0, 0, 0)
        }
        Ok((one, two, duration)) => {
            for (label, report) in [("1-shard", &one), ("2-shard", &two)] {
                if let Some(detail) = report.stats.conservation_violation() {
                    violations.push(SwarmViolation {
                        invariant: "shard-conservation",
                        detail: format!("{label}: {detail}"),
                    });
                }
                if let Some(detail) = report.stats.clock_violation(SimTime::ZERO + duration) {
                    violations.push(SwarmViolation {
                        invariant: "clock-horizon",
                        detail: format!("{label}: {detail}"),
                    });
                }
            }
            if one.output() != two.output() {
                violations.push(SwarmViolation {
                    invariant: "shard-invariance",
                    detail: format!(
                        "1-shard and 2-shard artifacts differ ({} vs {} bytes)",
                        one.output().len(),
                        two.output().len()
                    ),
                });
            }
            let fires = one.stats.cell_buggify_fires + one.stats.boundary_delay_fires;
            let mut fp = fnv1a(one.log.as_bytes());
            fp ^= fnv1a(one.telemetry.as_bytes()).rotate_left(17);
            (one.log.lines().count(), fires, fp)
        }
    };

    SwarmReport {
        case: SwarmCase::Sharded,
        scenario_seed,
        swarm_seed,
        violations,
        windows,
        degraded: 0,
        buggify_fires: fires,
        fingerprint,
    }
}

/// Runs a swarm seed twice and reports a `determinism` violation if the
/// two runs' fingerprints differ. Used by the runner on a sample of
/// seeds — the double run costs a full extra execution.
pub fn check_determinism(
    case: SwarmCase,
    scenario_seed: u64,
    swarm_seed: u64,
    scale: &ExperimentScale,
    models: &SwarmModels,
) -> Option<SwarmViolation> {
    let a = run_swarm_case(case, scenario_seed, swarm_seed, scale, models);
    let b = run_swarm_case(case, scenario_seed, swarm_seed, scale, models);
    if a.fingerprint != b.fingerprint {
        return Some(SwarmViolation {
            invariant: "determinism",
            detail: format!(
                "same swarm seed {} produced fingerprints {:#018x} and {:#018x}",
                swarm_seed, a.fingerprint, b.fingerprint
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale::swarm()
    }

    #[test]
    fn case_names_round_trip() {
        for case in SwarmCase::ALL {
            assert_eq!(SwarmCase::parse(case.name()), Some(case));
        }
        assert_eq!(SwarmCase::parse("nope"), None);
    }

    #[test]
    fn swarm_run_engages_buggify_and_passes_invariants() {
        let scale = tiny_scale();
        let models = swarm_models(11, &scale);
        let report = run_swarm_case(SwarmCase::Chaos, 11, 1, &scale, &models);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.buggify_fires > 0, "the perturbation layer must engage");
        assert!(report.windows > 0, "the IDS must classify windows");
        assert!(report.repro_command().contains("--swarm-seed 1"));
    }

    #[test]
    fn serving_swarm_run_passes_its_invariants() {
        let scale = tiny_scale();
        let models = swarm_models(11, &scale);
        let report = run_swarm_case(SwarmCase::Serving, 11, 1, &scale, &models);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.buggify_fires > 0, "the perturbation layer must engage");
        assert!(report.windows > 0, "the service must classify windows");
        assert!(report.repro_command().contains("--case serving"));
    }

    #[test]
    fn sharded_swarm_run_passes_its_invariants() {
        let scale = tiny_scale();
        let models = swarm_models(11, &scale);
        let report = run_swarm_case(SwarmCase::Sharded, 11, 1, &scale, &models);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.buggify_fires > 0, "the perturbation layer must engage");
        assert!(report.windows > 0, "the detector must log windows");
        assert!(report.repro_command().contains("--case sharded"));
        assert_eq!(check_determinism(SwarmCase::Sharded, 11, 5, &scale, &models), None);
    }

    #[test]
    fn same_swarm_seed_reports_identical_fingerprints() {
        let scale = tiny_scale();
        let models = swarm_models(11, &scale);
        assert_eq!(check_determinism(SwarmCase::Chaos, 11, 2, &scale, &models), None);
        let a = run_swarm_case(SwarmCase::Chaos, 11, 3, &scale, &models);
        let b = run_swarm_case(SwarmCase::Chaos, 11, 4, &scale, &models);
        assert_ne!(
            a.fingerprint, b.fingerprint,
            "different swarm seeds must perturb the run differently"
        );
    }

    #[test]
    fn serving_same_swarm_seed_is_deterministic() {
        let scale = tiny_scale();
        let models = swarm_models(11, &scale);
        assert_eq!(check_determinism(SwarmCase::Serving, 11, 5, &scale, &models), None);
    }
}
