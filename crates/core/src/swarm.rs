//! Seed-swarm testing: the golden scenarios under buggify perturbation.
//!
//! A swarm run executes one golden scenario (chaos or lifecycle) with
//! the [`netsim::buggify`] layer armed under a *swarm seed*, then checks
//! machine-readable invariants: the run must not panic, the IDS must
//! stay live (every window classified or degraded, indices strictly
//! increasing), the sniffer feed must conserve records, the packet pool
//! must stay healthy, and the virtual clock must land exactly where the
//! phase arithmetic says. Monotone-clock and ChunkQueue-accounting
//! checks ride along as `debug_assert!`s, which is why swarm binaries
//! are built with debug assertions on (the `swarm` profile).
//!
//! A failing swarm seed replays bit-identically:
//! [`SwarmReport::repro_command`] prints the exact command.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ml::kmeans::KMeansConfig;
use netsim::buggify::BuggifyConfig;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};

use crate::experiments::{chaos_scenario, lifecycle_scenario, run_training_capture, ExperimentScale};
use crate::testbed::Testbed;

/// Which golden scenario a swarm run perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwarmCase {
    /// [`chaos_scenario`]: bridge outage, loss/jitter ramps, throttle,
    /// CPU-pressure spike on the IDS.
    Chaos,
    /// [`lifecycle_scenario`]: device and TServer reboots mid-run.
    Lifecycle,
}

impl SwarmCase {
    /// All cases, in runner order.
    pub const ALL: [SwarmCase; 2] = [SwarmCase::Chaos, SwarmCase::Lifecycle];

    /// The case's stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            SwarmCase::Chaos => "chaos",
            SwarmCase::Lifecycle => "lifecycle",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<SwarmCase> {
        match s {
            "chaos" => Some(SwarmCase::Chaos),
            "lifecycle" => Some(SwarmCase::Lifecycle),
            _ => None,
        }
    }
}

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwarmViolation {
    /// Stable invariant name (`no-panic`, `ids-liveness`,
    /// `feed-conservation`, `pool-health`, `clock-horizon`,
    /// `determinism`).
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// The machine-readable outcome of one swarm run.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Which golden scenario ran.
    pub case: SwarmCase,
    /// The scenario seed (fixed across a swarm).
    pub scenario_seed: u64,
    /// The buggify swarm seed (varies across a swarm).
    pub swarm_seed: u64,
    /// Every invariant violation found (empty = the run passed).
    pub violations: Vec<SwarmViolation>,
    /// Detection windows logged.
    pub windows: usize,
    /// Windows that ran degraded.
    pub degraded: usize,
    /// Total buggify decision-point fires.
    pub buggify_fires: u64,
    /// FNV-1a fingerprint over the detection log and deterministic
    /// telemetry, for same-seed determinism comparisons.
    pub fingerprint: u64,
}

impl SwarmReport {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The copy-pasteable command replaying this exact run.
    pub fn repro_command(&self) -> String {
        format!(
            "cargo run --profile swarm --example swarm_run -- --case {} --seed {} --swarm-seed {}",
            self.case.name(),
            self.scenario_seed,
            self.swarm_seed
        )
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Trains the swarm's K-Means IDS once for a scenario seed. Every swarm
/// seed replays the *same* trained model (training happens before the
/// perturbed phase), so a runner trains once per scenario seed and
/// clones per run.
pub fn swarm_trained_ids(scenario_seed: u64, scale: &ExperimentScale) -> TrainedIds {
    let capture = run_training_capture(scenario_seed, scale);
    let ids_config =
        IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(scenario_seed ^ 0x7ea1);
    TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes")
    .ids
}

/// Runs one golden scenario under one buggify swarm seed and checks
/// every invariant. Pure function of its arguments — a failing seed
/// replays bit-identically.
pub fn run_swarm_case(
    case: SwarmCase,
    scenario_seed: u64,
    swarm_seed: u64,
    scale: &ExperimentScale,
    ids: &TrainedIds,
) -> SwarmReport {
    let epoch_offset = scale.capture_secs + 5;
    let mut scenario = match case {
        SwarmCase::Chaos => chaos_scenario(scenario_seed, scale.live_secs, epoch_offset),
        SwarmCase::Lifecycle => lifecycle_scenario(scenario_seed, scale.live_secs, epoch_offset),
    };
    scenario.buggify = BuggifyConfig::swarm(swarm_seed);

    let mut violations = Vec::new();
    let ids = ids.clone();
    let lead = scenario.infection_lead;
    let live_secs = scale.live_secs;
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut tb = Testbed::deploy(scenario);
        tb.run_infection_lead();
        let _ = tb.run_capture(SimDuration::from_secs(epoch_offset));
        let report = tb.run_live(SimDuration::from_secs(live_secs), ids);
        let sniffer = tb.sniffer();
        let feed = (
            sniffer.captured_total(),
            sniffer.drained_total(),
            sniffer.buffered() as u64,
            sniffer.dropped_overflow(),
        );
        let pool = tb.runtime().world().packet_pool();
        let pool_health = (pool.live(), pool.high_water(), pool.capacity());
        let fires: u64 =
            tb.runtime().world().buggify_counts().iter().map(|&(_, _, f)| f).sum();
        let now = tb.runtime().now();
        let log_text = report.log.serialize_compact();
        let liveness = report.log.liveness_violation();
        let telemetry_text = report.telemetry.render_text();
        let windows = report.log.len();
        let degraded = report.log.degraded_count();
        (feed, pool_health, fires, now, log_text, liveness, telemetry_text, windows, degraded)
    }));

    let (windows, degraded, fires, fingerprint) = match run {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            violations.push(SwarmViolation { invariant: "no-panic", detail: msg });
            (0, 0, 0, 0)
        }
        Ok((feed, pool, fires, now, log_text, liveness, telemetry_text, windows, degraded)) => {
            let (captured, drained, buffered, _dropped) = feed;
            if captured != drained + buffered {
                violations.push(SwarmViolation {
                    invariant: "feed-conservation",
                    detail: format!(
                        "captured {captured} != drained {drained} + buffered {buffered}"
                    ),
                });
            }
            let (live, high_water, capacity) = pool;
            if !(live <= high_water && high_water <= capacity) {
                violations.push(SwarmViolation {
                    invariant: "pool-health",
                    detail: format!(
                        "live {live} <= high_water {high_water} <= capacity {capacity} violated"
                    ),
                });
            }
            if let Some(detail) = liveness {
                violations.push(SwarmViolation { invariant: "ids-liveness", detail });
            }
            let expected =
                SimTime::ZERO + lead + SimDuration::from_secs(epoch_offset + live_secs);
            if now != expected {
                violations.push(SwarmViolation {
                    invariant: "clock-horizon",
                    detail: format!("clock ended at {now:?}, expected {expected:?}"),
                });
            }
            let mut fp = fnv1a(log_text.as_bytes());
            fp ^= fnv1a(telemetry_text.as_bytes()).rotate_left(17);
            (windows, degraded, fires, fp)
        }
    };

    SwarmReport {
        case,
        scenario_seed,
        swarm_seed,
        violations,
        windows,
        degraded,
        buggify_fires: fires,
        fingerprint,
    }
}

/// Runs a swarm seed twice and reports a `determinism` violation if the
/// two runs' fingerprints differ. Used by the runner on a sample of
/// seeds — the double run costs a full extra execution.
pub fn check_determinism(
    case: SwarmCase,
    scenario_seed: u64,
    swarm_seed: u64,
    scale: &ExperimentScale,
    ids: &TrainedIds,
) -> Option<SwarmViolation> {
    let a = run_swarm_case(case, scenario_seed, swarm_seed, scale, ids);
    let b = run_swarm_case(case, scenario_seed, swarm_seed, scale, ids);
    if a.fingerprint != b.fingerprint {
        return Some(SwarmViolation {
            invariant: "determinism",
            detail: format!(
                "same swarm seed {} produced fingerprints {:#018x} and {:#018x}",
                swarm_seed, a.fingerprint, b.fingerprint
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale::swarm()
    }

    #[test]
    fn case_names_round_trip() {
        for case in SwarmCase::ALL {
            assert_eq!(SwarmCase::parse(case.name()), Some(case));
        }
        assert_eq!(SwarmCase::parse("nope"), None);
    }

    #[test]
    fn swarm_run_engages_buggify_and_passes_invariants() {
        let scale = tiny_scale();
        let ids = swarm_trained_ids(11, &scale);
        let report = run_swarm_case(SwarmCase::Chaos, 11, 1, &scale, &ids);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.buggify_fires > 0, "the perturbation layer must engage");
        assert!(report.windows > 0, "the IDS must classify windows");
        assert!(report.repro_command().contains("--swarm-seed 1"));
    }

    #[test]
    fn same_swarm_seed_reports_identical_fingerprints() {
        let scale = tiny_scale();
        let ids = swarm_trained_ids(11, &scale);
        assert_eq!(check_determinism(SwarmCase::Chaos, 11, 2, &scale, &ids), None);
        let a = run_swarm_case(SwarmCase::Chaos, 11, 3, &scale, &ids);
        let b = run_swarm_case(SwarmCase::Chaos, 11, 4, &scale, &ids);
        assert_ne!(
            a.fingerprint, b.fingerprint,
            "different swarm seeds must perturb the run differently"
        );
    }
}
