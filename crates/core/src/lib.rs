//! # ddoshield — the DDoShield-IoT testbed
//!
//! The paper's primary contribution, reassembled in pure Rust: a
//! reproducible IDS testbed in which actual "IoT binaries" (benign
//! HTTP/video/FTP servers and clients, Mirai's scanner/loader/C2, the
//! vulnerable devices it compromises, and a real-time IDS unit) run in
//! containers bridged over a simulated network, generating labelled
//! real-world-shaped traffic for training and evaluating ML-based
//! intrusion detection.
//!
//! * [`scenario`] — every knob of a deployment ([`ScenarioConfig`]).
//! * [`testbed`] — [`Testbed::deploy`] wires the four container roles of
//!   Fig. 1 and exposes the capture / live-detection phases of §IV-D.
//! * [`experiments`] — one canned runner per table/figure of the paper.
//!
//! ```no_run
//! use ddoshield::{ScenarioConfig, Testbed};
//! use netsim::time::SimDuration;
//!
//! let mut testbed = Testbed::deploy(ScenarioConfig::paper_default(42));
//! testbed.run_infection_lead();
//! let dataset = testbed.run_capture(SimDuration::from_secs(60));
//! println!("{:?}", dataset.class_counts());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod scenario;
pub mod shardplan;
pub mod swarm;
pub mod testbed;

pub use experiments::{
    run_baseline_detection, run_chaos_detection, run_full_evaluation, run_lifecycle_detection,
    run_serving_detection, ChaosOutcome, ExperimentScale, FullReport, LifecycleOutcome,
    ModelReport, ServingOutcome,
};
pub use shardplan::{partition_devices, run_sharded_chaos, ShardPlanConfig, ShardedChaosReport};
pub use scenario::{
    rotation, AttackPhase, CpuPressureSpec, CrashSpec, FaultPlanConfig, JitterSpec,
    LifecycleTarget, LinkFlapSpec, LossRampSpec, RandomFlapSpec, RebootSpec, ScenarioConfig,
    ThrottleSpec,
};
pub use testbed::{LiveReport, ServingRunReport, ServingTenantTarget, TenantReport, Testbed};
