//! The assembled testbed: four container roles on one simulated bridge.
//!
//! [`Testbed::deploy`] reproduces Fig. 1 of the paper: the **TServer**
//! (Apache-like HTTP + RTMP-like video + FTP servers), the **Attacker**
//! (Mirai scanner / loader / C2), a fleet of **Devs** (vulnerable IoT
//! devices that also run benign client workloads), and the **IDS**
//! container. A sniffer taps every packet involving the TServer — the
//! traffic the paper's IDS monitors.

use botnet::attacker::AttackerConfig;
use botnet::commands::{AttackOrder, C2Command};
use botnet::deploy::{install_attacker, install_device_agents};
use botnet::stats::BotnetStats;
use capture::dataset::Dataset;
use capture::sniffer::{sniffer_pair, SnifferFilter, SnifferHandle};
use containers::meter::ResourceMeter;
use containers::runtime::{ContainerId, ContainerSpec, Role, Runtime};
use ids::pipeline::TrainedIds;
use ids::realtime::{DetectionLog, RealTimeIds};
use ids::resources::{RobustnessReport, SustainabilityReport};
use ids::serving::{serving_pair, ServingConfig, ServingHandle, TenantConfig, TenantCounters};
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::Addr;
use obs::{Registry, RunTelemetry};
use traffic::workload::{install_device_client_mix, install_tserver, ClientStatsBundle, ServerStatsBundle};

use crate::scenario::ScenarioConfig;

/// A deployed testbed, ready to run.
pub struct Testbed {
    rt: Runtime,
    config: ScenarioConfig,
    tserver: ContainerId,
    attacker: ContainerId,
    ids_container: ContainerId,
    devices: Vec<ContainerId>,
    sniffer: SnifferHandle,
    botnet_stats: BotnetStats,
    server_stats: ServerStatsBundle,
    client_stats: ClientStatsBundle,
    registry: Registry,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("devices", &self.devices.len())
            .field("now", &self.rt.now())
            .finish()
    }
}

impl Testbed {
    /// Deploys all containers, services and the attack schedule.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ScenarioConfig::validate`].
    pub fn deploy(config: ScenarioConfig) -> Testbed {
        if let Err(problems) = config.validate() {
            panic!("invalid scenario: {}", problems.join("; "));
        }
        let mut rt = Runtime::with_medium(config.seed, config.link, config.medium);
        let mut rng = SimRng::seed_from(config.seed ^ 0xdd05_41e1d);

        let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
        let attacker = rt.deploy(ContainerSpec::new("attacker", Role::Attacker));
        let ids_container = rt.deploy(ContainerSpec::new("ids", Role::Ids));
        let devices: Vec<ContainerId> = (0..config.devices)
            .map(|i| rt.deploy(ContainerSpec::new(format!("dev-{i}"), Role::Device)))
            .collect();
        let tserver_addr = rt.addr(tserver);

        // Benign side: the three servers and the device client mix.
        let server_stats = install_tserver(&mut rt, tserver, &config.workload, &mut rng);
        let client_stats = ClientStatsBundle::default();
        for offset in 0..config.clients_per_device.max(1) {
            install_device_client_mix(
                &mut rt,
                &devices,
                tserver_addr,
                &config.workload,
                SimTime::ZERO,
                offset,
                &client_stats,
                &mut rng,
            );
        }

        // Malicious side: vulnerable agents and the Mirai attacker.
        let botnet_stats = BotnetStats::new();
        install_device_agents(
            &mut rt,
            &devices,
            config.vulnerable_fraction,
            config.flood,
            &botnet_stats,
            &mut rng,
            SimTime::ZERO,
        );
        let schedule: Vec<(SimTime, C2Command)> = config
            .attacks
            .iter()
            .map(|phase| {
                let at = SimTime::ZERO + config.infection_lead + phase.start;
                let order = AttackOrder {
                    vector: phase.vector,
                    target: tserver_addr,
                    port: config.attack_port,
                    duration_secs: phase.duration_secs,
                    pps: phase.pps,
                };
                (at, C2Command::Attack(order))
            })
            .collect();
        let attacker_config = AttackerConfig {
            scan_interval_mean: config.scan_interval_mean,
            // Scan the populated host range plus some empty space.
            scan_hosts: (2, (config.devices as u32 + 3) + 16),
            schedule,
        };
        install_attacker(
            &mut rt,
            attacker,
            attacker_config,
            botnet_stats.clone(),
            rng.fork(),
            SimTime::ZERO,
        );

        // Churn, if configured.
        if config.churn_rate_per_min > 0.0 {
            let horizon = config.attack_horizon() + SimDuration::from_secs(120);
            // Named stream off the scenario seed, not a fork of the
            // deploy stream: a conditional fork here would make every
            // later draw depend on whether churn is configured.
            let mut churn_rng = SimRng::named(config.seed, "deploy.churn");
            rt.apply_churn(
                &devices,
                config.churn_rate_per_min,
                config.churn_mean_down,
                horizon,
                &mut churn_rng,
            );
        }

        // The IDS's monitoring point: everything involving the TServer.
        let (tap, sniffer) = sniffer_pair(SnifferFilter::Involving(tserver_addr));
        rt.world_mut().add_tap(Box::new(tap));

        // Buggify swarm perturbation: armed before any app starts so
        // every decision-point stream observes the run from its first
        // event. One swarm seed drives both the kernel's decision
        // points and the capture path's drain/truncate chaos.
        if config.buggify.enabled {
            rt.set_buggify(config.buggify);
            sniffer.set_chaos(config.buggify.swarm_seed, config.buggify.intensity);
        }

        // Fault injection: compile the declarative config into concrete
        // timestamped actions against the bridge and the IDS node. The
        // plan is scheduled up front, so the same seed always injects
        // the same chaos.
        if !config.faults.is_empty() {
            let bridge = rt.bridge();
            let ids_node = rt.node(ids_container);
            // Named stream: the fault schedule is a pure function of
            // the scenario seed, independent of fleet size, client mix
            // and the churn toggle, all of which draw different amounts
            // from the deploy stream above.
            let mut fault_rng = SimRng::named(config.seed, "deploy.faults");
            let plan = config.faults.to_fault_plan(
                bridge,
                ids_node,
                config.infection_lead,
                &mut fault_rng,
            );
            rt.world_mut().apply_fault_plan(&plan);
        }

        // Container lifecycle faults go through the runtime (not the
        // raw fault plan) so it can track per-container boot state.
        // Scheduling consumes no randomness, preserving the deploy RNG
        // stream for scenarios without lifecycle faults.
        let resolve = |target: crate::scenario::LifecycleTarget| match target {
            crate::scenario::LifecycleTarget::TServer => tserver,
            crate::scenario::LifecycleTarget::Device(i) => devices[i],
        };
        for crash in &config.faults.crashes {
            let at = SimTime::ZERO + config.infection_lead + crash.start;
            rt.schedule_crash(resolve(crash.target), at);
        }
        for reboot in &config.faults.reboots {
            let at = SimTime::ZERO + config.infection_lead + reboot.start;
            rt.schedule_reboot(resolve(reboot.target), at, reboot.down_for);
        }

        // Observability: every subsystem reports into one registry under
        // its own scope. All instruments are sim-clock/counter driven,
        // so the export is byte-identical across same-seed runs.
        let registry = Registry::new();
        rt.world_mut().set_obs(registry.scope("netsim"));
        botnet_stats.set_obs(registry.scope("botnet"));
        server_stats.set_obs(&registry.scope("traffic.server"));
        client_stats.set_obs(&registry.scope("traffic.client"));

        Testbed {
            rt,
            config,
            tserver,
            attacker,
            ids_container,
            devices,
            sniffer,
            botnet_stats,
            server_stats,
            client_stats,
            registry,
        }
    }

    /// The underlying container runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Mutable runtime access (custom experiments).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// The scenario this testbed was deployed from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// TServer container id.
    pub fn tserver(&self) -> ContainerId {
        self.tserver
    }

    /// Attacker container id.
    pub fn attacker(&self) -> ContainerId {
        self.attacker
    }

    /// IDS container id.
    pub fn ids_container(&self) -> ContainerId {
        self.ids_container
    }

    /// Device container ids.
    pub fn devices(&self) -> &[ContainerId] {
        &self.devices
    }

    /// The TServer's bridge address.
    pub fn tserver_addr(&self) -> Addr {
        self.rt.addr(self.tserver)
    }

    /// Botnet progress counters.
    pub fn botnet_stats(&self) -> &BotnetStats {
        &self.botnet_stats
    }

    /// TServer-side benign service counters.
    pub fn server_stats(&self) -> &ServerStatsBundle {
        &self.server_stats
    }

    /// Device-side benign client counters.
    pub fn client_stats(&self) -> &ClientStatsBundle {
        &self.client_stats
    }

    /// The sniffer feed at the TServer.
    pub fn sniffer(&self) -> &SnifferHandle {
        &self.sniffer
    }

    /// Runs the infection lead-in (scanning + credential attacks) and
    /// discards the traffic captured during it, so capture/detection
    /// phases start from an established botnet, as in DDoSim's phases.
    pub fn run_infection_lead(&mut self) {
        let lead = self.config.infection_lead;
        self.rt.run_for(lead);
        let _ = self.sniffer.drain();
    }

    /// Runs for `duration`, capturing the TServer's traffic into a
    /// labelled [`Dataset`] (the paper's 10-minute training run).
    pub fn run_capture(&mut self, duration: SimDuration) -> Dataset {
        self.rt.run_for(duration);
        Dataset::from_records(self.sniffer.drain())
    }

    /// Runs the real-time detection phase (the paper's 5-minute run):
    /// installs the trained IDS into the IDS container, runs for
    /// `duration`, and returns its per-window log plus sustainability
    /// metrics.
    pub fn run_live(&mut self, duration: SimDuration, ids: TrainedIds) -> LiveReport {
        let meter = self.rt.meter(self.ids_container);
        meter.set_obs(&self.registry.scope("containers.ids"));
        let log = DetectionLog::new();
        let model_size_kb = ids.model().encode().len() as f64 / 1024.0;
        let mut app = RealTimeIds::new(ids, self.sniffer.clone(), meter.clone(), log.clone());
        app.set_obs(self.registry.scope("ids"));
        // Wall-clock predict latency lives in its own registry: the
        // measured numbers are host-dependent, and mixing them into the
        // deterministic registry would break byte-identical exports.
        let wall_registry = Registry::new();
        app.set_wallclock_obs(wall_registry.scope("ids.wallclock"));
        let now = self.rt.now();
        self.rt.install(
            self.ids_container,
            Box::new(app),
            netsim::packet::Provenance::Benign,
            now,
        );
        self.rt.run_for(duration);
        let sustainability = SustainabilityReport {
            cpu_percent: meter.mean_cpu_percent(),
            memory_kb: meter.memory_peak_bytes() as f64 / 1024.0,
            model_size_kb,
        };
        let mut robustness = RobustnessReport::collect(&log, &self.sniffer);
        // Lifecycle accounting: container downtime, benign success
        // rates (cumulative since deploy) and botnet eviction /
        // reinfection counters. Everything is integer-valued, so two
        // same-seed runs report byte-identically.
        robustness.container_downtime = self.rt.downtime_table();
        let benign = [
            self.client_stats.http.snapshot(),
            self.client_stats.video.snapshot(),
            self.client_stats.ftp.snapshot(),
        ];
        robustness.benign_started = benign.iter().map(|c| c.started).sum();
        robustness.benign_completed = benign.iter().map(|c| c.completed).sum();
        robustness.benign_failed = benign.iter().map(|c| c.failed).sum();
        robustness.benign_retried = benign.iter().map(|c| c.retried).sum();
        let bots = self.botnet_stats.snapshot();
        robustness.bots_evicted = bots.bots_evicted;
        robustness.reinfections = bots.reinfections;
        robustness.reinfection_latency_total_nanos = bots.reinfection_latency_total_nanos;
        let telemetry = self.telemetry();
        let wallclock = wall_registry.snapshot();
        LiveReport { log, sustainability, robustness, meter, telemetry, wallclock }
    }

    /// Runs the long-lived serving phase: installs an
    /// [`ids::serving::IdsService`] with one tenant per monitored link,
    /// runs for `duration`, finalizes the service (graceful drain) and
    /// returns the per-tenant logs, accounting, and the usual
    /// sustainability / robustness / telemetry reports.
    ///
    /// The first tenant targeting [`ServingTenantTarget::TServer`]
    /// reuses the testbed's existing TServer tap (so the feed
    /// conservation accounting stays whole); device tenants get their
    /// own taps, added when this method runs. Targets should be
    /// distinct — two tenants sharing one feed would steal each other's
    /// records.
    pub fn run_live_serving(
        &mut self,
        duration: SimDuration,
        config: ServingConfig,
        tenants: Vec<(TenantConfig, ServingTenantTarget)>,
    ) -> ServingRunReport {
        let meter = self.rt.meter(self.ids_container);
        meter.set_obs(&self.registry.scope("containers.ids"));
        let model_size_kb = config.champion.model().encode().len() as f64 / 1024.0;
        let mut feeds = Vec::new();
        let mut wired = Vec::new();
        for (tenant_config, target) in tenants {
            let feed = match target {
                ServingTenantTarget::TServer => self.sniffer.clone(),
                ServingTenantTarget::Device(i) => {
                    let addr = self.rt.addr(self.devices[i]);
                    let (tap, handle) = sniffer_pair(SnifferFilter::Involving(addr));
                    self.rt.world_mut().add_tap(Box::new(tap));
                    if self.config.buggify.enabled {
                        handle.set_chaos(
                            self.config.buggify.swarm_seed,
                            self.config.buggify.intensity,
                        );
                    }
                    handle
                }
            };
            feeds.push(feed.clone());
            wired.push((tenant_config, feed));
        }
        let (mut app, handle) = serving_pair(config, wired, meter.clone());
        app.set_obs(self.registry.scope("ids.serving"));
        let now = self.rt.now();
        self.rt.install(
            self.ids_container,
            Box::new(app),
            netsim::packet::Provenance::Benign,
            now,
        );
        self.rt.run_for(duration);
        handle.finalize();

        let sustainability = SustainabilityReport {
            cpu_percent: meter.mean_cpu_percent(),
            memory_kb: meter.memory_peak_bytes() as f64 / 1024.0,
            model_size_kb,
        };
        let tenant_reports: Vec<TenantReport> = handle
            .all_counters()
            .into_iter()
            .map(|(name, counters)| {
                let log = handle.tenant_log(&name).expect("tenant came from the handle");
                TenantReport { name, log, counters }
            })
            .collect();
        let mut robustness = RobustnessReport {
            windows_total: tenant_reports.iter().map(|t| t.log.len()).sum(),
            windows_degraded: tenant_reports.iter().map(|t| t.log.degraded_count()).sum(),
            windows_shed: tenant_reports
                .iter()
                .map(|t| t.counters.windows_shed as usize)
                .sum(),
            records_shed: tenant_reports.iter().map(|t| t.counters.records_shed).sum(),
            records_sampled_out: tenant_reports
                .iter()
                .map(|t| t.counters.records_sampled_out)
                .sum(),
            feed_dropped: feeds.iter().map(|f| f.dropped_overflow()).sum(),
            feed_captured: feeds.iter().map(|f| f.captured_total()).sum(),
            container_downtime: self.rt.downtime_table(),
            benign_started: 0,
            benign_completed: 0,
            benign_failed: 0,
            benign_retried: 0,
            bots_evicted: 0,
            reinfections: 0,
            reinfection_latency_total_nanos: 0,
        };
        let benign = [
            self.client_stats.http.snapshot(),
            self.client_stats.video.snapshot(),
            self.client_stats.ftp.snapshot(),
        ];
        robustness.benign_started = benign.iter().map(|c| c.started).sum();
        robustness.benign_completed = benign.iter().map(|c| c.completed).sum();
        robustness.benign_failed = benign.iter().map(|c| c.failed).sum();
        robustness.benign_retried = benign.iter().map(|c| c.retried).sum();
        let bots = self.botnet_stats.snapshot();
        robustness.bots_evicted = bots.bots_evicted;
        robustness.reinfections = bots.reinfections;
        robustness.reinfection_latency_total_nanos = bots.reinfection_latency_total_nanos;

        // Serving-chaos counters follow the capture-chaos convention:
        // exported only when armed, keeping baseline telemetry
        // fixture-identical.
        if let Some((swap_delay_fires, queue_full_fires, state_cull_fires)) = handle.chaos_counts()
        {
            let scope = self.registry.scope("ids.serving.chaos");
            scope.gauge("swap_delay_fires").set(swap_delay_fires as i64);
            scope.gauge("queue_full_fires").set(queue_full_fires as i64);
            scope.gauge("state_cull_fires").set(state_cull_fires as i64);
        }
        let (swaps, retrains, retrains_failed) = handle.swap_counts();
        let generation = handle.generation();
        let telemetry = self.telemetry();
        ServingRunReport {
            tenants: tenant_reports,
            generation,
            swaps,
            retrains,
            retrains_failed,
            handle,
            sustainability,
            robustness,
            meter,
            telemetry,
        }
    }

    /// A snapshot of the run's telemetry: every counter, gauge and
    /// histogram across netsim / botnet / traffic / containers / ids,
    /// plus the sim-clock trace. Deterministic — two same-seed runs
    /// render byte-identical [`RunTelemetry::render_text`] output.
    pub fn telemetry(&mut self) -> RunTelemetry {
        self.rt.world_mut().publish_link_obs();
        // Capture-path chaos counters mirror the kernel's buggify
        // gauges: present only when armed, so baseline telemetry stays
        // byte-identical to the golden fixtures.
        if let Some((partial_drains, truncated_records)) = self.sniffer.chaos_counts() {
            let scope = self.registry.scope("capture.chaos");
            scope.gauge("partial_drains").set(partial_drains as i64);
            scope.gauge("truncated_records").set(truncated_records as i64);
        }
        self.registry.snapshot()
    }

    /// The telemetry registry (for attaching custom instruments).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Link counters of the shared bridge (fault-injection drops show
    /// up here as `drops_link_down`).
    pub fn bridge_stats(&self) -> netsim::link::LinkStats {
        self.rt.world().link_stats(self.rt.bridge())
    }

    /// Per-second received throughput at the TServer so far, in bytes.
    pub fn tserver_recv_bytes(&self) -> u64 {
        self.rt.world().node_stats(self.rt.node(self.tserver)).recv_bytes
    }

    /// SYN-backlog pressure on the TServer's HTTP listener:
    /// (half-open connections, SYNs dropped).
    pub fn tserver_backlog_pressure(&self) -> (usize, u64) {
        self.rt
            .world()
            .listener_pressure(self.rt.node(self.tserver), self.config.attack_port)
            .unwrap_or((0, 0))
    }
}

/// Which link a serving tenant monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingTenantTarget {
    /// The TServer's traffic (the testbed's primary tap).
    TServer,
    /// Everything involving the i-th device container.
    Device(usize),
}

/// One tenant's slice of a serving run.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant name (matches its [`TenantConfig`]).
    pub name: String,
    /// Per-window detection results, generation-stamped.
    pub log: DetectionLog,
    /// Ingestion/backpressure accounting; conservation holds exactly
    /// (the service was finalized before this was read).
    pub counters: TenantCounters,
}

/// The outcome of a long-lived serving phase.
#[derive(Debug)]
pub struct ServingRunReport {
    /// Per-tenant logs and accounting, in service order.
    pub tenants: Vec<TenantReport>,
    /// The champion's final model generation.
    pub generation: u64,
    /// Boundary swaps applied.
    pub swaps: u64,
    /// Background retrains staged successfully.
    pub retrains: u64,
    /// Retrains that failed recoverably (e.g. single-class corpus).
    pub retrains_failed: u64,
    /// The live service handle (post-run inspection, conservation
    /// checks).
    pub handle: ServingHandle,
    /// The paper's Table II row for the serving deployment.
    pub sustainability: SustainabilityReport,
    /// Overload/shed/feed accounting across every tenant.
    pub robustness: RobustnessReport,
    /// The IDS container's meter.
    pub meter: ResourceMeter,
    /// The run's deterministic telemetry export.
    pub telemetry: RunTelemetry,
}

/// The outcome of a real-time detection phase.
#[derive(Debug)]
pub struct LiveReport {
    /// Per-window detection results.
    pub log: DetectionLog,
    /// The paper's Table II row for this model.
    pub sustainability: SustainabilityReport,
    /// Overload/feed accounting: every window classified or degraded,
    /// every shed packet counted.
    pub robustness: RobustnessReport,
    /// The IDS container's meter (for further inspection).
    pub meter: ResourceMeter,
    /// The run's full telemetry export (see [`Testbed::telemetry`]).
    pub telemetry: RunTelemetry,
    /// Wall-clock reporting telemetry (per-model predict latency
    /// histograms under `ids.wallclock.*`). Host-dependent by design and
    /// therefore exported separately: it must never be byte-diffed or
    /// mixed into the deterministic `telemetry` export.
    pub wallclock: RunTelemetry,
}
