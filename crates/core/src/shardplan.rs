//! Sharded deployment planning and the sharded chaos scenario.
//!
//! This module is the testbed-side consumer of [`netsim::shard`]: it
//! partitions a device fleet into logical cells ([`partition_devices`]),
//! builds one cell world per partition (a gateway plus its devices on a
//! CSMA segment, with benign UDP beacons, cross-cell traffic, a Mirai-
//! style UDP flood after `attack_start`, deterministic per-cell device
//! churn, and a per-cell sniffer), and reduces the run to a detection
//! log plus a telemetry section — both pure functions of the config, so
//! the `shard-smoke` CI job can byte-diff runs at different shard
//! counts.
//!
//! The per-cell captures are merged with
//! [`capture::merge::merge_cell_records`], the deterministic cell-order
//! merge, and fed to a windowed rate detector standing in for the IDS:
//! the point of the scenario is cross-shard plumbing, not model
//! quality, so detection is a fixed threshold on per-window flood
//! volume at the victim.

use std::fmt::Write as _;
use std::ops::Range;

use capture::merge::merge_cell_records;
use capture::record::PacketRecord;
use capture::sniffer::{sniffer_pair, SnifferFilter, SnifferHandle};
use netsim::link::LinkConfig;
use netsim::node::NodeStats;
use netsim::packet::Provenance;
use netsim::rng::SimRng;
use netsim::shard::{
    cell_seed, run_sharded, CellManifest, CellSpec, CellState, ShardRun, ShardSpec, ShardStats,
};
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx, World};
use netsim::{Addr, BuggifyConfig, NodeId};

/// Splits `total` devices into `cells` contiguous ranges whose sizes
/// differ by at most one — the deploy partitioning rule for sharded
/// runs. Cells, not worker shards, are the determinism unit, so this
/// split must not depend on the shard count.
pub fn partition_devices(total: usize, cells: usize) -> Vec<Range<usize>> {
    assert!(cells > 0, "need at least one cell");
    let base = total / cells;
    let extra = total % cells;
    let mut ranges = Vec::with_capacity(cells);
    let mut start = 0;
    for i in 0..cells {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Configuration of a sharded chaos run. Every field except `shards`
/// affects the result; `shards` is purely a wall-clock knob.
#[derive(Debug, Clone)]
pub struct ShardPlanConfig {
    /// Root seed of the run.
    pub seed: u64,
    /// Total devices, split over the cells by [`partition_devices`].
    pub total_devices: usize,
    /// Logical cells (each a gateway + device segment). Max 200.
    pub cells: usize,
    /// Every `bot_every`-th device is Mirai-infected (0 = no bots).
    pub bot_every: usize,
    /// Virtual duration of the run.
    pub duration: SimDuration,
    /// When the bots start flooding the victim (cell 0's gateway).
    pub attack_start: SimDuration,
    /// Flood packets per second per bot.
    pub flood_pps: u32,
    /// Minimum cross-cell latency: the conservative lookahead.
    pub boundary_latency: SimDuration,
    /// Worker threads (performance only; results are identical).
    pub shards: usize,
    /// Buggify perturbation layer.
    pub buggify: BuggifyConfig,
}

impl ShardPlanConfig {
    /// The smoke-test scale: 4 cells, 32 devices, a quarter of them
    /// bots, 10 virtual seconds.
    pub fn smoke(seed: u64) -> Self {
        ShardPlanConfig {
            seed,
            total_devices: 32,
            cells: 4,
            bot_every: 4,
            duration: SimDuration::from_secs(10),
            attack_start: SimDuration::from_secs(4),
            flood_pps: 200,
            boundary_latency: SimDuration::from_millis(1),
            shards: 1,
            buggify: BuggifyConfig::default(),
        }
    }

    /// The bench scale: 100 000 devices across 64 cells — the
    /// `sharded_100k` baseline topology.
    pub fn bench_100k(seed: u64) -> Self {
        ShardPlanConfig {
            seed,
            total_devices: 100_000,
            cells: 64,
            bot_every: 50,
            duration: SimDuration::from_secs(1),
            attack_start: SimDuration::from_millis(300),
            flood_pps: 100,
            boundary_latency: SimDuration::from_millis(1),
            shards: 1,
            buggify: BuggifyConfig::default(),
        }
    }
}

/// The reduced outcome of a sharded chaos run. Byte-identical across
/// shard counts (the [`ShardStats::workers`] field is excluded from
/// the rendered telemetry for exactly that reason).
#[derive(Debug)]
pub struct ShardedChaosReport {
    /// Per-window detection log lines.
    pub log: String,
    /// Telemetry text: per-cell counters in cell order, then the
    /// cross-shard accounting.
    pub telemetry: String,
    /// Raw cross-shard accounting.
    pub stats: ShardStats,
    /// Total merged capture records.
    pub records: usize,
}

impl ShardedChaosReport {
    /// The printable artifact: detection log, then a `# telemetry`
    /// section — the same shape as `chaos_run`, so the CI smoke job's
    /// diff recipe applies unchanged.
    pub fn output(&self) -> String {
        format!("{}# telemetry\n{}", self.log, self.telemetry)
    }
}

/// What one cell reports back after its run.
#[derive(Debug)]
struct CellOutcome {
    records: Vec<PacketRecord>,
    gateway: NodeStats,
    device_sent: u64,
    device_recv: u64,
    events: u64,
}

/// Benign device beacon: a periodic UDP datagram to the local gateway,
/// with every `cross_every`-th tick also beaconing at the next cell's
/// gateway (the cross-shard traffic that exercises the mailboxes).
struct DeviceBeacon {
    gateway: Addr,
    peer_gateway: Addr,
    start_offset: SimDuration,
    period: SimDuration,
    cross_every: u32,
    tick: u32,
}

impl App for DeviceBeacon {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(5000);
        ctx.set_timer(self.start_offset, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.tick = self.tick.wrapping_add(1);
        ctx.udp_send(5000, self.gateway, 7777, bytes::Bytes::from_static(&[0u8; 32]));
        if self.tick.is_multiple_of(self.cross_every) {
            ctx.udp_send(5000, self.peer_gateway, 7777, bytes::Bytes::from_static(&[1u8; 32]));
        }
        ctx.set_timer(self.period, 0);
    }
}

/// Mirai-style UDP flooder: from `start`, datagrams at `pps` aimed at
/// the victim (cell 0's gateway — always cross-cell for other cells).
struct BotFlood {
    victim: Addr,
    start: SimDuration,
    period: SimDuration,
}

impl App for BotFlood {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(48101);
        ctx.set_timer(self.start, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.udp_send(48101, self.victim, 7777, bytes::Bytes::from_static(&[0u8; 64]));
        ctx.set_timer(self.period, 0);
    }
}

fn device_addr(cell: usize, local: usize) -> Addr {
    Addr::new(10, (cell + 1) as u8, (local / 200) as u8, (local % 200 + 10) as u8)
}

fn gateway_addr(cell: usize) -> Addr {
    Addr::new(10, (cell + 1) as u8, 250, 1)
}

/// Runs the sharded chaos scenario and reduces it to a report.
///
/// The report is a pure function of everything in `config` except
/// `config.shards` — the shard-invariance property the swarm invariant
/// and the `shard-smoke` CI job both check.
pub fn run_sharded_chaos(config: &ShardPlanConfig) -> ShardedChaosReport {
    assert!(config.cells <= 200, "cell index is an address octet");
    let ranges = partition_devices(config.total_devices, config.cells);
    let victim = gateway_addr(0);
    let flood_period =
        SimDuration::from_nanos(1_000_000_000 / u64::from(config.flood_pps.max(1)));

    let cells: Vec<CellSpec<CellOutcome>> = ranges
        .iter()
        .enumerate()
        .map(|(cell, range)| {
            let range = range.clone();
            let cells_total = config.cells;
            let seed = config.seed;
            let bot_every = config.bot_every;
            let attack_start = config.attack_start;
            let duration = config.duration;
            CellSpec {
                name: format!("cell{cell}"),
                build: Box::new(move |world: &mut World| {
                    let gateway = world.add_node(gateway_addr(cell), format!("gw{cell}"));
                    let mut members = vec![gateway];
                    let mut devices = Vec::with_capacity(range.len());
                    for (local, global) in range.clone().enumerate() {
                        let node =
                            world.add_node(device_addr(cell, local), format!("dev{global}"));
                        members.push(node);
                        devices.push((node, global));
                    }
                    world.add_csma_link(&members, LinkConfig::lan_100mbps());

                    let peer_gateway = gateway_addr((cell + 1) % cells_total);
                    for &(node, global) in &devices {
                        let beacon = DeviceBeacon {
                            gateway: gateway_addr(cell),
                            peer_gateway,
                            start_offset: SimDuration::from_millis(5 + (global % 13) as u64 * 7),
                            period: SimDuration::from_millis(50 + (global % 7) as u64 * 10),
                            cross_every: 4,
                            tick: 0,
                        };
                        let app =
                            world.add_app(node, Box::new(beacon), Provenance::Benign);
                        world.start_app(app, SimTime::ZERO);
                        if bot_every > 0 && global % bot_every == 0 {
                            let bot = BotFlood {
                                victim,
                                start: attack_start,
                                period: flood_period,
                            };
                            let app =
                                world.add_app(node, Box::new(bot), Provenance::Malicious);
                            world.start_app(app, SimTime::ZERO);
                        }
                    }

                    // Deterministic per-cell churn, on a named stream of
                    // the cell seed: a couple of devices drop off the
                    // segment and return, independent of every other
                    // cell and of the shard count.
                    let mut faults = SimRng::named(cell_seed(seed, cell), "faults");
                    for _ in 0..2 {
                        if devices.is_empty() {
                            break;
                        }
                        let target = devices[faults.below(devices.len() as u64) as usize].0;
                        let down_at = SimDuration::from_nanos(
                            faults.below(duration.as_nanos() / 2) + duration.as_nanos() / 5,
                        );
                        let down_for =
                            SimDuration::from_millis(100 + faults.below(400));
                        world.schedule_node_up(target, false, SimTime::ZERO + down_at);
                        world.schedule_node_up(
                            target,
                            true,
                            SimTime::ZERO + down_at + down_for,
                        );
                    }

                    let (sniffer, handle) = sniffer_pair(SnifferFilter::All);
                    world.add_tap(Box::new(sniffer));

                    let manifest = CellManifest {
                        exports: vec![(gateway_addr(cell), gateway)],
                    };
                    let device_nodes: Vec<NodeId> =
                        devices.iter().map(|&(node, _)| node).collect();
                    (manifest, Box::new((handle, gateway, device_nodes)) as CellState)
                }),
                finish: Box::new(move |world: &mut World, state: CellState| {
                    let (handle, gateway, device_nodes) = *state
                        .downcast::<(SnifferHandle, NodeId, Vec<NodeId>)>()
                        .expect("cell state");
                    let (mut device_sent, mut device_recv) = (0u64, 0u64);
                    for &node in &device_nodes {
                        let stats = world.node_stats(node);
                        device_sent += stats.sent_packets;
                        device_recv += stats.recv_packets;
                    }
                    CellOutcome {
                        records: handle.drain(),
                        gateway: world.node_stats(gateway),
                        device_sent,
                        device_recv,
                        events: world.events_processed(),
                    }
                }),
            }
        })
        .collect();

    let spec = ShardSpec {
        shards: config.shards,
        seed: config.seed,
        end: SimTime::ZERO + config.duration,
        boundary_latency: config.boundary_latency,
        buggify: config.buggify,
    };
    let ShardRun { reports, stats } = run_sharded(&spec, cells);

    // Merge the per-cell captures in cell order and run the windowed
    // rate detector over the victim's traffic.
    let streams: Vec<Vec<PacketRecord>> =
        reports.iter().map(|outcome| outcome.records.clone()).collect();
    let merged = merge_cell_records(streams);
    let windows = config.duration.as_nanos().div_ceil(1_000_000_000) as usize;
    let mut total = vec![0u64; windows];
    let mut at_victim = vec![0u64; windows];
    let mut malicious = vec![0u64; windows];
    for record in &merged {
        let w = (record.ts.as_nanos() / 1_000_000_000) as usize;
        let Some(slot) = total.get_mut(w.min(windows.saturating_sub(1))) else {
            continue;
        };
        *slot += 1;
        let w = w.min(windows.saturating_sub(1));
        if record.dst == victim {
            at_victim[w] += 1;
        }
        if record.label == capture::record::Label::Malicious {
            malicious[w] += 1;
        }
    }
    // Alert when the victim's per-window volume exceeds 4x its
    // pre-attack ceiling (each device beacons the cell-0 gateway only
    // from cell 0 or via the cross-cell beacon).
    let baseline = at_victim
        .iter()
        .take((config.attack_start.as_nanos() / 1_000_000_000).max(1) as usize)
        .copied()
        .max()
        .unwrap_or(0);
    let threshold = (baseline.max(1)) * 4;
    let mut log = String::new();
    for w in 0..windows {
        let alert = u8::from(at_victim[w] > threshold);
        let _ = writeln!(
            log,
            "w={w} total={} victim={} malicious={} alert={alert}",
            total[w], at_victim[w], malicious[w]
        );
    }

    // Telemetry: per-cell counters in cell order, then the cross-shard
    // accounting. `stats.workers` is deliberately omitted — it is the
    // one field that may differ between shard counts.
    let mut telemetry = String::new();
    let _ = writeln!(
        telemetry,
        "cells={} devices={} records={}",
        stats.cells,
        config.total_devices,
        merged.len()
    );
    for (cell, outcome) in reports.iter().enumerate() {
        let _ = writeln!(
            telemetry,
            "cell[{cell}] gw_recv={} gw_sent={} dev_sent={} dev_recv={} events={} captured={}",
            outcome.gateway.recv_packets,
            outcome.gateway.sent_packets,
            outcome.device_sent,
            outcome.device_recv,
            outcome.events,
            outcome.records.len()
        );
    }
    let _ = writeln!(
        telemetry,
        "shard rounds={} cross_sent={} cross_delivered={} cross_unroutable={} in_flight={}",
        stats.rounds,
        stats.cross_sent,
        stats.cross_delivered,
        stats.cross_unroutable,
        stats.cross_in_flight_at_end
    );
    let _ = writeln!(
        telemetry,
        "buggify boundary_evals={} boundary_fires={} cell_fires={}",
        stats.boundary_delay_evals, stats.boundary_delay_fires, stats.cell_buggify_fires
    );

    ShardedChaosReport { log, telemetry, stats, records: merged.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_device_evenly() {
        let ranges = partition_devices(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = partition_devices(4, 8);
        assert_eq!(ranges.iter().filter(|r| r.is_empty()).count(), 4);
        assert_eq!(ranges.last().unwrap().end, 4);
        let ranges = partition_devices(100_000, 64);
        assert_eq!(ranges.last().unwrap().end, 100_000);
        assert!(ranges.iter().all(|r| r.len() == 1562 || r.len() == 1563));
    }

    #[test]
    fn sharded_chaos_detects_the_flood_and_is_shard_invariant() {
        let mut config = ShardPlanConfig::smoke(77);
        config.shards = 1;
        let one = run_sharded_chaos(&config);
        config.shards = 4;
        let four = run_sharded_chaos(&config);

        assert_eq!(one.output(), four.output(), "shard count leaked into the artifact");
        assert_eq!(one.stats.conservation_violation(), None);
        assert_eq!(
            one.stats.clock_violation(SimTime::ZERO + config.duration),
            None
        );
        assert!(one.records > 0, "the sniffers captured traffic");
        assert!(one.stats.cross_sent > 0, "cross-cell traffic flowed");
        assert!(one.log.contains("alert=1"), "the flood tripped the detector:\n{}", one.log);
        let pre_attack = one.log.lines().take(4).collect::<String>();
        assert!(!pre_attack.contains("alert=1"), "no alert before the attack:\n{}", one.log);
    }

    #[test]
    fn buggified_sharded_chaos_stays_conservative() {
        let mut config = ShardPlanConfig::smoke(5);
        config.buggify = BuggifyConfig::swarm(11);
        config.shards = 2;
        let a = run_sharded_chaos(&config);
        let b = run_sharded_chaos(&config);
        assert_eq!(a.output(), b.output(), "buggified runs replay byte-identically");
        assert_eq!(a.stats.conservation_violation(), None);
        assert!(a.stats.cell_buggify_fires > 0 || a.stats.boundary_delay_fires > 0);
    }
}
