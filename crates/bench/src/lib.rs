//! Shared plumbing for the benchmark harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index). Run scale is selected with the
//! `DDOSHIELD_SCALE` environment variable: `quick`, `standard`
//! (default) or `paper` (the paper's 10 min + 5 min durations).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ddoshield::experiments::ExperimentScale;

/// Reads the experiment scale from `DDOSHIELD_SCALE`.
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("DDOSHIELD_SCALE").as_deref() {
        Ok("quick") => ExperimentScale::quick(),
        Ok("paper") => ExperimentScale::paper(),
        Ok(other) if other != "standard" => {
            eprintln!("unknown DDOSHIELD_SCALE {other:?}; using standard");
            ExperimentScale::standard()
        }
        _ => ExperimentScale::standard(),
    }
}

/// Reads the root seed from `DDOSHIELD_SEED` (default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("DDOSHIELD_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("| {:<width$} ", cell, width = widths[i]));
        }
        out.push_str("|\n");
    };
    let rule: String =
        widths.iter().map(|w| format!("+{:-<width$}", "", width = w + 2)).collect::<String>() + "+\n";
    out.push_str(&rule);
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    out.push_str(&rule);
    for row in rows {
        line(&mut out, row);
    }
    out.push_str(&rule);
    out
}

/// Standard banner naming the artefact being regenerated.
pub fn banner(artifact: &str, scale: &ExperimentScale, seed: u64) {
    println!("=== DDoShield-IoT reproduction: {artifact} ===");
    println!(
        "scale: capture={}s live={}s train_cap={} cnn_epochs={} | seed={seed}",
        scale.capture_secs, scale.live_secs, scale.max_train_samples, scale.cnn_epochs
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let s = render_table(
            &["Model", "Accuracy (%)"],
            &[
                vec!["RF".into(), "61.22".into()],
                vec!["K-Means".into(), "94.82".into()],
            ],
        );
        assert!(s.contains("RF"));
        assert!(s.contains("94.82"));
        assert!(s.lines().count() >= 6);
    }
}
