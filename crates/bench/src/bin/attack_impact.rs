//! Regenerates the **DDoSim-inherited attack-impact experiment** (E6,
//! §III-A): how device churn and attack duration shape the botnet's
//! impact on the TServer — connected bots, flood volume at the victim,
//! SYN-backlog drops, and collateral damage to benign transactions.

use bench::{banner, render_table, seed_from_env};
use ddoshield::experiments::{run_attack_impact, ExperimentScale};

fn main() {
    let scale = ExperimentScale::quick(); // grid of runs; each is short
    let seed = seed_from_env();
    banner("§III-A — churn and attack-duration impact on the TServer", &scale, seed);

    let churn_rates = [0.0, 2.0, 6.0];
    let durations = [10u32, 30];
    let points = run_attack_impact(seed, &churn_rates, &durations);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.churn_per_min),
                p.attack_secs.to_string(),
                p.connected_bots.to_string(),
                p.victim_recv_packets.to_string(),
                p.victim_syn_drops.to_string(),
                p.benign_completed.to_string(),
                p.benign_failed.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "churn/min",
                "attack (s)",
                "bots online",
                "victim rx pkts",
                "SYN drops",
                "benign ok",
                "benign failed",
            ],
            &rows,
        )
    );
    println!("expected shape: longer attacks deliver proportionally more flood volume;");
    println!("higher churn reduces connected bots and hence delivered volume.");
}
