//! Smoke/calibration utility: one quick-scale full evaluation with a
//! compact one-line-per-model summary — the fastest way to check that a
//! change kept the Table I/II shapes intact. Not itself a paper
//! artefact (use `table1`/`table2` for those).

use ddoshield::experiments::{run_full_evaluation, ExperimentScale};

fn main() {
    let scale = ExperimentScale::quick();
    let t0 = std::time::Instant::now();
    let report = run_full_evaluation(42, &scale);
    println!("elapsed: {:?}", t0.elapsed());
    println!(
        "dataset: total={} malicious={} benign={} mal_frac={:.3} span={:.1}s",
        report.dataset.total(),
        report.dataset.malicious,
        report.dataset.benign,
        report.dataset.malicious_fraction(),
        report.capture_secs,
    );
    for m in &report.models {
        println!(
            "{:<8} train[{}] samples={} live_acc={:.2}% min={:.1}% mixed={:?} pure={:?} windows={} sust[{}]",
            m.name,
            m.train_metrics,
            m.train_samples,
            m.accuracy_percent(),
            m.log.min_accuracy() * 100.0,
            m.log.mean_accuracy_mixed().map(|a| (a * 100.0).round()),
            m.log.mean_accuracy_pure().map(|a| (a * 100.0).round()),
            m.log.len(),
            m.sustainability,
        );
    }
}
