//! Regenerates the paper's **§V planned extension** (E8): the additional
//! ML models the paper names for future investigation — SVM, Isolation
//! Forest (IF) and a (variational) autoencoder — evaluated in exactly
//! the same capture → train → live-detection pipeline as Table I/II,
//! to "identify an optimal algorithm that combines high performance and
//! efficient resource consumption".

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_extended_evaluation;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("§V extension — SVM / Isolation Forest / Autoencoder vs the original three", &scale, seed);

    let report = run_extended_evaluation(seed, &scale);

    let rows: Vec<Vec<String>> = report
        .models
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:.4}", m.train_metrics.accuracy),
                format!("{:.2}", m.accuracy_percent()),
                format!("{:.3}", m.sustainability.cpu_percent),
                format!("{:.2}", m.sustainability.memory_kb),
                format!("{:.2}", m.sustainability.model_size_kb),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Model", "Train acc", "Live acc (%)", "CPU (%)", "Memory (Kb)", "Size (Kb)"],
            &rows,
        )
    );
    println!("the paper's stated goal for this sweep: an 'ideal profile' for resource-");
    println!("constrained IoT — high real-time accuracy at minimal model size/memory.");
}
