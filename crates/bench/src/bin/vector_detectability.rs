//! Regenerates the **per-vector detectability extension** (E10): the
//! same trained K-Means IDS faces live runs that each use a single
//! attack vector — the paper's three (SYN/ACK/UDP) plus the HTTP flood
//! §IV-D defers because it "necessitates additional application-level
//! analysis". The expected shape: raw floods stay detectable; the HTTP
//! flood's real GET-over-TCP traffic is far harder for a
//! flow-statistics IDS, validating the paper's deferral.

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_vector_detectability;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("E10 — per-vector detectability (incl. the deferred HTTP flood)", &scale, seed);

    let rows: Vec<Vec<String>> = run_vector_detectability(seed, &scale)
        .into_iter()
        .map(|v| {
            vec![
                v.vector,
                format!("{:.2}", v.accuracy_percent),
                format!("{:.2}", v.malicious_recall_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Vector", "overall acc (%)", "malicious recall (%)"], &rows)
    );
    println!("expected shape: SYN/ACK/UDP attack windows detected with high accuracy;");
    println!("the HTTP flood — real requests over real connections — evades the");
    println!("flow-statistics IDS, as the paper anticipates for application-level attacks.");
}
