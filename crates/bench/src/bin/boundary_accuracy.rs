//! Regenerates **§IV-D's per-second accuracy analysis** (E4): the
//! accuracy of each model per detection window, showing the dips at the
//! first and last second of each attack. The paper reports a 35 %
//! minimum for K-Means and attributes the dips to the statistical
//! features being identical for every packet in a mixed boundary window.

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_full_evaluation;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("§IV-D — per-second accuracy at attack boundaries", &scale, seed);

    let report = run_full_evaluation(seed, &scale);

    // Summary: overall vs mixed-window vs pure-window accuracy.
    let rows: Vec<Vec<String>> = report
        .models
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:.2}", m.accuracy_percent()),
                format!("{:.2}", m.log.min_accuracy() * 100.0),
                m.log
                    .mean_accuracy_mixed()
                    .map(|a| format!("{:.2}", a * 100.0))
                    .unwrap_or_else(|| "-".into()),
                m.log
                    .mean_accuracy_pure()
                    .map(|a| format!("{:.2}", a * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Model", "mean acc (%)", "min acc (%)", "mixed windows (%)", "pure windows (%)"],
            &rows,
        )
    );
    println!("paper: minimum registered 35% (K-Means) at the first/last second of an attack\n");

    // The full per-second series, one column per model (figure data).
    println!("per-second accuracy series (M = mixed ground-truth window):");
    let logs: Vec<_> = report.models.iter().map(|m| m.log.results()).collect();
    let names: Vec<_> = report.models.iter().map(|m| m.name).collect();
    println!("window  {}", names.iter().map(|n| format!("{n:>9}")).collect::<String>());
    let longest = logs.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        let idx = logs
            .iter()
            .filter_map(|l| l.get(i))
            .map(|d| d.window_index)
            .next()
            .unwrap_or(i as u64);
        let mut line = format!("{idx:<7}");
        let mut mixed = false;
        for log in &logs {
            match log.get(i) {
                Some(d) => {
                    line.push_str(&format!("{:>8.1}%", d.accuracy() * 100.0));
                    mixed |= d.mixed;
                }
                None => line.push_str("        -"),
            }
        }
        if mixed {
            line.push_str("  M");
        }
        println!("{line}");
    }
}
