//! Diagnostic utility: prints the per-window statistical features of a
//! training run and the matching live run side by side — the tool used
//! to calibrate the E1 distribution shift (see DESIGN.md §4). Not a
//! paper artefact.

use ddoshield::experiments::{detection_scenario, training_scenario, ExperimentScale};
use ddoshield::Testbed;
use features::extract::windows_of;
use netsim::time::SimDuration;

fn summarize(name: &str, ds: &capture::Dataset) {
    let windows = windows_of(ds, 1);
    println!("== {name}: {} windows", windows.len());
    for w in windows.iter().take(60) {
        let s = &w.stats;
        println!(
            "w{:<4} n={:<6.0} mal={:<6} ent={:.2} srcent={:.2} top={:.2} syn0={:<5.0} flows={:<6.0} udp={:.2} len={:.0}",
            w.index,
            s.packet_count,
            w.records.iter().filter(|r| r.label == capture::Label::Malicious).count(),
            s.dst_port_entropy,
            s.src_addr_entropy,
            s.top_dst_port_fraction,
            s.syn_without_ack,
            s.flow_rate,
            s.udp_fraction,
            s.mean_pkt_len,
        );
    }
}

fn main() {
    let scale = ExperimentScale::quick();
    let mut t = Testbed::deploy(training_scenario(42, scale.capture_secs));
    t.run_infection_lead();
    let train = t.run_capture(SimDuration::from_secs(scale.capture_secs));
    summarize("train", &train);
    let mut l = Testbed::deploy(detection_scenario(42, scale.live_secs, scale.capture_secs + 5));
    l.run_infection_lead();
    let _ = l.run_capture(SimDuration::from_secs(scale.capture_secs + 5));
    let live = l.run_capture(SimDuration::from_secs(scale.live_secs));
    summarize("live", &live);
}
