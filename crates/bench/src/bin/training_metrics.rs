//! Regenerates **§IV-D's train-time evaluation** (E5): accuracy,
//! precision, recall and F1 of all three models on a held-out slice of
//! the training capture. The paper reports that "all models have
//! attained values across these evaluation metrics, with a small amount
//! of false positives and false negatives" — i.e. uniformly high
//! train-time metrics (the contrast with Table I is the point).

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::{paper_models, run_training_capture};
use ids::pipeline::{IdsConfig, TrainedIds};
use netsim::rng::SimRng;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("§IV-D — train-time metrics (accuracy / precision / recall / F1)", &scale, seed);

    let capture = run_training_capture(seed, &scale);
    println!(
        "training capture: {} packets over {:.0}s\n",
        capture.len(),
        capture.duration_secs()
    );

    let mut rows = Vec::new();
    for kind in paper_models(&scale) {
        let mut rng = SimRng::seed_from(seed ^ 0x7ea1);
        let config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
        let outcome = TrainedIds::train(&capture, &kind, config, &mut rng)
            .expect("training capture contains both classes");
        let m = outcome.holdout_metrics;
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.4}", m.accuracy),
            format!("{:.4}", m.precision),
            format!("{:.4}", m.recall),
            format!("{:.4}", m.f1),
            outcome.train_samples.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Model", "Accuracy", "Precision", "Recall", "F1", "Train samples"], &rows)
    );
    println!("expected shape: all three models score high on in-distribution holdout data.");
}
