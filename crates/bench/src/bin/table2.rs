//! Regenerates **Table II**: ML model sustainability (CPU %, Memory Kb,
//! Model Size Kb), measured on the Real-Time IDS Unit's actual loop.
//!
//! Paper values (Python/TF on a 2.7 GHz laptop):
//! RF 65.46 % / 98.07 Kb / 712.30 Kb; K-Means 67.88 % / 86.83 Kb /
//! 11.20 Kb; CNN 65.94 % / 275.85 Kb / 736.30 Kb. The reproduced *shape*
//! is: CPU roughly model-independent (feature computation dominates) and
//! the K-Means model smaller than the others by well over an order of
//! magnitude. Our Rust pipeline is far faster than the paper's Python
//! stack, so absolute CPU percentages are much lower; see EXPERIMENTS.md.

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_full_evaluation;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("Table II — ML model sustainability", &scale, seed);

    let report = run_full_evaluation(seed, &scale);

    let paper = [
        ("RF", (65.46, 98.07, 712.30)),
        ("K-Means", (67.88, 86.83, 11.20)),
        ("CNN", (65.94, 275.85, 736.30)),
    ];
    let rows: Vec<Vec<String>> = report
        .models
        .iter()
        .map(|m| {
            let s = &m.sustainability;
            let p = paper.iter().find(|(name, _)| *name == m.name).map(|(_, p)| *p);
            vec![
                m.name.to_string(),
                format!("{:.3}", s.cpu_percent),
                format!("{:.2}", s.memory_kb),
                format!("{:.2}", s.model_size_kb),
                p.map(|(c, _, _)| format!("{c:.2}")).unwrap_or_default(),
                p.map(|(_, m, _)| format!("{m:.2}")).unwrap_or_default(),
                p.map(|(_, _, s)| format!("{s:.2}")).unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "CPU (%)",
                "Memory (Kb)",
                "Model Size (Kb)",
                "CPU paper",
                "Mem paper",
                "Size paper",
            ],
            &rows,
        )
    );

    // The paper's headline Table II observation: the K-Means model is the
    // lightest by a wide margin.
    let sizes: Vec<(String, f64)> = report
        .models
        .iter()
        .map(|m| (m.name.to_string(), m.sustainability.model_size_kb))
        .collect();
    if let Some(km) = sizes.iter().find(|(n, _)| n == "K-Means") {
        for (name, size) in &sizes {
            if name != "K-Means" {
                println!("model-size ratio {name}/K-Means = {:.1}x", size / km.1);
            }
        }
    }
}
