//! Regenerates **§IV-D's dataset statistics** (E3): the training capture
//! composition. Paper: a 10-minute run yields 3,012,885 malicious and
//! 2,243,634 benign packets — a nearly balanced dataset (57.3 %
//! malicious). The reproduced property is the near-balance; absolute
//! counts scale with run length and traffic intensity.

use bench::{banner, render_table, scale_from_env, seed_from_env};
use capture::record::Label;
use ddoshield::experiments::run_training_capture;
use netsim::packet::Protocol;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("§IV-D — training dataset composition", &scale, seed);

    let dataset = run_training_capture(seed, &scale);
    let counts = dataset.class_counts();

    let rows = vec![
        vec![
            "measured".to_string(),
            counts.malicious.to_string(),
            counts.benign.to_string(),
            counts.total().to_string(),
            format!("{:.1}%", 100.0 * counts.malicious_fraction()),
            format!("{:.3}", counts.balance()),
        ],
        vec![
            "paper (10 min)".to_string(),
            "3012885".to_string(),
            "2243634".to_string(),
            "5256519".to_string(),
            "57.3%".to_string(),
            "0.745".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["run", "malicious", "benign", "total", "malicious frac", "balance (min/max)"],
            &rows,
        )
    );

    // Per-protocol and per-flag breakdown of the capture.
    let mut tcp = 0u64;
    let mut udp = 0u64;
    let mut syn = 0u64;
    let mut rst = 0u64;
    let mut malicious_udp = 0u64;
    for r in dataset.records() {
        match r.protocol {
            Protocol::Tcp => tcp += 1,
            Protocol::Udp => udp += 1,
        }
        if r.is_bare_syn() {
            syn += 1;
        }
        if r.flags.contains(netsim::TcpFlags::RST) {
            rst += 1;
        }
        if r.protocol == Protocol::Udp && r.label == Label::Malicious {
            malicious_udp += 1;
        }
    }
    println!("protocols: tcp={tcp} udp={udp} (malicious udp={malicious_udp})");
    println!("tcp flags: bare_syn={syn} rst={rst}");
    println!("span: {:.1} virtual seconds", dataset.duration_secs());
    println!(
        "rate: {:.0} packets per virtual second",
        dataset.len() as f64 / dataset.duration_secs().max(1e-9)
    );
}
