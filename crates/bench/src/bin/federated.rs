//! Regenerates the paper's **§VI future-work experiment** (E9): an
//! FL-based NIDS emulated on the testbed. Several monitoring sites
//! (independent testbed deployments) train the shared CNN locally and
//! exchange only parameters (FedAvg); the aggregated global model is
//! compared against a centrally trained CNN on the same live detection
//! run. Raw traffic never leaves a site — the privacy property that
//! motivates the paper's FL plan.

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_federated_experiment;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("§VI — federated-learning NIDS emulation (FedAvg over capture sites)", &scale, seed);

    let report = run_federated_experiment(seed, &scale, 3);

    println!("coordinator-holdout accuracy per FedAvg round:");
    for (round, acc) in report.round_accuracy.iter().enumerate() {
        println!("  round {:>2}: {:.2}%", round + 1, acc * 100.0);
    }
    println!();
    let rows = vec![
        vec![
            format!("federated CNN ({} sites)", report.clients),
            format!("{:.2}", report.federated_live_percent),
        ],
        vec!["centralized CNN (1 site)".to_string(), format!("{:.2}", report.centralized_live_percent)],
    ];
    println!("{}", render_table(&["Model", "Live accuracy (%)"], &rows));
    println!("expected shape: the federated model approaches the centralized model's");
    println!("live accuracy without any site sharing raw traffic.");
}
