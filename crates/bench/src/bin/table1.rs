//! Regenerates **Table I**: ML model accuracy in real-time detection.
//!
//! Paper values: RF 61.22 %, K-Means 94.82 %, CNN 95.47 %. The expected
//! *shape* — RF collapses out of distribution while K-Means and CNN stay
//! in the mid-90s — is what this run reproduces (absolute values depend
//! on scale and seed; see EXPERIMENTS.md).

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_full_evaluation;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("Table I — ML model performance in real-time detection", &scale, seed);

    let report = run_full_evaluation(seed, &scale);

    let paper = [("RF", 61.22), ("K-Means", 94.82), ("CNN", 95.47)];
    let rows: Vec<Vec<String>> = report
        .models
        .iter()
        .map(|m| {
            let paper_value = paper
                .iter()
                .find(|(name, _)| *name == m.name)
                .map(|(_, v)| format!("{v:.2}"))
                .unwrap_or_default();
            vec![
                m.name.to_string(),
                format!("{:.2}", m.accuracy_percent()),
                paper_value,
                format!("{}", m.log.len()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Model", "Accuracy (%) [measured]", "Accuracy (%) [paper]", "Windows"], &rows)
    );

    println!(
        "training capture: {} packets ({} malicious / {} benign, {:.1}% malicious)",
        report.dataset.total(),
        report.dataset.malicious,
        report.dataset.benign,
        100.0 * report.dataset.malicious_fraction()
    );
}
