//! Regenerates **§IV-E's CPU-mitigation analysis** (E7): "a strategic
//! approach to mitigate this high CPU usage involves adjusting the
//! frequency at which statistical features are computed. By extending
//! the period for computing these features, a reduction in CPU
//! utilisation can be achieved." This sweep runs the K-Means IDS with
//! increasing statistical-feature recomputation periods (detection
//! windows stay at 1 s) and reports CPU use and accuracy.

use bench::{banner, render_table, scale_from_env, seed_from_env};
use ddoshield::experiments::run_window_ablation;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    banner("§IV-E — statistical-feature window-length ablation (K-Means IDS)", &scale, seed);

    let periods = [1u64, 2, 5, 10];
    let points = run_window_ablation(seed, &scale, &periods);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.stats_period.to_string(),
                format!("{:.4}", p.cpu_percent),
                format!("{:.2}", p.accuracy_percent),
                p.flows_folded.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["stats period (s)", "CPU (%)", "accuracy (%)", "flows folded"], &rows)
    );
    println!("expected shape: CPU utilisation falls as the recomputation period grows");
    println!("(statistics are the dominant per-window cost); accuracy stays comparable");
    println!("or degrades slightly as windows reuse staler statistics.");
}
