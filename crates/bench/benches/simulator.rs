//! Criterion bench: raw testbed simulation throughput — virtual seconds
//! of the full scenario (benign workload + botnet + capture) per
//! wall-clock second, the metric that bounds how far the testbed scales.

use criterion::{criterion_group, criterion_main, Criterion};
use ddoshield::experiments::training_scenario;
use ddoshield::shardplan::{run_sharded_chaos, ShardPlanConfig};
use ddoshield::Testbed;
use features::extract::extract_matrix;
use netsim::time::SimDuration;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group.sample_size(10);

    group.bench_function("deploy", |b| {
        b.iter(|| black_box(Testbed::deploy(training_scenario(13, 30))))
    });

    group.bench_function("infection_lead_20s", |b| {
        b.iter(|| {
            let mut testbed = Testbed::deploy(training_scenario(13, 30));
            testbed.run_infection_lead();
            black_box(testbed.botnet_stats().snapshot().infections)
        })
    });

    group.bench_function("capture_10s_with_attack", |b| {
        b.iter(|| {
            let mut testbed = Testbed::deploy(training_scenario(13, 30));
            testbed.run_infection_lead();
            let dataset = testbed.run_capture(SimDuration::from_secs(10));
            black_box(dataset.len())
        })
    });

    // The acceptance metric of the zero-copy pipeline: everything from
    // deploy to a ready feature matrix, i.e. simulate + capture +
    // window + extract end to end.
    group.bench_function("simulate_extract_e2e", |b| {
        b.iter(|| {
            let mut testbed = Testbed::deploy(training_scenario(13, 30));
            testbed.run_infection_lead();
            let dataset = testbed.run_capture(SimDuration::from_secs(10));
            let (matrix, labels) = extract_matrix(&dataset, 1);
            black_box((matrix.n_rows(), labels.len()))
        })
    });

    // The sharded-simulation scaling metric: 100k devices across 64
    // cells (build + run + merge + detect) on 8 worker shards. The
    // committed baseline's `speedup` field records the measured 1-shard
    // over 8-shard wall-clock ratio on an 8-core runner.
    group.bench_function("sharded_100k", |b| {
        b.iter(|| {
            let mut config = ShardPlanConfig::bench_100k(13);
            config.shards = 8;
            let report = run_sharded_chaos(&config);
            assert_eq!(report.stats.conservation_violation(), None);
            black_box(report.records)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
