//! Criterion bench: the per-second preprocessing stage — window
//! statistics and full feature extraction — which §IV-E identifies as
//! the dominant CPU cost of the IDS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddoshield::experiments::{run_training_capture, ExperimentScale};
use features::extract::{extract_matrix, windows_of, TOTAL_FEATURES};
use features::incremental::FlowDelta;
use features::window::{AckGrace, WindowStats};
use ml::matrix::FeatureMatrix;
use std::hint::black_box;

fn bench_features(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let capture = run_training_capture(7, &scale);
    let windows = windows_of(&capture, 1);
    let quiet = windows.iter().min_by_key(|w| w.records.len()).expect("windows exist").clone();
    let busy = windows.iter().max_by_key(|w| w.records.len()).expect("windows exist").clone();

    let mut group = c.benchmark_group("window_stats");
    for (name, window) in [("quiet", &quiet), ("busy", &busy)] {
        group.bench_with_input(BenchmarkId::new(name, window.records.len()), window, |b, w| {
            b.iter(|| black_box(WindowStats::compute(black_box(&w.records), 1.0)))
        });
    }
    // The incremental path over the same busy window: a persistent
    // FlowDelta (warm scratch maps, as in the long-lived aggregator)
    // absorbs the records one by one and folds only the flows it
    // touched at close — the cost the serving layer actually pays per
    // window, vs the batch recompute above.
    let carry = AckGrace::default();
    let mut delta = FlowDelta::new();
    group.bench_with_input(
        BenchmarkId::new("busy_streaming", busy.records.len()),
        &busy,
        |b, w| {
            b.iter(|| {
                for r in &w.records {
                    delta.push(r);
                }
                let (stats, _) = delta.close(1.0, f64::INFINITY, 0.0, &carry);
                black_box(stats)
            })
        },
    );
    group.finish();

    let mut group = c.benchmark_group("feature_matrix");
    for (name, window) in [("quiet", &quiet), ("busy", &busy)] {
        let mut rows = FeatureMatrix::with_capacity(window.records.len(), TOTAL_FEATURES);
        group.bench_with_input(BenchmarkId::new(name, window.records.len()), window, |b, w| {
            b.iter(|| {
                rows.clear();
                w.append_features(&mut rows);
                black_box(rows.n_rows())
            })
        });
    }
    group.finish();

    c.bench_function("windows_of_full_capture", |b| {
        b.iter(|| black_box(windows_of(black_box(&capture), 1).len()))
    });

    c.bench_function("extract_matrix_full_capture", |b| {
        b.iter(|| {
            let (matrix, labels) = extract_matrix(black_box(&capture), 1);
            black_box((matrix.n_rows(), labels.len()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_features
}
criterion_main!(benches);
