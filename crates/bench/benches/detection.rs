//! Criterion bench: per-window real-time detection latency of each model
//! (the compute inside one tick of the Real-Time IDS Unit, which drives
//! Table II's CPU column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddoshield::experiments::{paper_models, run_training_capture, ExperimentScale};
use features::extract::windows_of;
use ids::pipeline::{IdsConfig, TrainedIds};
use netsim::rng::SimRng;
use std::hint::black_box;

fn bench_detection(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let capture = run_training_capture(7, &scale);
    let windows = windows_of(&capture, 1);
    // A representative busy window (mid-attack).
    let window = windows
        .iter()
        .max_by_key(|w| w.records.len())
        .expect("capture has windows")
        .clone();

    let mut group = c.benchmark_group("classify_window");
    for kind in paper_models(&scale) {
        let mut rng = SimRng::seed_from(11);
        let config = IdsConfig { max_train_samples: 3_000, ..IdsConfig::default() };
        let trained = TrainedIds::train(&capture, &kind, config, &mut rng)
            .expect("capture contains both classes");
        group.bench_with_input(
            BenchmarkId::new(kind.name(), window.records.len()),
            &window,
            |b, w| b.iter(|| black_box(trained.ids.classify_window(black_box(w)))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_detection
}
criterion_main!(benches);
