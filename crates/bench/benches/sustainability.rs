//! Criterion bench: model training cost and model encode (PKL-persist)
//! cost — the offline half of the IDS life-cycle behind Table II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddoshield::experiments::{paper_models, run_training_capture, ExperimentScale};
use ids::pipeline::{IdsConfig, TrainedIds};
use netsim::rng::SimRng;
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let capture = run_training_capture(7, &scale);

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for kind in paper_models(&scale) {
        // Small cap: the bench measures relative training cost, not
        // absolute wall time on full captures.
        let config = IdsConfig { max_train_samples: 1_500, ..IdsConfig::default() };
        group.bench_function(BenchmarkId::new(kind.name(), 1_500), |b| {
            b.iter(|| {
                let mut rng = SimRng::seed_from(11);
                black_box(
                    TrainedIds::train(black_box(&capture), &kind, config, &mut rng)
                        .expect("capture contains both classes"),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("encode_model");
    for kind in paper_models(&scale) {
        let mut rng = SimRng::seed_from(11);
        let config = IdsConfig { max_train_samples: 1_500, ..IdsConfig::default() };
        let trained = TrainedIds::train(&capture, &kind, config, &mut rng)
            .expect("capture contains both classes");
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(trained.ids.model().encode()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training
}
criterion_main!(benches);
