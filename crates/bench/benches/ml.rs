//! ML hot-path benchmarks: training and batch prediction.
//!
//! `rf_train` compares the presorted, cache-friendly CART implementation
//! against `legacy_node_sort`, a self-contained replica of the previous
//! per-node-sorting split search (bit-for-bit the old algorithm, kept
//! here so the speedup is measured against the real thing rather than a
//! strawman). The remaining targets track absolute training/prediction
//! cost of the other detectors over the flat [`FeatureMatrix`] path.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_ml.json cargo bench -p bench
//! --bench ml` to capture the summary numbers. Parallel speedups only
//! show on multi-core hosts; on a single-core runner the presort is the
//! measurable win and the rayon path degrades gracefully to serial.

use capture::dataset::Dataset;
use capture::record::{Label, PacketRecord};
use criterion::{criterion_group, criterion_main, Criterion};
use features::extract::WindowAggregator;
use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ids::serving::{BackpressurePolicy, IngestQueue};
use ml::classifier::Classifier;
use ml::cnn::{Cnn, CnnConfig};
use ml::kmeans::{KMeans, KMeansConfig};
use ml::matrix::FeatureMatrix;
use ml::rf::{ForestConfig, RandomForest};
use netsim::packet::{Addr, Protocol};
use netsim::rng::SimRng;
use netsim::time::SimTime;
use std::hint::black_box;

/// Feature arity: matches the paper's 23-dimensional windowed set.
const DIMS: usize = 23;
/// Training-set size for the forest / clustering benches.
const N_SAMPLES: usize = 1500;
/// Smaller subset for the CNN (one epoch dominates the others anyway).
const N_CNN: usize = 400;

/// Synthetic two-class dataset with correlated features and label
/// noise — enough structure that trees actually split to depth.
fn synth(n: usize, seed: u64) -> (FeatureMatrix, Vec<usize>, Vec<Vec<f64>>) {
    let mut rng = SimRng::seed_from(seed);
    let mut matrix = FeatureMatrix::new(DIMS);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.chance(0.5);
        let shift = if class { 0.6 } else { 0.0 };
        let mut row = [0.0f64; DIMS];
        for (j, v) in row.iter_mut().enumerate() {
            // A few discrete features (ports/flags analogues), the rest
            // continuous; class-dependent shift on half the columns.
            *v = if j % 5 == 0 {
                rng.below(6) as f64
            } else {
                rng.standard_normal() + if j % 2 == 0 { shift } else { 0.0 }
            };
        }
        let label = if rng.chance(0.08) { usize::from(!class) } else { usize::from(class) };
        matrix.push_row(&row);
        rows.push(row.to_vec());
        labels.push(label);
    }
    (matrix, labels, rows)
}

// ---------------------------------------------------------------------
// Legacy baseline: the previous CART split search, which re-sorted the
// candidate feature values at every node and re-scanned all bag indices
// per threshold. Replicated verbatim (modulo trimming) from the
// pre-rework `ml::rf` so the benchmark ratio is honest.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct LegacyTreeConfig {
    max_depth: usize,
    min_samples_split: usize,
    max_features: usize,
    threshold_candidates: usize,
}

enum LegacyNode {
    Leaf,
    // Fields are written but never read back: the baseline only trains,
    // it never predicts, but the stores are part of the measured work.
    #[allow(dead_code)]
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

struct LegacyTree {
    nodes: Vec<LegacyNode>,
}

fn legacy_gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

fn legacy_best_split(
    x: &[Vec<f64>],
    y: &[usize],
    indices: &[usize],
    config: &LegacyTreeConfig,
    rng: &mut SimRng,
) -> Option<(usize, f64)> {
    let dims = x[0].len();
    let mut features: Vec<usize> = (0..dims).collect();
    rng.shuffle(&mut features);
    features.truncate(config.max_features.min(dims));

    let total = indices.len();
    let total_pos = indices.iter().filter(|&&i| y[i] == 1).count();
    let parent = legacy_gini(total_pos, total);

    let mut best: Option<(f64, usize, f64)> = None;
    for &feature in &features {
        // The hot spot being replaced: a fresh sort of the node's values
        // for every (node, feature) pair...
        let mut values: Vec<f64> = indices.iter().map(|&i| x[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let midpoints: Vec<f64> = values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        let budget = config.threshold_candidates.max(1);
        let chosen: Vec<f64> = if midpoints.len() <= budget {
            midpoints
        } else {
            (0..budget)
                .map(|c| midpoints[c * (midpoints.len() - 1) / (budget - 1).max(1)])
                .collect()
        };
        for threshold in chosen {
            // ...followed by a full rescan of the bag per threshold.
            let mut left_n = 0usize;
            let mut left_pos = 0usize;
            for &i in indices {
                if x[i][feature] <= threshold {
                    left_n += 1;
                    left_pos += usize::from(y[i] == 1);
                }
            }
            let right_n = total - left_n;
            if left_n == 0 || right_n == 0 {
                continue;
            }
            let right_pos = total_pos - left_pos;
            let weighted = (left_n as f64 * legacy_gini(left_pos, left_n)
                + right_n as f64 * legacy_gini(right_pos, right_n))
                / total as f64;
            let gain = parent - weighted;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, feature, threshold));
            }
        }
    }
    best.map(|(_, feature, threshold)| (feature, threshold))
}

fn legacy_grow(
    tree: &mut LegacyTree,
    x: &[Vec<f64>],
    y: &[usize],
    indices: Vec<usize>,
    depth: usize,
    config: &LegacyTreeConfig,
    rng: &mut SimRng,
) -> u32 {
    let node_id = tree.nodes.len() as u32;
    let first = y[indices[0]];
    let pure = indices.iter().all(|&i| y[i] == first);
    if depth >= config.max_depth || indices.len() < config.min_samples_split || pure {
        tree.nodes.push(LegacyNode::Leaf);
        return node_id;
    }
    let Some((feature, threshold)) = legacy_best_split(x, y, &indices, config, rng) else {
        tree.nodes.push(LegacyNode::Leaf);
        return node_id;
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| x[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        tree.nodes.push(LegacyNode::Leaf);
        return node_id;
    }
    tree.nodes.push(LegacyNode::Leaf);
    let left = legacy_grow(tree, x, y, left_idx, depth + 1, config, rng);
    let right = legacy_grow(tree, x, y, right_idx, depth + 1, config, rng);
    tree.nodes[node_id as usize] = LegacyNode::Split { feature, threshold, left, right };
    node_id
}

/// The old serial forest loop: bootstrap bag then fit, one tree at a
/// time, all from a single rng stream.
fn legacy_forest_fit(
    x: &[Vec<f64>],
    y: &[usize],
    config: &ForestConfig,
    rng: &mut SimRng,
) -> Vec<LegacyTree> {
    let dims = x[0].len();
    let legacy = LegacyTreeConfig {
        max_depth: config.tree.max_depth,
        min_samples_split: config.tree.min_samples_split,
        max_features: config
            .tree
            .max_features
            .unwrap_or_else(|| (dims as f64).sqrt().ceil() as usize),
        threshold_candidates: config.tree.threshold_candidates,
    };
    let n = x.len();
    (0..config.n_trees.max(1))
        .map(|_| {
            let indices: Vec<usize> = if config.bootstrap {
                (0..n).map(|_| rng.below(n as u64) as usize).collect()
            } else {
                (0..n).collect()
            };
            let mut tree = LegacyTree { nodes: Vec::new() };
            legacy_grow(&mut tree, x, y, indices, 0, &legacy, rng);
            tree
        })
        .collect()
}

fn bench_ml(c: &mut Criterion) {
    let (matrix, labels, rows) = synth(N_SAMPLES, 42);
    let forest_config = ForestConfig::default();

    // Untimed warmup: fault in the dataset and let the first-fit page
    // allocations happen outside the measured window.
    {
        let mut rng = SimRng::seed_from(7);
        black_box(RandomForest::fit_view(matrix.view(), &labels, &forest_config, &mut rng).unwrap());
        let mut rng = SimRng::seed_from(7);
        black_box(legacy_forest_fit(&rows, &labels, &forest_config, &mut rng));
    }

    let mut group = c.benchmark_group("rf_train");
    group.sample_size(10);
    group.bench_function("presorted", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(7);
            black_box(
                RandomForest::fit_view(matrix.view(), &labels, &forest_config, &mut rng).unwrap(),
            )
        })
    });
    group.bench_function("presorted_threads_1", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(7);
            ml::par::with_threads(1, || {
                black_box(
                    RandomForest::fit_view(matrix.view(), &labels, &forest_config, &mut rng)
                        .unwrap(),
                )
            })
        })
    });
    group.bench_function("legacy_node_sort", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(7);
            black_box(legacy_forest_fit(&rows, &labels, &forest_config, &mut rng))
        })
    });
    group.finish();

    let (cnn_matrix, cnn_labels, _) = synth(N_CNN, 43);
    let cnn_config = CnnConfig { input_len: DIMS, epochs: 1, ..CnnConfig::default() };
    let mut group = c.benchmark_group("cnn_train");
    group.sample_size(10);
    group.bench_function("one_epoch", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(7);
            black_box(
                Cnn::fit_view(cnn_matrix.view(), &cnn_labels, &cnn_config, &mut rng).unwrap(),
            )
        })
    });
    // Identical results by construction; the ratio to `one_epoch` is the
    // parallel speedup (≈ 1 on a single-core host).
    group.bench_function("one_epoch_threads_1", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(7);
            ml::par::with_threads(1, || {
                black_box(
                    Cnn::fit_view(cnn_matrix.view(), &cnn_labels, &cnn_config, &mut rng).unwrap(),
                )
            })
        })
    });
    group.finish();

    let kmeans_config = KMeansConfig::default();
    let mut group = c.benchmark_group("kmeans_train");
    group.sample_size(10);
    group.bench_function("fit", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(7);
            black_box(KMeans::fit_view(matrix.view(), &kmeans_config, &mut rng).unwrap())
        })
    });
    group.finish();

    let mut rng = SimRng::seed_from(7);
    let forest = RandomForest::fit_view(matrix.view(), &labels, &forest_config, &mut rng).unwrap();
    let mut group = c.benchmark_group("predict_batch");
    group.sample_size(20);
    group.bench_function("rf", |b| {
        b.iter(|| black_box(forest.predict_batch(matrix.view())))
    });
    group.finish();

    bench_serving_window(c);
}

/// Synthetic labeled packet stream: `per_window` packets per second for
/// `secs` seconds, benign HTTP-ish flows mixed with a malicious flood.
fn synth_packets(secs: u64, per_window: u64, seed: u64) -> Vec<PacketRecord> {
    let mut rng = SimRng::seed_from(seed);
    let mut records = Vec::with_capacity((secs * per_window) as usize);
    for s in 0..secs {
        for i in 0..per_window {
            let malicious = rng.chance(0.4);
            let (src, dst_port, wire_len, label) = if malicious {
                (Addr::new(10, 0, 1, 1 + rng.below(8) as u8), 80, 60, Label::Malicious)
            } else {
                (
                    Addr::new(10, 0, 0, 1 + rng.below(8) as u8),
                    1024 + rng.below(4000) as u16,
                    200 + rng.below(1000) as u32,
                    Label::Benign,
                )
            };
            records.push(PacketRecord {
                ts: SimTime::from_millis(s * 1000 + i * 1000 / per_window.max(1)),
                src,
                src_port: 1024 + rng.below(30_000) as u16,
                dst: Addr::new(10, 0, 0, 250),
                dst_port,
                protocol: Protocol::Udp,
                flags: Default::default(),
                wire_len,
                payload_len: wire_len.saturating_sub(42),
                seq: 0,
                label,
            });
        }
    }
    records
}

/// The serving layer's per-window hot path, end to end: offer a
/// window's records into the bounded ingest queue, drain them through
/// the window aggregator, and classify the completed window against a
/// trained model — the work [`ids::serving::IdsService`] does per tick
/// and per tenant, minus the simulator around it. The queue and
/// aggregator persist across iterations (as they do in the long-lived
/// service): each iteration streams one epoch's records — the same
/// window shifted by the epoch offset — whose closing record hands the
/// previous window to the classifier, so the measured cost is the
/// steady-state incremental path, not first-window setup.
fn bench_serving_window(c: &mut Criterion) {
    let train = Dataset::from_records(synth_packets(20, 400, 44));
    let config = IdsConfig { holdout_fraction: 0.0, max_train_samples: 4_000, ..IdsConfig::default() };
    let kind = ModelKind::KMeans(KMeansConfig { k_max: 8, ..KMeansConfig::default() });
    let mut rng = SimRng::seed_from(45);
    let model: TrainedIds =
        TrainedIds::train(&train, &kind, config, &mut rng).expect("two-class synth trains").ids;

    // One window of live records; each epoch replays them shifted one
    // second later, with the first record doubling as the closer of the
    // previous epoch's window.
    let live = synth_packets(1, 1_000, 46);

    let mut scratch = FeatureMatrix::new(features::extract::TOTAL_FEATURES);
    let mut predictions = Vec::new();
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.bench_function("serving_window_e2e", |b| {
        let mut queue = IngestQueue::new(2_048, BackpressurePolicy::DropOldest, 1);
        let mut aggregator = WindowAggregator::new(1);
        let mut epoch = 0u64;
        b.iter(|| {
            let offset_nanos = epoch * 1_000_000_000;
            for record in &live {
                let mut shifted = *record;
                shifted.ts = SimTime::from_nanos(offset_nanos + shifted.ts.as_nanos());
                queue.offer(shifted);
            }
            let mut detections = 0u64;
            while let Some(record) = queue.pop() {
                if let Some(window) = aggregator.push(record) {
                    let (detection, _) = model
                        .try_classify_window_profiled(&window, &mut scratch, &mut predictions)
                        .expect("arity matches");
                    black_box(detection);
                    detections += 1;
                }
            }
            assert!(queue.conservation_violation().is_none());
            epoch += 1;
            black_box(detections)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_ml
}
criterion_main!(benches);
