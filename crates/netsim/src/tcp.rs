//! A miniature TCP implementation.
//!
//! Implements the parts of TCP that matter for the testbed's observables:
//! the three-way handshake (with a bounded SYN backlog, so SYN floods
//! genuinely exhaust the target), reliable in-order byte streams with
//! cumulative ACKs, out-of-order reassembly, retransmission timeouts with
//! exponential backoff and Karn-style RTT sampling, fast retransmit on
//! three duplicate ACKs, slow-start/congestion-avoidance (AIMD), and
//! graceful FIN teardown. TIME_WAIT and urgent data are omitted.
//!
//! The state machine is *pure*: connection methods mutate connection state
//! and append packets/application events to a [`TcpEffects`] sink; the
//! [`World`](crate::world::World) decides what to do with those effects.
//! This keeps the protocol unit-testable without a network.

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::ids::{AppId, ConnId};
use crate::packet::{Addr, Packet, Provenance, TcpFlags, TcpHeader};
use crate::time::{SimDuration, SimTime};

/// Maximum segment size used by all simulated hosts.
pub const MSS: usize = 1460;

/// Tunable parameters of the TCP implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum payload bytes per segment.
    pub mss: usize,
    /// Initial congestion window in bytes.
    pub initial_cwnd: usize,
    /// Initial slow-start threshold in bytes.
    pub initial_ssthresh: usize,
    /// Initial retransmission timeout.
    pub initial_rto: SimDuration,
    /// Lower bound on the RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the RTO.
    pub max_rto: SimDuration,
    /// Retries before a handshake is abandoned.
    pub max_syn_retries: u32,
    /// Retries before an established connection is abandoned.
    pub max_retries: u32,
    /// Advertised receive window in bytes.
    pub recv_window: u16,
    /// Cap on buffered out-of-order segments.
    pub max_ooo_segments: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: MSS,
            initial_cwnd: 10 * MSS,
            initial_ssthresh: 64 * 1024,
            initial_rto: SimDuration::from_millis(200),
            min_rto: SimDuration::from_millis(50),
            max_rto: SimDuration::from_secs(8),
            max_syn_retries: 4,
            max_retries: 6,
            recv_window: u16::MAX,
            max_ooo_segments: 256,
        }
    }
}

/// `a < b` in sequence-number space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence-number space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Protocol state of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpState {
    /// Active open sent a SYN, awaiting SYN-ACK.
    SynSent,
    /// Passive open replied SYN-ACK, awaiting final ACK.
    SynReceived,
    /// Handshake complete, data may flow.
    Established,
    /// We sent a FIN and wait for its ACK and/or the peer's FIN.
    FinWait,
    /// Peer sent a FIN; we may still send data.
    CloseWait,
    /// Peer FIN'd and we sent our FIN, awaiting its ACK.
    LastAck,
    /// Fully closed; the connection can be reaped.
    Closed,
}

/// Notifications a connection delivers to its owning application.
#[derive(Debug, Clone, PartialEq)]
pub enum TcpEvent {
    /// A passive connection completed its handshake.
    Accepted {
        /// The new connection.
        conn: ConnId,
        /// The local listening port it arrived on.
        local_port: u16,
        /// Remote address and port.
        peer: (Addr, u16),
    },
    /// An active connection completed its handshake.
    Connected {
        /// The connection.
        conn: ConnId,
    },
    /// In-order payload bytes arrived.
    Data {
        /// The connection.
        conn: ConnId,
        /// The delivered bytes.
        data: Bytes,
    },
    /// The peer closed its sending direction (FIN received).
    PeerClosed {
        /// The connection.
        conn: ConnId,
    },
    /// The connection is fully closed (graceful or reset after data).
    Closed {
        /// The connection.
        conn: ConnId,
    },
    /// An active open failed (reset or handshake timeout).
    ConnectFailed {
        /// The connection.
        conn: ConnId,
    },
}

impl TcpEvent {
    /// The connection the event concerns.
    pub fn conn(&self) -> ConnId {
        match *self {
            TcpEvent::Accepted { conn, .. }
            | TcpEvent::Connected { conn }
            | TcpEvent::Data { conn, .. }
            | TcpEvent::PeerClosed { conn }
            | TcpEvent::Closed { conn }
            | TcpEvent::ConnectFailed { conn } => conn,
        }
    }
}

/// Sink for the side effects of driving a connection state machine.
#[derive(Debug, Default)]
pub struct TcpEffects {
    /// Segments to transmit from the local node.
    pub segments: Vec<Packet>,
    /// Events to deliver to applications.
    pub events: Vec<(AppId, TcpEvent)>,
}

impl TcpEffects {
    /// An empty effects sink.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A FIFO byte queue stored as refcounted [`Bytes`] chunks.
///
/// Application writes and transmitted segments enter as whole chunks;
/// segmentation carves them up with zero-copy slices. Only a segment
/// that straddles two application writes (coalescing small writes, or a
/// retransmission after a partial ACK) pays a copy — the steady-state
/// streaming path moves payload bytes zero times between the sending
/// app's buffer and the wire.
#[derive(Debug, Default)]
struct ChunkQueue {
    chunks: VecDeque<Bytes>,
    len: usize,
}

impl ChunkQueue {
    /// Total queued bytes.
    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.len += data.len();
        self.chunks.push_back(data);
        self.assert_accounting();
    }

    /// Debug-only accounting check: the cached byte count must equal the
    /// sum of chunk lengths. Every `expect("queue holds >= ...")` in this
    /// file relies on this invariant, so each mutation re-verifies it
    /// under `debug_assertions` (swarm runs build with them on).
    #[inline]
    fn assert_accounting(&self) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.len,
            self.chunks.iter().map(Bytes::len).sum::<usize>(),
            "ChunkQueue len diverged from chunk contents"
        );
    }

    /// Removes and returns the first `take` bytes (`take <= len`). Stays
    /// within one chunk → zero-copy slice; straddles chunks → one copy.
    fn pop_front_bytes(&mut self, take: usize) -> Bytes {
        debug_assert!(take > 0 && take <= self.len);
        self.len -= take;
        let front = self.chunks.front_mut().expect("queue holds >= take bytes");
        if front.len() > take {
            let head = front.slice(..take);
            *front = front.slice(take..);
            self.assert_accounting();
            return head;
        }
        let first = self.chunks.pop_front().expect("queue holds >= take bytes");
        if first.len() == take {
            self.assert_accounting();
            return first;
        }
        let mut buf = Vec::with_capacity(take);
        buf.extend_from_slice(&first);
        while buf.len() < take {
            let need = take - buf.len();
            let chunk = self.chunks.front_mut().expect("queue holds >= take bytes");
            if chunk.len() > need {
                buf.extend_from_slice(&chunk[..need]);
                *chunk = chunk.slice(need..);
            } else {
                buf.extend_from_slice(chunk);
                self.chunks.pop_front();
            }
        }
        self.assert_accounting();
        Bytes::from(buf)
    }

    /// Returns the first `take` bytes without consuming them.
    fn peek_front_bytes(&self, take: usize) -> Bytes {
        debug_assert!(take > 0 && take <= self.len);
        let front = self.chunks.front().expect("queue holds >= take bytes");
        if front.len() >= take {
            return front.slice(..take);
        }
        let mut buf = Vec::with_capacity(take);
        for chunk in &self.chunks {
            let need = take - buf.len();
            if chunk.len() >= need {
                buf.extend_from_slice(&chunk[..need]);
                break;
            }
            buf.extend_from_slice(chunk);
        }
        Bytes::from(buf)
    }

    /// Discards the first `n` bytes (`n <= len`).
    fn drain_front(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.len -= n;
        let mut rem = n;
        while rem > 0 {
            let front = self.chunks.front_mut().expect("queue holds >= n bytes");
            if front.len() > rem {
                *front = front.slice(rem..);
                break;
            }
            rem -= front.len();
            self.chunks.pop_front();
        }
        self.assert_accounting();
    }
}

/// One endpoint of a TCP connection.
#[derive(Debug)]
pub struct TcpConn {
    /// Globally unique identifier.
    pub id: ConnId,
    /// Owning application.
    pub app: AppId,
    /// Local address and port.
    pub local: (Addr, u16),
    /// Remote address and port.
    pub remote: (Addr, u16),
    /// Ground-truth class stamped on every emitted segment.
    pub provenance: Provenance,

    state: TcpState,
    accepted_from_listener: bool,

    // Send side.
    snd_una: u32,
    snd_nxt: u32,
    unacked: ChunkQueue,
    unsent: ChunkQueue,
    cwnd: usize,
    ssthresh: usize,
    peer_window: usize,
    dup_acks: u32,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    retries: u32,
    rtt_probe: Option<(u32, SimTime)>,
    /// NewReno recovery point: `snd_nxt` at the moment loss was detected.
    /// While `Some`, a partial ACK (below this point) means the next
    /// in-sequence segment is also lost, so it is retransmitted at once
    /// instead of waiting out another full RTO — without this, a burst
    /// loss (link flap) recovers one segment per RTO.
    recover_point: Option<u32>,
    close_requested: bool,
    fin_sent: bool,
    fin_seq: u32,
    fin_acked: bool,

    // Receive side.
    rcv_nxt: u32,
    ooo: BTreeMap<u32, Bytes>,
    peer_fin_seen: bool,

    // Timer bookkeeping (owned by the kernel, stamped here).
    timer_generation: u64,

    // Counters.
    bytes_sent: u64,
    bytes_received: u64,
    retransmitted_segments: u64,
}

impl TcpConn {
    /// Opens a connection actively: emits the initial SYN.
    #[allow(clippy::too_many_arguments)]
    pub fn open_active(
        id: ConnId,
        app: AppId,
        local: (Addr, u16),
        remote: (Addr, u16),
        provenance: Provenance,
        iss: u32,
        cfg: &TcpConfig,
        effects: &mut TcpEffects,
    ) -> Self {
        let mut conn = TcpConn::blank(id, app, local, remote, provenance, iss, cfg);
        conn.state = TcpState::SynSent;
        conn.snd_nxt = iss.wrapping_add(1);
        let syn = conn.control_segment(iss, 0, TcpFlags::SYN, cfg);
        effects.segments.push(syn);
        conn
    }

    /// Opens a connection passively in response to a received SYN: emits
    /// the SYN-ACK.
    #[allow(clippy::too_many_arguments)]
    pub fn open_passive(
        id: ConnId,
        app: AppId,
        local: (Addr, u16),
        remote: (Addr, u16),
        provenance: Provenance,
        iss: u32,
        peer_seq: u32,
        cfg: &TcpConfig,
        effects: &mut TcpEffects,
    ) -> Self {
        let mut conn = TcpConn::blank(id, app, local, remote, provenance, iss, cfg);
        conn.state = TcpState::SynReceived;
        conn.accepted_from_listener = true;
        conn.snd_nxt = iss.wrapping_add(1);
        conn.rcv_nxt = peer_seq.wrapping_add(1);
        let syn_ack = conn.control_segment(iss, conn.rcv_nxt, TcpFlags::SYN | TcpFlags::ACK, cfg);
        effects.segments.push(syn_ack);
        conn
    }

    fn blank(
        id: ConnId,
        app: AppId,
        local: (Addr, u16),
        remote: (Addr, u16),
        provenance: Provenance,
        iss: u32,
        cfg: &TcpConfig,
    ) -> Self {
        TcpConn {
            id,
            app,
            local,
            remote,
            provenance,
            state: TcpState::Closed,
            accepted_from_listener: false,
            snd_una: iss,
            snd_nxt: iss,
            unacked: ChunkQueue::default(),
            unsent: ChunkQueue::default(),
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            peer_window: cfg.recv_window as usize,
            dup_acks: 0,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.initial_rto,
            retries: 0,
            rtt_probe: None,
            recover_point: None,
            close_requested: false,
            fin_sent: false,
            fin_seq: 0,
            fin_acked: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin_seen: false,
            timer_generation: 0,
            bytes_sent: 0,
            bytes_received: 0,
            retransmitted_segments: 0,
        }
    }

    /// Current protocol state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// `true` once the connection can be reaped.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// `true` while the connection has unacknowledged work needing a timer.
    pub fn needs_timer(&self) -> bool {
        !self.is_closed()
            && (matches!(self.state, TcpState::SynSent | TcpState::SynReceived)
                || !self.unacked.is_empty()
                || (self.fin_sent && !self.fin_acked))
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Bumps and returns the timer generation, invalidating older timers.
    pub fn next_timer_generation(&mut self) -> u64 {
        self.timer_generation += 1;
        self.timer_generation
    }

    /// The currently valid timer generation.
    pub fn timer_generation(&self) -> u64 {
        self.timer_generation
    }

    /// Total payload bytes handed to `send`.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total in-order payload bytes delivered to the application.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Number of retransmitted segments.
    pub fn retransmitted_segments(&self) -> u64 {
        self.retransmitted_segments
    }

    /// Bytes currently in flight (sent but unacknowledged, data only).
    pub fn flight_size(&self) -> usize {
        self.unacked.len()
    }

    /// Congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn control_segment(&self, seq: u32, ack: u32, flags: TcpFlags, cfg: &TcpConfig) -> Packet {
        let header = TcpHeader {
            src_port: self.local.1,
            dst_port: self.remote.1,
            seq,
            ack,
            flags,
            window: cfg.recv_window,
        };
        Packet::tcp(self.local.0, self.remote.0, header, Bytes::new()).with_provenance(self.provenance)
    }

    fn data_segment(&self, seq: u32, payload: Bytes, cfg: &TcpConfig) -> Packet {
        let header = TcpHeader {
            src_port: self.local.1,
            dst_port: self.remote.1,
            seq,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: cfg.recv_window,
        };
        Packet::tcp(self.local.0, self.remote.0, header, payload).with_provenance(self.provenance)
    }

    /// Queues application bytes for transmission (copies once, into a
    /// fresh chunk). Callers that already hold a [`Bytes`] should prefer
    /// [`TcpConn::send_bytes`].
    pub fn send(&mut self, data: &[u8], now: SimTime, cfg: &TcpConfig, effects: &mut TcpEffects) {
        self.send_bytes(Bytes::from(data.to_vec()), now, cfg, effects);
    }

    /// Queues an owned buffer for transmission without copying it: the
    /// chunk is sliced (refcount bumps) as it is segmented onto the wire.
    pub fn send_bytes(&mut self, data: Bytes, now: SimTime, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if matches!(self.state, TcpState::Closed | TcpState::FinWait | TcpState::LastAck) {
            return;
        }
        self.bytes_sent += data.len() as u64;
        self.unsent.push(data);
        self.try_transmit(now, cfg, effects);
    }

    /// Requests a graceful close: a FIN is emitted once queued data drains.
    pub fn close(&mut self, now: SimTime, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if self.close_requested || self.is_closed() {
            return;
        }
        self.close_requested = true;
        self.try_transmit(now, cfg, effects);
    }

    /// Aborts the connection immediately with a RST.
    pub fn abort(&mut self, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if self.is_closed() {
            return;
        }
        let rst = self.control_segment(self.snd_nxt, self.rcv_nxt, TcpFlags::RST | TcpFlags::ACK, cfg);
        effects.segments.push(rst);
        self.state = TcpState::Closed;
        effects.events.push((self.app, TcpEvent::Closed { conn: self.id }));
    }

    /// Sends as much queued data as the congestion and peer windows allow,
    /// plus the FIN if a close was requested and the send queue drained.
    pub fn try_transmit(&mut self, now: SimTime, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            return;
        }
        let window = self.cwnd.min(self.peer_window);
        while !self.unsent.is_empty() && self.unacked.len() < window {
            let budget = window - self.unacked.len();
            let take = self.unsent.len().min(cfg.mss).min(budget);
            if take == 0 {
                break;
            }
            let chunk = self.unsent.pop_front_bytes(take);
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
            // The in-flight copy is the same refcounted chunk that rides
            // the wire, so unacked chunk boundaries == segment boundaries
            // and a head retransmission is usually a pure slice.
            self.unacked.push(chunk.clone());
            if self.rtt_probe.is_none() && self.retries == 0 {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            effects.segments.push(self.data_segment(seq, chunk, cfg));
        }
        if self.close_requested && !self.fin_sent && self.unsent.is_empty() {
            self.fin_seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_sent = true;
            let fin = self.control_segment(self.fin_seq, self.rcv_nxt, TcpFlags::FIN | TcpFlags::ACK, cfg);
            effects.segments.push(fin);
            self.state = match self.state {
                TcpState::CloseWait => TcpState::LastAck,
                _ => TcpState::FinWait,
            };
        }
    }

    /// Handles an incoming segment addressed to this connection.
    pub fn on_segment(
        &mut self,
        now: SimTime,
        header: &TcpHeader,
        payload: Bytes,
        cfg: &TcpConfig,
        effects: &mut TcpEffects,
    ) {
        if self.is_closed() {
            return;
        }
        if header.flags.contains(TcpFlags::RST) {
            self.on_reset(effects);
            return;
        }
        self.peer_window = header.window as usize;

        match self.state {
            TcpState::SynSent => {
                if header.flags.contains(TcpFlags::SYN | TcpFlags::ACK)
                    && header.ack == self.snd_nxt
                {
                    self.snd_una = header.ack;
                    self.rcv_nxt = header.seq.wrapping_add(1);
                    self.retries = 0;
                    self.state = TcpState::Established;
                    let ack = self.control_segment(self.snd_nxt, self.rcv_nxt, TcpFlags::ACK, cfg);
                    effects.segments.push(ack);
                    effects.events.push((self.app, TcpEvent::Connected { conn: self.id }));
                    self.try_transmit(now, cfg, effects);
                }
                // Anything else in SynSent is ignored (no simultaneous open).
                return;
            }
            TcpState::SynReceived => {
                if header.flags.contains(TcpFlags::ACK) && header.ack == self.snd_nxt {
                    self.snd_una = header.ack;
                    self.retries = 0;
                    self.state = TcpState::Established;
                    effects.events.push((
                        self.app,
                        TcpEvent::Accepted {
                            conn: self.id,
                            local_port: self.local.1,
                            peer: self.remote,
                        },
                    ));
                    // Fall through: the ACK may carry data.
                } else {
                    // Retransmitted SYN: re-send the SYN-ACK.
                    if header.flags.contains(TcpFlags::SYN) {
                        let iss = self.snd_nxt.wrapping_sub(1);
                        let syn_ack =
                            self.control_segment(iss, self.rcv_nxt, TcpFlags::SYN | TcpFlags::ACK, cfg);
                        effects.segments.push(syn_ack);
                    }
                    return;
                }
            }
            _ => {}
        }

        if header.flags.contains(TcpFlags::ACK) {
            self.process_ack(header.ack, payload.is_empty(), now, cfg, effects);
        }
        if !payload.is_empty() {
            self.process_payload(header.seq, payload, cfg, effects);
        }
        if header.flags.contains(TcpFlags::FIN) {
            self.process_fin(header, cfg, effects);
        }
        self.try_transmit(now, cfg, effects);
        self.maybe_finish(effects);
    }

    fn on_reset(&mut self, effects: &mut TcpEffects) {
        let event = match self.state {
            TcpState::SynSent | TcpState::SynReceived => TcpEvent::ConnectFailed { conn: self.id },
            _ => TcpEvent::Closed { conn: self.id },
        };
        self.state = TcpState::Closed;
        effects.events.push((self.app, event));
    }

    fn process_ack(
        &mut self,
        ack: u32,
        bare_ack: bool,
        now: SimTime,
        cfg: &TcpConfig,
        effects: &mut TcpEffects,
    ) {
        if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
            let mut advanced = ack.wrapping_sub(self.snd_una) as usize;
            if self.fin_sent && ack == self.fin_seq.wrapping_add(1) {
                self.fin_acked = true;
                advanced = advanced.saturating_sub(1);
            }
            let drained = advanced.min(self.unacked.len());
            self.unacked.drain_front(drained);
            self.snd_una = ack;
            self.retries = 0;
            self.dup_acks = 0;
            // RFC 6298 §5.7: exponential backoff is abandoned as soon as
            // new data is acknowledged (Karn's rule blocks RTT samples
            // during recovery, so without this the RTO stays pinned at
            // its backed-off value for the rest of the transfer).
            self.rto = self.computed_rto(cfg);
            if let Some(rp) = self.recover_point {
                if seq_lt(ack, rp) {
                    // NewReno partial ACK: the hole right above `ack` was
                    // part of the same loss burst; resend it immediately.
                    self.retransmit_head(cfg, effects);
                } else {
                    self.recover_point = None;
                }
            }
            // Congestion control: slow start below ssthresh, then AIMD.
            if self.cwnd < self.ssthresh {
                self.cwnd += drained.min(cfg.mss);
            } else if self.cwnd > 0 {
                self.cwnd += (cfg.mss * cfg.mss) / self.cwnd.max(1);
            }
            if let Some((probe_seq, sent_at)) = self.rtt_probe {
                if seq_le(probe_seq, ack) {
                    self.sample_rtt(now.saturating_since(sent_at).as_secs_f64(), cfg);
                    self.rtt_probe = None;
                }
            }
        } else if ack == self.snd_una && bare_ack && !self.unacked.is_empty() {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                // Fast retransmit.
                self.recover_point = Some(self.snd_nxt);
                self.retransmit_head(cfg, effects);
                let flight = self.unacked.len();
                self.ssthresh = (flight / 2).max(2 * cfg.mss);
                self.cwnd = self.ssthresh;
            }
        }
    }

    fn sample_rtt(&mut self, r: f64, cfg: &TcpConfig) {
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        self.rto = self.computed_rto(cfg);
    }

    /// The un-backed-off RTO implied by the current RTT estimate (the
    /// configured initial RTO before any sample exists).
    fn computed_rto(&self, cfg: &TcpConfig) -> SimDuration {
        match self.srtt {
            Some(srtt) => SimDuration::from_secs_f64((srtt + 4.0 * self.rttvar).max(1e-9))
                .clamp(cfg.min_rto, cfg.max_rto),
            None => cfg.initial_rto,
        }
    }

    fn process_payload(&mut self, seq: u32, payload: Bytes, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if seq == self.rcv_nxt {
            self.accept_in_order(payload, effects);
            // Drain any now-contiguous out-of-order segments. The
            // `expect` is sound because `first_key_value` just returned
            // the key and nothing between the two calls mutates the map.
            while let Some((&next_seq, _)) = self.ooo.first_key_value() {
                if next_seq == self.rcv_nxt {
                    let data = self.ooo.remove(&next_seq).expect("key just seen");
                    self.accept_in_order(data, effects);
                } else if seq_lt(next_seq, self.rcv_nxt) {
                    // Overlap: `rcv_nxt` advanced past this segment's
                    // start. Retransmissions re-chunk the stream (an
                    // RTO resend packs up to a full MSS from `snd_una`
                    // regardless of original boundaries), so a buffered
                    // segment can be *partially* stale. Deliver its
                    // unseen tail rather than dropping it and waiting
                    // for yet another retransmission of those bytes.
                    let data = self.ooo.remove(&next_seq).expect("key just seen");
                    let overlap = self.rcv_nxt.wrapping_sub(next_seq) as usize;
                    if overlap < data.len() {
                        self.accept_in_order(data.slice(overlap..), effects);
                    }
                } else {
                    break;
                }
            }
        } else if seq_lt(self.rcv_nxt, seq) && self.ooo.len() < cfg.max_ooo_segments {
            self.ooo.insert(seq, payload);
        }
        // Always acknowledge what we have (duplicate ACKs signal gaps).
        let ack = self.control_segment(self.snd_nxt, self.rcv_nxt, TcpFlags::ACK, cfg);
        effects.segments.push(ack);
    }

    fn accept_in_order(&mut self, data: Bytes, effects: &mut TcpEffects) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
        self.bytes_received += data.len() as u64;
        effects.events.push((self.app, TcpEvent::Data { conn: self.id, data }));
    }

    fn process_fin(&mut self, header: &TcpHeader, cfg: &TcpConfig, effects: &mut TcpEffects) {
        // The FIN occupies the sequence slot right after its payload.
        let fin_seq = header.seq.wrapping_add(header_payload_len(header) as u32);
        if self.peer_fin_seen || fin_seq != self.rcv_nxt {
            // Out-of-order FIN (data still missing) — ack current state.
            let ack = self.control_segment(self.snd_nxt, self.rcv_nxt, TcpFlags::ACK, cfg);
            effects.segments.push(ack);
            return;
        }
        self.peer_fin_seen = true;
        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
        effects.events.push((self.app, TcpEvent::PeerClosed { conn: self.id }));
        let ack = self.control_segment(self.snd_nxt, self.rcv_nxt, TcpFlags::ACK, cfg);
        effects.segments.push(ack);
        self.state = match self.state {
            TcpState::Established => TcpState::CloseWait,
            TcpState::FinWait => TcpState::FinWait, // resolved in maybe_finish
            other => other,
        };
    }

    fn maybe_finish(&mut self, effects: &mut TcpEffects) {
        let fully_closed = self.fin_sent && self.fin_acked && self.peer_fin_seen;
        let last_ack_done = self.state == TcpState::LastAck && self.fin_acked;
        if (fully_closed || last_ack_done) && self.state != TcpState::Closed {
            self.state = TcpState::Closed;
            effects.events.push((self.app, TcpEvent::Closed { conn: self.id }));
        }
    }

    fn retransmit_head(&mut self, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if !self.unacked.is_empty() {
            let take = self.unacked.len().min(cfg.mss);
            let chunk = self.unacked.peek_front_bytes(take);
            self.retransmitted_segments += 1;
            effects.segments.push(self.data_segment(self.snd_una, chunk, cfg));
        } else if self.fin_sent && !self.fin_acked {
            self.retransmitted_segments += 1;
            let fin = self.control_segment(self.fin_seq, self.rcv_nxt, TcpFlags::FIN | TcpFlags::ACK, cfg);
            effects.segments.push(fin);
        }
        // Karn: never sample RTT across retransmissions.
        self.rtt_probe = None;
    }

    /// Handles a retransmission-timer expiry.
    pub fn on_rto(&mut self, _now: SimTime, cfg: &TcpConfig, effects: &mut TcpEffects) {
        if self.is_closed() || !self.needs_timer() {
            return;
        }
        let limit = match self.state {
            TcpState::SynSent | TcpState::SynReceived => cfg.max_syn_retries,
            _ => cfg.max_retries,
        };
        if self.retries >= limit {
            let event = match self.state {
                TcpState::SynSent => TcpEvent::ConnectFailed { conn: self.id },
                TcpState::SynReceived => TcpEvent::ConnectFailed { conn: self.id },
                _ => TcpEvent::Closed { conn: self.id },
            };
            self.state = TcpState::Closed;
            effects.events.push((self.app, event));
            return;
        }
        self.retries += 1;
        match self.state {
            TcpState::SynSent => {
                let iss = self.snd_nxt.wrapping_sub(1);
                self.retransmitted_segments += 1;
                effects.segments.push(self.control_segment(iss, 0, TcpFlags::SYN, cfg));
            }
            TcpState::SynReceived => {
                let iss = self.snd_nxt.wrapping_sub(1);
                self.retransmitted_segments += 1;
                effects.segments.push(self.control_segment(
                    iss,
                    self.rcv_nxt,
                    TcpFlags::SYN | TcpFlags::ACK,
                    cfg,
                ));
            }
            _ => {
                self.recover_point = Some(self.snd_nxt);
                self.retransmit_head(cfg, effects);
                // Multiplicative decrease on loss.
                self.ssthresh = (self.unacked.len() / 2).max(2 * cfg.mss);
                self.cwnd = cfg.mss;
            }
        }
        self.rto = (self.rto * 2).clamp(cfg.min_rto, cfg.max_rto);
    }
}

/// Payload length implied by a header in this codebase.
///
/// Headers travel next to their payload (`on_segment` receives both), so
/// connections never need to reconstruct the length from the header; this
/// helper exists for the FIN sequence-slot computation where the payload
/// has already been consumed.
fn header_payload_len(_header: &TcpHeader) -> usize {
    0
}

/// A passive listener on a local port.
#[derive(Debug, Clone)]
pub struct Listener {
    /// Application receiving `Accepted` events.
    pub app: AppId,
    /// Maximum simultaneous half-open (SYN_RCVD) connections.
    pub backlog: usize,
    /// Connections currently in the half-open state.
    pub half_open: Vec<ConnId>,
    /// SYNs dropped because the backlog was full.
    pub syn_drops: u64,
}

impl Listener {
    /// Creates a listener owned by `app` with the given backlog.
    pub fn new(app: AppId, backlog: usize) -> Self {
        Listener { app, backlog, half_open: Vec::new(), syn_drops: 0 }
    }

    /// `true` if another half-open connection fits in the backlog.
    pub fn has_capacity(&self) -> bool {
        self.half_open.len() < self.backlog
    }
}

/// Per-node TCP state: listeners and live connections.
#[derive(Debug, Default)]
pub struct TcpHost {
    /// Listeners keyed by local port.
    pub listeners: HashMap<u16, Listener>,
    /// Live connections keyed by id.
    pub conns: HashMap<ConnId, TcpConn>,
    /// Demultiplexing table: (local port, remote addr, remote port) → conn.
    pub by_key: HashMap<(u16, Addr, u16), ConnId>,
    next_ephemeral: u16,
    /// RSTs this host sent in response to stray segments.
    pub rst_sent: u64,
    /// Active opens that failed because no ephemeral port was free.
    pub ephemeral_exhausted: u64,
}

impl TcpHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        TcpHost { next_ephemeral: 49_152, ..TcpHost::default() }
    }

    /// Allocates an ephemeral source port not currently in use, or
    /// `None` when all 16 384 ports towards `remote` are taken. Callers
    /// surface the failure as a `ConnectFailed` (feeding retry backoff)
    /// rather than aborting the simulation.
    pub fn alloc_ephemeral(&mut self, remote: (Addr, u16)) -> Option<u16> {
        for _ in 0..16_384 {
            let port = self.next_ephemeral;
            self.next_ephemeral =
                if self.next_ephemeral == u16::MAX { 49_152 } else { self.next_ephemeral + 1 };
            if !self.by_key.contains_key(&(port, remote.0, remote.1)) {
                return Some(port);
            }
        }
        self.ephemeral_exhausted += 1;
        None
    }

    /// Removes a connection and its demux entry.
    pub fn remove_conn(&mut self, conn_id: ConnId) {
        if let Some(conn) = self.conns.remove(&conn_id) {
            self.by_key.remove(&(conn.local.1, conn.remote.0, conn.remote.1));
            for listener in self.listeners.values_mut() {
                listener.half_open.retain(|&c| c != conn_id);
            }
        }
    }

    /// Marks a half-open connection as promoted out of its listener backlog.
    pub fn promote_half_open(&mut self, port: u16, conn_id: ConnId) {
        if let Some(listener) = self.listeners.get_mut(&port) {
            listener.half_open.retain(|&c| c != conn_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Transport;

    const A: Addr = Addr::new(10, 0, 0, 1);
    const B: Addr = Addr::new(10, 0, 0, 2);

    /// Shuttles every pending segment between two connections until quiet.
    /// An optional filter can drop segments to simulate loss.
    fn pump(
        a: &mut TcpConn,
        b: &mut TcpConn,
        cfg: &TcpConfig,
        mut drop_nth: Option<usize>,
    ) -> Vec<(AppId, TcpEvent)> {
        let mut events = Vec::new();
        let mut fx_a = TcpEffects::new();
        let mut fx_b = TcpEffects::new();
        let now = SimTime::ZERO;
        let mut count = 0usize;
        loop {
            let mut moved = false;
            let segs_a: Vec<Packet> = std::mem::take(&mut fx_a.segments);
            for seg in segs_a {
                count += 1;
                if drop_nth == Some(count) {
                    drop_nth = None;
                    continue;
                }
                if let Transport::Tcp(h) = seg.transport {
                    b.on_segment(now, &h, seg.payload, cfg, &mut fx_b);
                    moved = true;
                }
            }
            let segs_b: Vec<Packet> = std::mem::take(&mut fx_b.segments);
            for seg in segs_b {
                count += 1;
                if drop_nth == Some(count) {
                    drop_nth = None;
                    continue;
                }
                if let Transport::Tcp(h) = seg.transport {
                    a.on_segment(now, &h, seg.payload, cfg, &mut fx_a);
                    moved = true;
                }
            }
            events.append(&mut fx_a.events);
            events.append(&mut fx_b.events);
            if !moved && fx_a.segments.is_empty() && fx_b.segments.is_empty() {
                break;
            }
        }
        events
    }

    fn pair(cfg: &TcpConfig) -> (TcpConn, TcpConn, Vec<(AppId, TcpEvent)>) {
        let mut fx = TcpEffects::new();
        let mut client = TcpConn::open_active(
            ConnId::from_raw(1),
            AppId::from_raw(0),
            (A, 50_000),
            (B, 80),
            Provenance::Benign,
            1000,
            cfg,
            &mut fx,
        );
        let syn = fx.segments.remove(0);
        let Transport::Tcp(syn_h) = syn.transport else { panic!("not tcp") };
        assert!(syn_h.flags.contains(TcpFlags::SYN));

        let mut fx2 = TcpEffects::new();
        let mut server = TcpConn::open_passive(
            ConnId::from_raw(2),
            AppId::from_raw(1),
            (B, 80),
            (A, 50_000),
            Provenance::Benign,
            7000,
            syn_h.seq,
            cfg,
            &mut fx2,
        );
        // Deliver SYN-ACK to the client, then its ACK to the server.
        let syn_ack = fx2.segments.remove(0);
        let Transport::Tcp(sa_h) = syn_ack.transport else { panic!("not tcp") };
        let mut fx3 = TcpEffects::new();
        client.on_segment(SimTime::ZERO, &sa_h, Bytes::new(), cfg, &mut fx3);
        let mut events: Vec<_> = fx3.events.clone();
        let ack = fx3.segments.remove(0);
        let Transport::Tcp(ack_h) = ack.transport else { panic!("not tcp") };
        let mut fx4 = TcpEffects::new();
        server.on_segment(SimTime::ZERO, &ack_h, Bytes::new(), cfg, &mut fx4);
        events.extend(fx4.events);
        (client, server, events)
    }

    #[test]
    fn three_way_handshake_establishes_both_sides() {
        let cfg = TcpConfig::default();
        let (client, server, events) = pair(&cfg);
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
        assert!(events.iter().any(|(_, e)| matches!(e, TcpEvent::Connected { .. })));
        assert!(events.iter().any(|(_, e)| matches!(e, TcpEvent::Accepted { .. })));
    }

    #[test]
    fn data_flows_in_order() {
        let cfg = TcpConfig::default();
        let (mut client, mut server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        let message = vec![42u8; 5000]; // spans several MSS
        client.send(&message, SimTime::ZERO, &cfg, &mut fx);
        // Move client's queued segments to the server through the pump.
        let mut received = Vec::new();
        let mut fx_b = TcpEffects::new();
        for seg in fx.segments.drain(..) {
            if let Transport::Tcp(h) = seg.transport {
                server.on_segment(SimTime::ZERO, &h, seg.payload, &cfg, &mut fx_b);
            }
        }
        for (_, ev) in fx_b.events.drain(..) {
            if let TcpEvent::Data { data, .. } = ev {
                received.extend_from_slice(&data);
            }
        }
        assert_eq!(received, message);
        assert_eq!(server.bytes_received(), 5000);
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let cfg = TcpConfig::default();
        let (mut client, mut server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        client.send(&[1u8; 1460], SimTime::ZERO, &cfg, &mut fx);
        client.send(&[2u8; 1460], SimTime::ZERO, &cfg, &mut fx);
        assert_eq!(fx.segments.len(), 2);
        let seg1 = fx.segments.remove(0);
        let seg2 = fx.segments.remove(0);
        let mut fx_b = TcpEffects::new();
        // Deliver the second segment first.
        if let Transport::Tcp(h) = seg2.transport {
            server.on_segment(SimTime::ZERO, &h, seg2.payload, &cfg, &mut fx_b);
        }
        assert!(fx_b.events.iter().all(|(_, e)| !matches!(e, TcpEvent::Data { .. })));
        if let Transport::Tcp(h) = seg1.transport {
            server.on_segment(SimTime::ZERO, &h, seg1.payload, &cfg, &mut fx_b);
        }
        let data: Vec<u8> = fx_b
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                TcpEvent::Data { data, .. } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(data.len(), 2920);
        assert_eq!(&data[..1460], &[1u8; 1460]);
        assert_eq!(&data[1460..], &[2u8; 1460]);
    }

    #[test]
    fn rto_retransmits_lost_segment() {
        let cfg = TcpConfig::default();
        let (mut client, mut server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        client.send(b"hello", SimTime::ZERO, &cfg, &mut fx);
        // Lose the segment entirely; fire the RTO.
        fx.segments.clear();
        assert!(client.needs_timer());
        client.on_rto(SimTime::from_secs(1), &cfg, &mut fx);
        assert_eq!(fx.segments.len(), 1);
        assert_eq!(client.retransmitted_segments(), 1);
        let seg = fx.segments.remove(0);
        let mut fx_b = TcpEffects::new();
        if let Transport::Tcp(h) = seg.transport {
            server.on_segment(SimTime::from_secs(1), &h, seg.payload, &cfg, &mut fx_b);
        }
        let got: Vec<u8> = fx_b
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                TcpEvent::Data { data, .. } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn rto_backoff_doubles_and_gives_up() {
        let cfg = TcpConfig::default();
        let mut fx = TcpEffects::new();
        let mut conn = TcpConn::open_active(
            ConnId::from_raw(1),
            AppId::from_raw(0),
            (A, 50_000),
            (B, 80),
            Provenance::Benign,
            1,
            &cfg,
            &mut fx,
        );
        let rto0 = conn.rto();
        for _ in 0..cfg.max_syn_retries {
            conn.on_rto(SimTime::ZERO, &cfg, &mut fx);
        }
        assert!(conn.rto() > rto0);
        // One more expiry exceeds the retry budget.
        fx.events.clear();
        conn.on_rto(SimTime::ZERO, &cfg, &mut fx);
        assert!(conn.is_closed());
        assert!(matches!(fx.events[0].1, TcpEvent::ConnectFailed { .. }));
    }

    #[test]
    fn graceful_close_closes_both_sides() {
        let cfg = TcpConfig::default();
        let (mut client, mut server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        client.close(SimTime::ZERO, &cfg, &mut fx);
        assert_eq!(client.state(), TcpState::FinWait);
        // Server receives FIN, then closes its side too.
        let mut all_events = Vec::new();
        let fin = fx.segments.remove(0);
        let mut fx_b = TcpEffects::new();
        if let Transport::Tcp(h) = fin.transport {
            server.on_segment(SimTime::ZERO, &h, fin.payload, &cfg, &mut fx_b);
        }
        all_events.append(&mut fx_b.events);
        assert_eq!(server.state(), TcpState::CloseWait);
        server.close(SimTime::ZERO, &cfg, &mut fx_b);
        all_events.extend(pump(&mut client, &mut server, &cfg, None));
        // Deliver outstanding segments from fx_b to client manually.
        let mut fx_a = TcpEffects::new();
        for seg in fx_b.segments.drain(..) {
            if let Transport::Tcp(h) = seg.transport {
                client.on_segment(SimTime::ZERO, &h, seg.payload, &cfg, &mut fx_a);
            }
        }
        // And the client's final ACK back to the server.
        for seg in fx_a.segments.drain(..) {
            if let Transport::Tcp(h) = seg.transport {
                server.on_segment(SimTime::ZERO, &h, seg.payload, &cfg, &mut fx_b);
            }
        }
        all_events.extend(fx_a.events);
        all_events.extend(fx_b.events);
        assert!(client.is_closed(), "client state {:?}", client.state());
        assert!(server.is_closed(), "server state {:?}", server.state());
        assert!(all_events.iter().any(|(_, e)| matches!(e, TcpEvent::PeerClosed { .. })));
        let closed = all_events.iter().filter(|(_, e)| matches!(e, TcpEvent::Closed { .. })).count();
        assert_eq!(closed, 2);
    }

    #[test]
    fn abort_emits_rst_and_resets_peer() {
        let cfg = TcpConfig::default();
        let (mut client, mut server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        client.abort(&cfg, &mut fx);
        assert!(client.is_closed());
        let rst = fx.segments.remove(0);
        assert!(rst.tcp_flags().contains(TcpFlags::RST));
        let mut fx_b = TcpEffects::new();
        if let Transport::Tcp(h) = rst.transport {
            server.on_segment(SimTime::ZERO, &h, rst.payload, &cfg, &mut fx_b);
        }
        assert!(server.is_closed());
        assert!(matches!(fx_b.events[0].1, TcpEvent::Closed { .. }));
    }

    #[test]
    fn cwnd_grows_on_acks() {
        let cfg = TcpConfig { initial_cwnd: MSS, ..TcpConfig::default() };
        let (mut client, mut server, _) = pair(&cfg);
        // open_active used default initial_cwnd from cfg — re-check growth:
        let before = client.cwnd();
        let mut fx = TcpEffects::new();
        client.send(&vec![0u8; MSS], SimTime::ZERO, &cfg, &mut fx);
        let seg = fx.segments.remove(0);
        let mut fx_b = TcpEffects::new();
        if let Transport::Tcp(h) = seg.transport {
            server.on_segment(SimTime::ZERO, &h, seg.payload, &cfg, &mut fx_b);
        }
        let ack = fx_b.segments.remove(0);
        let mut fx_a = TcpEffects::new();
        if let Transport::Tcp(h) = ack.transport {
            client.on_segment(SimTime::ZERO, &h, ack.payload, &cfg, &mut fx_a);
        }
        assert!(client.cwnd() > before, "cwnd {} !> {}", client.cwnd(), before);
    }

    #[test]
    fn listener_backlog_tracks_capacity() {
        let mut listener = Listener::new(AppId::from_raw(0), 2);
        assert!(listener.has_capacity());
        listener.half_open.push(ConnId::from_raw(1));
        listener.half_open.push(ConnId::from_raw(2));
        assert!(!listener.has_capacity());
    }

    #[test]
    fn ephemeral_ports_do_not_collide() {
        let mut host = TcpHost::new();
        let remote = (B, 80);
        let p1 = host.alloc_ephemeral(remote).expect("fresh host has free ports");
        host.by_key.insert((p1, remote.0, remote.1), ConnId::from_raw(1));
        let p2 = host.alloc_ephemeral(remote).expect("one port used, 16383 free");
        assert_ne!(p1, p2);
    }

    /// Regression (swarm bugfix sweep): exhausting the 16 384-port
    /// ephemeral range towards one remote used to `panic!` and abort the
    /// whole simulation; it now reports failure so the caller can emit
    /// `ConnectFailed` into retry backoff.
    #[test]
    fn ephemeral_exhaustion_returns_none_instead_of_panicking() {
        let mut host = TcpHost::new();
        let remote = (B, 80);
        for _ in 0..16_384 {
            let p = host.alloc_ephemeral(remote).expect("range not yet full");
            host.by_key.insert((p, remote.0, remote.1), ConnId::from_raw(p as u64));
        }
        assert_eq!(host.alloc_ephemeral(remote), None);
        assert_eq!(host.ephemeral_exhausted, 1);
        // A different remote still has its whole range free.
        assert!(host.alloc_ephemeral((A, 80)).is_some());
    }

    /// Property test: random push/pop/peek/drain sequences keep the
    /// ChunkQueue byte-for-byte equal to a flat reference Vec, and the
    /// internal length accounting (checked by debug asserts inside every
    /// mutation) never diverges.
    #[test]
    fn chunk_queue_matches_flat_reference_under_random_ops() {
        use crate::rng::SimRng;
        for seed in 0..16u64 {
            let mut rng = SimRng::seed_from(seed);
            let mut q = ChunkQueue::default();
            let mut reference: Vec<u8> = Vec::new();
            let mut next_byte = 0u8;
            for _ in 0..400 {
                match rng.below(4) {
                    0 => {
                        let n = rng.int_range(0, 3 * MSS as u64) as usize;
                        let chunk: Vec<u8> = (0..n)
                            .map(|_| {
                                next_byte = next_byte.wrapping_add(1);
                                next_byte
                            })
                            .collect();
                        reference.extend_from_slice(&chunk);
                        q.push(Bytes::from(chunk));
                    }
                    1 if !q.is_empty() => {
                        let take = rng.int_range(1, q.len() as u64) as usize;
                        let got = q.pop_front_bytes(take);
                        let want: Vec<u8> = reference.drain(..take).collect();
                        assert_eq!(&got[..], &want[..], "seed {seed} pop mismatch");
                    }
                    2 if !q.is_empty() => {
                        let take = rng.int_range(1, q.len() as u64) as usize;
                        let got = q.peek_front_bytes(take);
                        assert_eq!(&got[..], &reference[..take], "seed {seed} peek mismatch");
                    }
                    3 if !q.is_empty() => {
                        let n = rng.int_range(0, q.len() as u64) as usize;
                        q.drain_front(n);
                        reference.drain(..n);
                    }
                    _ => {}
                }
                assert_eq!(q.len(), reference.len(), "seed {seed} length diverged");
            }
        }
    }

    /// Property test for the reassembly path the buggify layer stresses:
    /// deliver a multi-segment message with random reordering and
    /// duplication (whole segments, as the simulator produces them) and
    /// require the receiver to deliver exactly the original bytes, with
    /// no `expect` panics from the ooo map.
    #[test]
    fn reassembly_survives_random_reorder_and_duplication() {
        use crate::packet::Transport;
        use crate::rng::SimRng;
        let cfg = TcpConfig { initial_cwnd: 64 * MSS, ..TcpConfig::default() };
        for seed in 0..24u64 {
            let mut rng = SimRng::seed_from(0xb1ff ^ seed);
            let (mut client, mut server, _) = pair(&cfg);
            let message: Vec<u8> = (0..20 * MSS).map(|i| (i % 251) as u8).collect();
            let mut fx = TcpEffects::new();
            client.send(&message, SimTime::ZERO, &cfg, &mut fx);
            let mut segs = fx.segments;
            // Duplicate a few segments, then shuffle the whole batch.
            for _ in 0..4 {
                let pick = rng.below(segs.len() as u64) as usize;
                let dup = segs[pick].clone();
                segs.push(dup);
            }
            rng.shuffle(&mut segs);
            let mut fx_b = TcpEffects::new();
            for seg in segs {
                if let Transport::Tcp(h) = seg.transport {
                    server.on_segment(SimTime::ZERO, &h, seg.payload, &cfg, &mut fx_b);
                }
            }
            let received: Vec<u8> = fx_b
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    TcpEvent::Data { data, .. } => Some(data.to_vec()),
                    _ => None,
                })
                .flatten()
                .collect();
            assert_eq!(received.len(), message.len(), "seed {seed} byte count");
            assert_eq!(received, message, "seed {seed} content");
        }
    }

    /// Shaken out by the buggify swarm (tcp.rto.early + link reorder):
    /// an RTO resend re-chunks the stream from `snd_una`, so a buffered
    /// out-of-order segment can be *partially* covered by the resend.
    /// The drain loop used to drop such a segment whole, losing its
    /// unseen tail until yet another retransmission round-trip.
    #[test]
    fn partially_stale_ooo_segment_delivers_its_unseen_tail() {
        let cfg = TcpConfig::default();
        let (_client, mut server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        let base = server.rcv_nxt;
        // Original segment [100, 200) arrives first, buffered in ooo.
        server.process_payload(base.wrapping_add(100), Bytes::from(vec![1u8; 100]), &cfg, &mut fx);
        // The RTO resend re-chunks from snd_una: [0, 150) fills the gap
        // and overlaps the buffered segment's first 50 bytes.
        server.process_payload(base, Bytes::from(vec![2u8; 150]), &cfg, &mut fx);
        let delivered: usize = fx
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                TcpEvent::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(delivered, 200, "the unseen tail [150, 200) must deliver, not drop");
        assert_eq!(server.rcv_nxt, base.wrapping_add(200));
        assert!(server.ooo.is_empty());
    }

    #[test]
    fn seq_comparisons_wrap() {
        assert!(seq_lt(u32::MAX - 1, 2));
        assert!(seq_lt(0, 1));
        assert!(!seq_lt(1, 0));
        assert!(seq_le(5, 5));
    }

    #[test]
    fn send_after_close_is_ignored() {
        let cfg = TcpConfig::default();
        let (mut client, _server, _) = pair(&cfg);
        let mut fx = TcpEffects::new();
        client.close(SimTime::ZERO, &cfg, &mut fx);
        fx.segments.clear();
        client.send(b"late", SimTime::ZERO, &cfg, &mut fx);
        assert!(fx.segments.is_empty());
    }
}
