//! FoundationDB-style buggify: deterministic decision-point perturbation.
//!
//! A *buggify* layer is the inverse of a declarative [`crate::faults`]
//! plan: instead of the scenario author naming the hostile conditions in
//! advance, the simulator itself perturbs every awkward decision point —
//! link deliveries, TCP timers, container lifecycle, the sniffer feed,
//! scheduler tie-breaks — under a dedicated *swarm seed*. Running the
//! same golden scenario over thousands of swarm seeds exposes schedule
//! bugs that a fixed fault plan never reaches, and because every draw is
//! deterministic, a failing seed replays bit-identically.
//!
//! ## Stream discipline
//!
//! Each named [`DecisionPoint`] owns a private [`SimRng`] stream seeded
//! by [`stream_seed`]`(swarm_seed, name)`. Points never share a stream,
//! so adding a decision point (or changing how often one fires) cannot
//! shift the draws of any other point, and none of the simulation's own
//! RNG streams are touched: with buggify disabled the hot path pays one
//! branch on a flag and consumes zero randomness, keeping byte-identity
//! fixtures valid.
//!
//! ## Observability
//!
//! Every point counts evaluations and fires. The world exports them as
//! `netsim.buggify.<point>.{evals,fires}` gauges — only when buggify is
//! enabled, so disabled telemetry stays byte-identical to the golden
//! fixtures while swarm telemetry stays byte-stable per seed.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Scenario-level buggify knob, carried through `ScenarioConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuggifyConfig {
    /// Master switch. Disabled costs one branch per decision point and
    /// consumes no randomness.
    #[serde(default)]
    pub enabled: bool,
    /// Swarm seed keying every decision-point stream. Independent of
    /// the scenario seed: the same workload can be replayed under many
    /// different perturbation schedules.
    #[serde(default)]
    pub swarm_seed: u64,
    /// Global scale on every point's base fire probability, in
    /// `[0, 1]`. `1.0` is the standard swarm intensity.
    #[serde(default = "default_intensity")]
    pub intensity: f64,
}

fn default_intensity() -> f64 {
    1.0
}

impl Default for BuggifyConfig {
    fn default() -> Self {
        BuggifyConfig { enabled: false, swarm_seed: 0, intensity: default_intensity() }
    }
}

impl BuggifyConfig {
    /// An enabled config at standard intensity for the given swarm seed.
    pub fn swarm(swarm_seed: u64) -> Self {
        BuggifyConfig { enabled: true, swarm_seed, intensity: 1.0 }
    }
}

/// Derives the RNG seed for one decision-point stream.
///
/// FNV-1a over the point name, golden-ratio mixed, xored with the swarm
/// seed: distinct names get decorrelated streams, and the mapping is a
/// stable part of the swarm format (a failing seed replays across
/// builds as long as the point keeps its name).
pub fn stream_seed(swarm_seed: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    swarm_seed ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Named decision points, one per perturbation the kernel can inject.
///
/// The `&'static str` names are the stable identity of each stream (see
/// [`stream_seed`]) and the label under which fire counters export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum DecisionPoint {
    /// Hold a delivered frame back by a link-scale extra latency.
    LinkExtraDelay,
    /// Reschedule a delivery a few microseconds later, swapping its
    /// order with close neighbours (reorder within bounds).
    LinkReorder,
    /// Deliver one frame twice.
    LinkDuplicate,
    /// Fire a TCP retransmission timer before its RTO elapses.
    TcpRtoEarly,
    /// Fire a TCP retransmission timer after its RTO elapses.
    TcpRtoLate,
    /// Stretch a pure ACK's delivery (delayed-ACK behaviour).
    TcpAckStretch,
    /// Crash the receiving container mid-transfer (brief down/up blip).
    CtrCrashTransfer,
    /// Reboot the receiving container while a handshake SYN is in
    /// flight.
    CtrRebootHandshake,
    /// Nudge an application timer by a few nanoseconds, breaking
    /// same-instant scheduling ties the other way.
    SchedTiebreak,
    /// Sniffer feed: drain only a prefix of the buffered records.
    CaptureDrainPartial,
    /// Sniffer feed: record a truncated wire length for one packet.
    CaptureRecordTruncate,
    /// IDS serving: hold a staged model swap back by extra window
    /// boundaries.
    ServeModelSwapDelay,
    /// IDS serving: treat the ingestion queue as momentarily full,
    /// forcing the tenant's backpressure policy to engage.
    ServeIngestQueueFull,
    /// Sharded simulation: hold a cross-shard packet back by extra
    /// boundary latency beyond the lookahead. Evaluated by the shard
    /// coordinator in deterministic merge order, so the draws are
    /// invariant to the worker-thread count.
    ShardBoundaryDelay,
    /// Feature extraction: force an early stale-key cull of the
    /// incremental per-flow state's generation maps at a window
    /// boundary. Must be semantically invisible — the serving swarm
    /// pairs it with a flow-state-conservation invariant.
    FeaturesStateCull,
}

/// Number of decision points.
pub const POINT_COUNT: usize = 15;

/// All decision points, in export order.
pub const ALL_POINTS: [DecisionPoint; POINT_COUNT] = [
    DecisionPoint::LinkExtraDelay,
    DecisionPoint::LinkReorder,
    DecisionPoint::LinkDuplicate,
    DecisionPoint::TcpRtoEarly,
    DecisionPoint::TcpRtoLate,
    DecisionPoint::TcpAckStretch,
    DecisionPoint::CtrCrashTransfer,
    DecisionPoint::CtrRebootHandshake,
    DecisionPoint::SchedTiebreak,
    DecisionPoint::CaptureDrainPartial,
    DecisionPoint::CaptureRecordTruncate,
    DecisionPoint::ServeModelSwapDelay,
    DecisionPoint::ServeIngestQueueFull,
    DecisionPoint::ShardBoundaryDelay,
    DecisionPoint::FeaturesStateCull,
];

impl DecisionPoint {
    /// The stable stream / export name of this point.
    pub fn name(self) -> &'static str {
        match self {
            DecisionPoint::LinkExtraDelay => "link.deliver.extra_delay",
            DecisionPoint::LinkReorder => "link.deliver.reorder",
            DecisionPoint::LinkDuplicate => "link.deliver.duplicate",
            DecisionPoint::TcpRtoEarly => "tcp.rto.early",
            DecisionPoint::TcpRtoLate => "tcp.rto.late",
            DecisionPoint::TcpAckStretch => "tcp.ack.stretch",
            DecisionPoint::CtrCrashTransfer => "ctr.crash.mid_transfer",
            DecisionPoint::CtrRebootHandshake => "ctr.reboot.handshake",
            DecisionPoint::SchedTiebreak => "sched.tiebreak",
            DecisionPoint::CaptureDrainPartial => "capture.drain.partial",
            DecisionPoint::CaptureRecordTruncate => "capture.record.truncate",
            DecisionPoint::ServeModelSwapDelay => "serve.model_swap_delay",
            DecisionPoint::ServeIngestQueueFull => "serve.ingest_queue_full",
            DecisionPoint::ShardBoundaryDelay => "shard.boundary_delay",
            DecisionPoint::FeaturesStateCull => "features.state_cull",
        }
    }

    /// Base fire probability per evaluation, before the config's
    /// intensity scale. Evaluation sites differ wildly in frequency
    /// (every delivery vs. every RTO re-arm), so each point is tuned
    /// to yield a handful-to-hundreds of fires per golden run.
    pub fn base_probability(self) -> f64 {
        match self {
            DecisionPoint::LinkExtraDelay => 0.01,
            DecisionPoint::LinkReorder => 0.01,
            DecisionPoint::LinkDuplicate => 0.005,
            DecisionPoint::TcpRtoEarly => 0.05,
            DecisionPoint::TcpRtoLate => 0.05,
            DecisionPoint::TcpAckStretch => 0.02,
            DecisionPoint::CtrCrashTransfer => 2e-5,
            DecisionPoint::CtrRebootHandshake => 1e-4,
            DecisionPoint::SchedTiebreak => 0.01,
            DecisionPoint::CaptureDrainPartial => 0.05,
            DecisionPoint::CaptureRecordTruncate => 0.01,
            // Evaluated once per staged swap / once per service tick.
            DecisionPoint::ServeModelSwapDelay => 0.25,
            DecisionPoint::ServeIngestQueueFull => 0.02,
            // Evaluated once per cross-shard packet.
            DecisionPoint::ShardBoundaryDelay => 0.02,
            // Evaluated once per tenant per service tick.
            DecisionPoint::FeaturesStateCull => 0.05,
        }
    }
}

/// One decision point's private stream and fire accounting.
#[derive(Debug, Clone)]
struct PointState {
    rng: SimRng,
    evals: u64,
    fires: u64,
}

/// The kernel-owned buggify state: per-point streams plus counters.
///
/// Constructed disabled by default; [`Buggify::enabled`] is the single
/// branch the hot path pays when the layer is off.
#[derive(Debug, Clone)]
pub struct Buggify {
    cfg: BuggifyConfig,
    points: Vec<PointState>,
}

impl Default for Buggify {
    fn default() -> Self {
        Buggify::disabled()
    }
}

impl Buggify {
    /// A disabled instance: no streams are seeded, every fire is `false`.
    pub fn disabled() -> Self {
        Buggify { cfg: BuggifyConfig::default(), points: Vec::new() }
    }

    /// Builds the per-point streams for a config. A disabled config
    /// produces the same state as [`Buggify::disabled`].
    pub fn new(cfg: BuggifyConfig) -> Self {
        if !cfg.enabled {
            return Buggify { cfg, points: Vec::new() };
        }
        let points = ALL_POINTS
            .iter()
            .map(|p| PointState {
                rng: SimRng::seed_from(stream_seed(cfg.swarm_seed, p.name())),
                evals: 0,
                fires: 0,
            })
            .collect();
        Buggify { cfg, points }
    }

    /// `true` when perturbations are active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> BuggifyConfig {
        self.cfg
    }

    /// Evaluates a decision point: one Bernoulli draw from the point's
    /// private stream. Always `false` (and drawless) when disabled.
    #[inline]
    pub fn fire(&mut self, point: DecisionPoint) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let p = point.base_probability() * self.cfg.intensity;
        let state = &mut self.points[point as usize];
        state.evals += 1;
        let hit = state.rng.chance(p);
        if hit {
            state.fires += 1;
        }
        hit
    }

    /// A uniform draw in `[lo, hi)` from the point's private stream,
    /// for sizing the perturbation after [`Buggify::fire`] returned
    /// `true`.
    ///
    /// # Panics
    ///
    /// Panics if buggify is disabled (callers must gate on `fire`).
    pub fn magnitude(&mut self, point: DecisionPoint, lo: f64, hi: f64) -> f64 {
        assert!(self.cfg.enabled, "magnitude() on disabled buggify");
        self.points[point as usize].rng.uniform_range(lo, hi)
    }

    /// Per-point `(name, evals, fires)` counters, in export order.
    /// Empty when disabled.
    pub fn counts(&self) -> Vec<(&'static str, u64, u64)> {
        ALL_POINTS
            .iter()
            .zip(self.points.iter())
            .map(|(p, s)| (p.name(), s.evals, s.fires))
            .collect()
    }

    /// Total fires across all points.
    pub fn total_fires(&self) -> u64 {
        self.points.iter().map(|s| s.fires).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires_and_counts_nothing() {
        let mut b = Buggify::disabled();
        for _ in 0..1_000 {
            assert!(!b.fire(DecisionPoint::LinkExtraDelay));
        }
        assert!(b.counts().is_empty());
        assert_eq!(b.total_fires(), 0);
    }

    #[test]
    fn same_swarm_seed_same_fire_sequence() {
        let mut a = Buggify::new(BuggifyConfig::swarm(77));
        let mut b = Buggify::new(BuggifyConfig::swarm(77));
        for i in 0..10_000 {
            let p = ALL_POINTS[i % POINT_COUNT];
            assert_eq!(a.fire(p), b.fire(p), "draw {i} diverged");
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn streams_are_keyed_per_point_not_shared() {
        // Evaluating point A must not shift point B's stream: a run
        // that only touches B sees the same B-sequence as a run that
        // interleaves A draws.
        let mut only_b = Buggify::new(BuggifyConfig::swarm(5));
        let mut interleaved = Buggify::new(BuggifyConfig::swarm(5));
        let mut seq1 = Vec::new();
        let mut seq2 = Vec::new();
        for _ in 0..500 {
            seq1.push(only_b.fire(DecisionPoint::TcpRtoEarly));
            interleaved.fire(DecisionPoint::LinkDuplicate);
            seq2.push(interleaved.fire(DecisionPoint::TcpRtoEarly));
        }
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn different_swarm_seeds_diverge() {
        let mut a = Buggify::new(BuggifyConfig::swarm(1));
        let mut b = Buggify::new(BuggifyConfig::swarm(2));
        let fires_a: Vec<bool> =
            (0..2_000).map(|_| a.fire(DecisionPoint::LinkExtraDelay)).collect();
        let fires_b: Vec<bool> =
            (0..2_000).map(|_| b.fire(DecisionPoint::LinkExtraDelay)).collect();
        assert_ne!(fires_a, fires_b);
    }

    #[test]
    fn stream_seed_separates_names() {
        assert_ne!(stream_seed(9, "tcp.rto.early"), stream_seed(9, "tcp.rto.late"));
        assert_ne!(stream_seed(9, "a"), stream_seed(10, "a"));
    }

    #[test]
    fn intensity_zero_evaluates_but_never_fires() {
        let cfg = BuggifyConfig { enabled: true, swarm_seed: 3, intensity: 0.0 };
        let mut b = Buggify::new(cfg);
        for _ in 0..1_000 {
            assert!(!b.fire(DecisionPoint::SchedTiebreak));
        }
        let counts = b.counts();
        let sched = counts.iter().find(|(n, _, _)| *n == "sched.tiebreak").unwrap();
        assert_eq!(sched.1, 1_000);
        assert_eq!(sched.2, 0);
        assert_eq!(b.total_fires(), 0);
    }

    #[test]
    fn config_defaults_are_disabled_full_intensity() {
        let d = BuggifyConfig::default();
        assert!(!d.enabled);
        assert_eq!(d.swarm_seed, 0);
        assert_eq!(d.intensity, 1.0);
        let s = BuggifyConfig::swarm(42);
        assert!(s.enabled);
        assert_eq!(s.swarm_seed, 42);
    }
}
