//! Typed identifiers for simulator entities.
//!
//! Every entity class gets its own newtype ([`NodeId`], [`LinkId`],
//! [`AppId`], [`ConnId`], [`TimerId`]) so indices into different tables
//! cannot be confused (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw index as a typed id.
            pub const fn from_raw(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn as_raw(self) -> $inner {
                self.0
            }

            /// The raw index as `usize`, for table indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a simulated node (host).
    NodeId,
    u32
);
id_type!(
    /// Identifies a link (point-to-point or CSMA bus).
    LinkId,
    u32
);
id_type!(
    /// Identifies an application instance hosted on a node.
    AppId,
    u32
);
id_type!(
    /// Identifies a TCP connection, unique across the whole simulation.
    ConnId,
    u64
);
id_type!(
    /// Identifies a scheduled application timer.
    TimerId,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw_values() {
        let n = NodeId::from_raw(7);
        assert_eq!(n.as_raw(), 7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "NodeId(7)");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ConnId::from_raw(1));
        set.insert(ConnId::from_raw(2));
        assert!(set.contains(&ConnId::from_raw(1)));
        assert!(ConnId::from_raw(1) < ConnId::from_raw(2));
    }
}
