//! Simulated nodes (hosts) and their routing/transport state.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId};
use crate::packet::Addr;
use crate::tcp::TcpHost;
use crate::time::{SimDuration, SimTime};
use crate::udp::UdpHost;

/// Traffic counters for a node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Packets handed to a link for transmission.
    pub sent_packets: u64,
    /// Bytes handed to a link for transmission.
    pub sent_bytes: u64,
    /// Packets delivered to this node.
    pub recv_packets: u64,
    /// Bytes delivered to this node.
    pub recv_bytes: u64,
    /// Packets discarded because the node was administratively down.
    pub dropped_down: u64,
    /// Packets discarded because no route matched the destination.
    pub dropped_no_route: u64,
}

/// A simulated host.
#[derive(Debug)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's IPv4 address.
    pub addr: Addr,
    /// Human-readable name, for diagnostics.
    pub name: String,
    /// Administrative state (churned-out devices are down).
    pub up: bool,
    /// Links this node is attached to.
    pub links: Vec<LinkId>,
    /// Explicit host routes.
    pub routes: HashMap<Addr, LinkId>,
    /// Fallback link for unmatched destinations.
    pub default_link: Option<LinkId>,
    /// TCP state.
    pub tcp: TcpHost,
    /// UDP state.
    pub udp: UdpHost,
    /// Traffic counters.
    pub stats: NodeStats,
    /// CPU-pressure factor injected by fault plans: modelled compute on
    /// this node costs `cpu_pressure ×` its nominal time (1.0 = unloaded).
    pub cpu_pressure: f64,
    /// When the node last went down (`None` while up). Maintained by
    /// the kernel on every administrative transition so downtime is
    /// exact regardless of whether churn, a fault plan or a manual
    /// call flipped the state.
    pub down_since: Option<SimTime>,
    /// Accumulated time spent down over closed down→up intervals.
    pub downtime_total: SimDuration,
}

impl Node {
    /// Creates an isolated, up node.
    pub fn new(id: NodeId, addr: Addr, name: impl Into<String>) -> Self {
        Node {
            id,
            addr,
            name: name.into(),
            up: true,
            links: Vec::new(),
            routes: HashMap::new(),
            default_link: None,
            tcp: TcpHost::new(),
            udp: UdpHost::new(),
            stats: NodeStats::default(),
            cpu_pressure: 1.0,
            down_since: None,
            downtime_total: SimDuration::ZERO,
        }
    }

    /// Total time this node has spent administratively down, including
    /// the still-open interval if it is down at `now`.
    pub fn downtime(&self, now: SimTime) -> SimDuration {
        match self.down_since {
            Some(since) => self.downtime_total + (now - since),
            None => self.downtime_total,
        }
    }

    /// Attaches the node to a link; the first attachment becomes the
    /// default route.
    pub fn attach(&mut self, link: LinkId) {
        if !self.links.contains(&link) {
            self.links.push(link);
        }
        if self.default_link.is_none() {
            self.default_link = Some(link);
        }
    }

    /// Chooses the egress link for a destination address.
    pub fn route(&self, dst: Addr) -> Option<LinkId> {
        self.routes.get(&dst).copied().or(self.default_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attachment_is_default_route() {
        let mut n = Node::new(NodeId::from_raw(0), Addr::new(10, 0, 0, 1), "dev-0");
        assert_eq!(n.route(Addr::new(1, 2, 3, 4)), None);
        n.attach(LinkId::from_raw(5));
        n.attach(LinkId::from_raw(6));
        assert_eq!(n.route(Addr::new(1, 2, 3, 4)), Some(LinkId::from_raw(5)));
    }

    #[test]
    fn host_routes_override_default() {
        let mut n = Node::new(NodeId::from_raw(0), Addr::new(10, 0, 0, 1), "dev-0");
        n.attach(LinkId::from_raw(1));
        n.routes.insert(Addr::new(10, 0, 0, 9), LinkId::from_raw(2));
        assert_eq!(n.route(Addr::new(10, 0, 0, 9)), Some(LinkId::from_raw(2)));
        assert_eq!(n.route(Addr::new(10, 0, 0, 8)), Some(LinkId::from_raw(1)));
    }

    #[test]
    fn duplicate_attach_is_idempotent() {
        let mut n = Node::new(NodeId::from_raw(0), Addr::new(10, 0, 0, 1), "dev-0");
        n.attach(LinkId::from_raw(1));
        n.attach(LinkId::from_raw(1));
        assert_eq!(n.links.len(), 1);
    }
}
