//! # netsim — a deterministic discrete-event network simulator
//!
//! This crate is the NS-3 substitute of the DDoShield-IoT reproduction.
//! It provides a nanosecond-resolution virtual clock, a deterministic
//! event queue, nodes and links (point-to-point and CSMA buses with
//! bandwidth, delay and drop-tail queues), a miniature but faithful TCP
//! (handshake with bounded SYN backlog, reliable ordered delivery,
//! retransmission, AIMD congestion control) and UDP, plus an application
//! hosting API ([`world::App`]) on which the testbed's "IoT binaries"
//! (traffic servers, Mirai components, the IDS) run.
//!
//! Determinism: given the same topology, applications and root seed, a
//! run is bit-for-bit reproducible — events at equal timestamps execute
//! in scheduling order, and all randomness flows from [`rng::SimRng`].
//!
//! ## Example
//!
//! ```
//! use netsim::link::LinkConfig;
//! use netsim::packet::Addr;
//! use netsim::time::SimDuration;
//! use netsim::world::World;
//!
//! let mut world = World::new(42);
//! let a = world.add_node(Addr::new(10, 0, 0, 1), "server");
//! let b = world.add_node(Addr::new(10, 0, 0, 2), "device");
//! world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
//! world.run_for(SimDuration::from_secs(1));
//! assert_eq!(world.now().whole_secs(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buggify;
pub mod event;
pub mod faults;
pub mod ids;
pub mod link;
pub mod node;
pub mod packet;
pub mod pool;
pub mod rng;
pub mod shard;
pub mod tap;
pub mod tcp;
pub mod time;
pub mod udp;
pub mod world;

pub use buggify::BuggifyConfig;
pub use faults::{FaultAction, FaultEntry, FaultPlan};
pub use ids::{AppId, ConnId, LinkId, NodeId, TimerId};
pub use link::LinkConfig;
pub use packet::{Addr, FiveTuple, Packet, Protocol, Provenance, TcpFlags};
pub use pool::{PacketId, PacketPool};
pub use rng::SimRng;
pub use tcp::{TcpEvent, MSS};
pub use time::{SimDuration, SimTime};
pub use udp::Datagram;
pub use world::{App, Ctx, World};
