//! The simulation world: event loop, application hosting, and the
//! kernel services applications use (sockets, timers, raw sends).
//!
//! A [`World`] owns the network (nodes, links), the event queue, and the
//! applications. Applications implement [`App`] and interact with the
//! world exclusively through the [`Ctx`] handed to their callbacks, which
//! keeps borrow-checking trivial: during a callback the application is
//! temporarily moved out of the registry while `Ctx` borrows the kernel.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use obs::{pow2_bounds, Counter, Histogram, Scope};

use crate::buggify::{Buggify, BuggifyConfig, DecisionPoint};
use crate::event::{Event, EventQueue};
use crate::faults::{FaultAction, FaultPlan};
use crate::ids::{AppId, ConnId, LinkId, NodeId, TimerId};
use crate::link::{DropReason, EndpointInfo, Link, LinkConfig, LinkStats};
use crate::node::{Node, NodeStats};
use crate::packet::{Addr, Packet, Provenance, TcpFlags, TcpHeader, Transport};
use crate::pool::{PacketId, PacketPool};
use crate::rng::SimRng;
use crate::tap::{PacketTap, TapMeta};
use crate::tcp::{Listener, TcpConfig, TcpConn, TcpEffects, TcpEvent};
use crate::time::{SimDuration, SimTime};
use crate::udp::Datagram;

/// A hosted application (an "IoT binary" in testbed terms).
///
/// All callbacks receive a [`Ctx`] giving access to the node's sockets,
/// timers and randomness. Default implementations ignore events, so apps
/// implement only what they need.
#[allow(unused_variables)]
pub trait App {
    /// Called once when the application is started.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {}
    /// Called for every TCP socket event owned by this application.
    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {}
    /// Called for every UDP datagram on a port bound by this application.
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, datagram: Datagram) {}
    /// Called when a timer set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {}
    /// Called when the hosting node changes administrative state (churn).
    fn on_link_state(&mut self, ctx: &mut Ctx<'_>, up: bool) {}
}

enum AppEvent {
    Start,
    Tcp(TcpEvent),
    Udp(Datagram),
    Timer(u64),
    LinkState(bool),
}

/// Stable names for the event-loop dispatch phases, indexed by
/// [`phase_index`]. These appear verbatim in exported telemetry.
const PHASE_NAMES: [&str; 7] =
    ["link_tx_complete", "deliver", "tcp_timer", "app_timer", "app_start", "set_node_up", "fault"];

fn phase_index(event: &Event) -> usize {
    match event {
        Event::LinkTxComplete { .. } => 0,
        Event::Deliver { .. } => 1,
        // Deferred connect failures account under the tcp_timer phase:
        // they are TCP bookkeeping events, and PHASE_NAMES is part of
        // the exported telemetry schema (golden fixtures pin it), so a
        // rare event does not get a name of its own.
        Event::TcpTimer { .. } | Event::TcpConnectFailed { .. } => 2,
        Event::AppTimer { .. } => 3,
        Event::AppStart { .. } => 4,
        Event::SetNodeUp { .. } => 5,
        Event::Fault { .. } => 6,
    }
}

/// Event-loop instrumentation handles, created once by
/// [`World::set_obs`] so the hot path never does name lookups.
///
/// Everything recorded here is a pure function of simulation state:
/// event counts per dispatch phase, virtual-clock advance per phase,
/// and link transmit-queue depths sampled at link events.
///
/// The per-event path records into plain local accumulators (no
/// registry access); [`WorldObs::flush`] folds them into the shared
/// registry before a snapshot. The flushed result is byte-identical to
/// having updated the registry per event.
struct WorldObs {
    scope: Scope,
    phase_events: [Counter; 7],
    phase_advance_ns: [Histogram; 7],
    queue_depth: Histogram,
    local_events: [u64; 7],
    local_advance: [LocalHist; 7],
    local_depth: LocalHist,
}

/// A histogram accumulator private to the event loop: same bucketing as
/// the registry histogram it flushes into, but plain memory — no
/// `Rc<RefCell>` traffic per event.
#[derive(Debug)]
struct LocalHist {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl LocalHist {
    fn new(bounds: &[u64]) -> Self {
        LocalHist { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], count: 0, sum: 0 }
    }

    #[inline]
    fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    fn flush_into(&mut self, hist: &Histogram) {
        if self.count == 0 {
            return;
        }
        hist.add_batch(&self.counts, self.count, self.sum);
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
    }
}

impl WorldObs {
    fn new(scope: Scope) -> Self {
        let phases = scope.child("phase");
        // Virtual-clock advance per event: 1 ns up to ~4.3 s.
        let advance_bounds = pow2_bounds(0, 32);
        // Per-link transmit queue depth: 1 up to 1024 packets.
        let depth_bounds = pow2_bounds(0, 10);
        let phase_scopes = PHASE_NAMES.map(|name| phases.child(name));
        let phase_events = std::array::from_fn(|i| phase_scopes[i].counter("events"));
        let phase_advance_ns =
            std::array::from_fn(|i| phase_scopes[i].histogram("advance_ns", &advance_bounds));
        let queue_depth = scope.child("link").histogram("queue_depth", &depth_bounds);
        WorldObs {
            scope,
            phase_events,
            phase_advance_ns,
            queue_depth,
            local_events: [0; 7],
            local_advance: std::array::from_fn(|_| LocalHist::new(&advance_bounds)),
            local_depth: LocalHist::new(&depth_bounds),
        }
    }

    /// Folds the locally accumulated per-event records into the shared
    /// registry. Must run before the registry is snapshotted.
    fn flush(&mut self) {
        for (counter, n) in self.phase_events.iter().zip(&mut self.local_events) {
            if *n > 0 {
                counter.add(*n);
                *n = 0;
            }
        }
        for (hist, local) in self.phase_advance_ns.iter().zip(&mut self.local_advance) {
            local.flush_into(hist);
        }
        self.local_depth.flush_into(&self.queue_depth);
    }
}

/// Everything in the world except the applications themselves.
///
/// Exposed to applications through [`Ctx`] and to orchestrators through
/// accessor methods on [`World`].
pub struct Kernel {
    clock: SimTime,
    queue: EventQueue,
    root_seed: u64,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// In-flight packet bodies, shared by every link and the delivery
    /// path. The event queue and lane queues hold [`PacketId`] handles
    /// into this pool.
    pool: PacketPool,
    taps: Vec<Box<dyn PacketTap>>,
    rng: SimRng,
    tcp_config: TcpConfig,
    next_conn_id: u64,
    next_timer_id: u64,
    cancelled_timers: HashSet<TimerId>,
    app_nodes: Vec<NodeId>,
    app_provenance: Vec<Provenance>,
    events_processed: u64,
    obs: Option<WorldObs>,
    /// Reusable buffer for notifications produced inside [`Ctx`]
    /// callbacks (socket calls re-entering the kernel), so the hot path
    /// never allocates a fresh `Vec` per call.
    ctx_scratch: Vec<(AppId, AppEvent)>,
    /// Reusable [`TcpEffects`] sink shared by every TCP entry point
    /// (segment input, RTO expiry, socket calls). Drained by
    /// [`Kernel::finish_conn_activity`] before being handed back, so
    /// connection activity reuses two warm `Vec`s instead of allocating
    /// per event.
    effects_scratch: TcpEffects,
    /// Deterministic decision-point perturbation layer. Disabled by
    /// default: the hot path pays one branch per decision point and
    /// consumes no randomness (see [`crate::buggify`]).
    buggify: Buggify,
    /// Every node address in this world, for O(1) duplicate detection
    /// and — when this world is one cell of a sharded run — the "is
    /// this destination local?" test on the send path.
    local_addrs: HashMap<Addr, NodeId>,
    /// When `true`, packets addressed outside this world are captured
    /// into `egress` (stamped with the send time) instead of being
    /// routed onto the default link. Off by default: a standalone world
    /// keeps its exact pre-shard semantics.
    egress_enabled: bool,
    /// Captured boundary packets, drained by the shard coordinator
    /// after each synchronization window (see [`crate::shard`]).
    egress: Vec<(SimTime, Packet)>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("clock", &self.clock)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("apps", &self.app_nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Kernel {
    fn new(seed: u64) -> Self {
        Kernel {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            root_seed: seed,
            nodes: Vec::new(),
            links: Vec::new(),
            pool: PacketPool::new(),
            taps: Vec::new(),
            rng: SimRng::seed_from(seed),
            tcp_config: TcpConfig::default(),
            next_conn_id: 0,
            next_timer_id: 0,
            cancelled_timers: HashSet::new(),
            app_nodes: Vec::new(),
            app_provenance: Vec::new(),
            events_processed: 0,
            obs: None,
            ctx_scratch: Vec::new(),
            effects_scratch: TcpEffects::new(),
            buggify: Buggify::disabled(),
            local_addrs: HashMap::new(),
            egress_enabled: false,
            egress: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The kernel-wide RNG (components should usually `fork` their own).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The TCP configuration shared by all hosts.
    pub fn tcp_config(&self) -> &TcpConfig {
        &self.tcp_config
    }

    fn alloc_conn_id(&mut self) -> ConnId {
        let id = ConnId::from_raw(self.next_conn_id);
        self.next_conn_id += 1;
        id
    }

    /// Sends a fully formed packet from `node` onto the routed link.
    ///
    /// Used directly by flood generators (spoofed raw packets) and by the
    /// transport layers. Returns the reason if the packet was dropped at
    /// the source.
    pub fn send_packet(&mut self, node_id: NodeId, packet: Packet) -> Result<(), DropReason> {
        let node = &mut self.nodes[node_id.index()];
        if !node.up {
            node.stats.dropped_down += 1;
            return Err(DropReason::NodeDown);
        }
        if self.egress_enabled && !self.local_addrs.contains_key(&packet.dst) {
            // Boundary send: the destination lives in another shard
            // cell. The packet leaves this world here and re-enters the
            // destination cell via the coordinator's mailbox, which adds
            // the boundary latency.
            node.stats.sent_packets += 1;
            node.stats.sent_bytes += packet.wire_len() as u64;
            self.egress.push((self.clock, packet));
            return Ok(());
        }
        let Some(link_id) = node.route(packet.dst) else {
            node.stats.dropped_no_route += 1;
            return Err(DropReason::Unroutable);
        };
        node.stats.sent_packets += 1;
        node.stats.sent_bytes += packet.wire_len() as u64;
        let clock = self.clock;
        self.links[link_id.index()].enqueue(clock, node_id, packet, &mut self.pool, &mut self.queue)
    }

    fn handle_tx_complete(&mut self, link: LinkId, lane: usize) {
        // Split borrows: the link needs an endpoint resolver over nodes
        // while it mutates the pool and the queue.
        let Kernel { nodes, links, pool, queue, clock, .. } = self;
        let resolver = |node: NodeId| EndpointInfo {
            addr: nodes[node.index()].addr,
            up: nodes[node.index()].up,
        };
        links[link.index()].on_tx_complete(*clock, lane, &resolver, pool, queue);
    }

    fn apply_fault(&mut self, action: FaultAction, out: &mut Vec<(AppId, AppEvent)>) {
        let clock = self.clock;
        match action {
            FaultAction::SetLinkUp { link, up } => {
                self.links[link.index()].set_up(clock, up, &mut self.queue);
            }
            FaultAction::SetLossOverride { link, rate } => {
                self.links[link.index()].set_loss_override(rate);
            }
            FaultAction::SetBandwidthScale { link, scale } => {
                self.links[link.index()].set_bandwidth_scale(scale);
            }
            FaultAction::SetExtraDelay { link, delay } => {
                self.links[link.index()].set_extra_delay(delay);
            }
            FaultAction::SetCpuPressure { node, factor } => {
                self.nodes[node.index()].cpu_pressure = factor.max(0.0);
            }
            FaultAction::NodeCrash { node } => self.set_node_up(node, false, out),
            FaultAction::NodeReboot { node, boot_delay } => {
                // The restore is an ordinary node-up event so app
                // notifications flow through the same path as churn.
                self.queue.schedule(clock + boot_delay, Event::SetNodeUp { node, up: true });
                self.set_node_up(node, false, out);
            }
        }
    }

    /// Evaluates buggify decision points against a just-popped event.
    /// Returns `true` when the event was *deferred* (rescheduled into
    /// the near future) and must not be dispatched now; side-effect
    /// perturbations (duplicates, lifecycle blips) schedule extra
    /// events and return `false` so the original still dispatches.
    ///
    /// Only called when buggify is enabled, so the disabled hot path
    /// pays exactly one branch in [`World::step`]. Deferred events are
    /// re-evaluated on their next pop; fire probabilities are well
    /// below 1, so repeated deferral terminates almost surely.
    fn buggify_perturb(&mut self, time: SimTime, event: &Event) -> bool {
        match *event {
            Event::Deliver { node, packet, .. } => {
                let (pure_ack, is_syn, has_payload) = {
                    let p = self.pool.get(packet);
                    match p.transport {
                        Transport::Tcp(ref h) => (
                            h.flags == TcpFlags::ACK && p.payload.is_empty(),
                            h.flags.contains(TcpFlags::SYN),
                            !p.payload.is_empty(),
                        ),
                        Transport::Udp(_) => (false, false, !p.payload.is_empty()),
                    }
                };
                if pure_ack && self.buggify.fire(DecisionPoint::TcpAckStretch) {
                    // Delayed-ACK stretch: 1–40 ms.
                    let ns = self.buggify.magnitude(DecisionPoint::TcpAckStretch, 1e6, 4e7);
                    self.queue.schedule(time + SimDuration::from_nanos(ns as u64), event.clone());
                    return true;
                }
                if self.buggify.fire(DecisionPoint::LinkExtraDelay) {
                    // Link-scale extra latency: 0.1–20 ms.
                    let ns = self.buggify.magnitude(DecisionPoint::LinkExtraDelay, 1e5, 2e7);
                    self.queue.schedule(time + SimDuration::from_nanos(ns as u64), event.clone());
                    return true;
                }
                if self.buggify.fire(DecisionPoint::LinkReorder) {
                    // Small nudge: 1–200 µs, enough to swap with close
                    // neighbours but bounded well under an RTT.
                    let ns = self.buggify.magnitude(DecisionPoint::LinkReorder, 1e3, 2e5);
                    self.queue.schedule(time + SimDuration::from_nanos(ns as u64), event.clone());
                    return true;
                }
                if self.buggify.fire(DecisionPoint::LinkDuplicate) {
                    // Deliver the frame twice: the copy holds its own
                    // pool reference and arrives 1–50 µs later.
                    self.pool.retain(packet);
                    let ns = self.buggify.magnitude(DecisionPoint::LinkDuplicate, 1e3, 5e4);
                    self.queue.schedule(time + SimDuration::from_nanos(ns as u64), event.clone());
                }
                if is_syn && self.buggify.fire(DecisionPoint::CtrRebootHandshake) {
                    // Reboot the receiver right after the SYN lands:
                    // down for 20–200 ms, then back up.
                    let ns = self.buggify.magnitude(DecisionPoint::CtrRebootHandshake, 2e7, 2e8);
                    self.queue.schedule(time, Event::SetNodeUp { node, up: false });
                    self.queue
                        .schedule(time + SimDuration::from_nanos(ns as u64), Event::SetNodeUp { node, up: true });
                } else if has_payload && self.buggify.fire(DecisionPoint::CtrCrashTransfer) {
                    // Crash mid-transfer: a watchdog-style blip of
                    // 50–500 ms before the container returns.
                    let ns = self.buggify.magnitude(DecisionPoint::CtrCrashTransfer, 5e7, 5e8);
                    self.queue.schedule(time, Event::SetNodeUp { node, up: false });
                    self.queue
                        .schedule(time + SimDuration::from_nanos(ns as u64), Event::SetNodeUp { node, up: true });
                }
                false
            }
            Event::AppTimer { .. } => {
                if self.buggify.fire(DecisionPoint::SchedTiebreak) {
                    // Nudge by up to one scheduler tick: same-instant
                    // ties break the other way.
                    let ns = self.buggify.magnitude(DecisionPoint::SchedTiebreak, 1.0, 1024.0);
                    self.queue.schedule(time + SimDuration::from_nanos(ns as u64), event.clone());
                    return true;
                }
                false
            }
            _ => false,
        }
    }

    fn deliver(
        &mut self,
        link: LinkId,
        node_id: NodeId,
        packet_id: PacketId,
        out: &mut Vec<(AppId, AppEvent)>,
    ) {
        {
            let meta = TapMeta { time: self.clock, link, receiver: node_id };
            let packet = self.pool.get(packet_id);
            for tap in &mut self.taps {
                tap.on_packet(&meta, packet);
            }
        }
        let wire_len = self.pool.get(packet_id).wire_len() as u64;
        let node = &mut self.nodes[node_id.index()];
        if !node.up {
            node.stats.dropped_down += 1;
            self.pool.release(packet_id);
            return;
        }
        node.stats.recv_packets += 1;
        node.stats.recv_bytes += wire_len;
        // This receiver is done with the pool slot. If it was the last
        // one, `release` hands back the owned body and the payload moves
        // without touching the refcount; a broadcast sibling still
        // holding the slot costs one payload `Bytes` clone (refcount
        // bump, not a copy).
        let (src, transport, provenance, payload) = match self.pool.release(packet_id) {
            Some(packet) => (packet.src, packet.transport, packet.provenance, packet.payload),
            None => {
                let packet = self.pool.get(packet_id);
                (packet.src, packet.transport, packet.provenance, packet.payload.clone())
            }
        };
        match transport {
            Transport::Tcp(header) => self.tcp_input(node_id, header, src, provenance, payload, out),
            Transport::Udp(header) => {
                let node = &mut self.nodes[node_id.index()];
                match node.udp.lookup(header.dst_port) {
                    Some(app) => out.push((
                        app,
                        AppEvent::Udp(Datagram {
                            src,
                            src_port: header.src_port,
                            dst_port: header.dst_port,
                            payload,
                        }),
                    )),
                    None => {
                        node.udp.unreachable += 1;
                    }
                }
            }
        }
    }

    fn tcp_input(
        &mut self,
        node_id: NodeId,
        header: TcpHeader,
        src: Addr,
        provenance: Provenance,
        payload: Bytes,
        out: &mut Vec<(AppId, AppEvent)>,
    ) {
        let key = (header.dst_port, src, header.src_port);
        let mut effects = std::mem::take(&mut self.effects_scratch);
        let node = &mut self.nodes[node_id.index()];

        if let Some(&conn_id) = node.tcp.by_key.get(&key) {
            let cfg = self.tcp_config;
            let conn = node.tcp.conns.get_mut(&conn_id).expect("demux table is consistent");
            conn.on_segment(self.clock, &header, payload, &cfg, &mut effects);
            self.finish_conn_activity(node_id, conn_id, &mut effects, out);
            self.effects_scratch = effects;
            return;
        }

        // No connection: a SYN may create one via a listener.
        let is_bare_syn = header.flags.contains(TcpFlags::SYN) && !header.flags.contains(TcpFlags::ACK);
        if is_bare_syn {
            if let Some(listener) = node.tcp.listeners.get_mut(&header.dst_port) {
                if !listener.has_capacity() {
                    // SYN backlog exhausted: the flood is winning. Drop.
                    listener.syn_drops += 1;
                    self.effects_scratch = effects;
                    return;
                }
                let app = listener.app;
                let local = (node.addr, header.dst_port);
                let remote = (src, header.src_port);
                let conn_id = self.alloc_conn_id();
                let iss = self.rng.next_u64() as u32;
                let cfg = self.tcp_config;
                let conn = TcpConn::open_passive(
                    conn_id,
                    app,
                    local,
                    remote,
                    provenance,
                    iss,
                    header.seq,
                    &cfg,
                    &mut effects,
                );
                let node = &mut self.nodes[node_id.index()];
                node.tcp.conns.insert(conn_id, conn);
                node.tcp.by_key.insert(key, conn_id);
                node.tcp
                    .listeners
                    .get_mut(&header.dst_port)
                    .expect("listener just seen")
                    .half_open
                    .push(conn_id);
                self.finish_conn_activity(node_id, conn_id, &mut effects, out);
                self.effects_scratch = effects;
                return;
            }
        }
        self.effects_scratch = effects;

        // Stray segment: answer with RST (but never RST a RST).
        if !header.flags.contains(TcpFlags::RST) {
            let node = &mut self.nodes[node_id.index()];
            node.tcp.rst_sent += 1;
            let rst_header = TcpHeader {
                src_port: header.dst_port,
                dst_port: header.src_port,
                seq: header.ack,
                ack: header.seq.wrapping_add(1),
                flags: TcpFlags::RST | TcpFlags::ACK,
                window: 0,
            };
            let node_addr = node.addr;
            let rst = Packet::tcp(node_addr, src, rst_header, Bytes::new())
                .with_provenance(provenance);
            let _ = self.send_packet(node_id, rst);
        }
    }

    /// Sends a connection's queued segments, re-arms its timer, promotes
    /// or reaps it, and converts TCP events into app notifications
    /// (pushed onto `out`).
    fn finish_conn_activity(
        &mut self,
        node_id: NodeId,
        conn_id: ConnId,
        effects: &mut TcpEffects,
        out: &mut Vec<(AppId, AppEvent)>,
    ) {
        for segment in effects.segments.drain(..) {
            let _ = self.send_packet(node_id, segment);
        }
        for (app, event) in effects.events.drain(..) {
            if let TcpEvent::Accepted { conn, local_port, .. } = event {
                self.nodes[node_id.index()].tcp.promote_half_open(local_port, conn);
            }
            out.push((app, AppEvent::Tcp(event)));
        }
        let node = &mut self.nodes[node_id.index()];
        if let Some(conn) = node.tcp.conns.get_mut(&conn_id) {
            if conn.is_closed() {
                node.tcp.remove_conn(conn_id);
            } else if conn.needs_timer() {
                let generation = conn.next_timer_generation();
                let mut rto = conn.rto();
                if self.buggify.enabled() {
                    // Perturb only the scheduled deadline, never the
                    // connection's own RTO estimate: early fires look
                    // like spurious timeouts, late fires like a stalled
                    // timer wheel.
                    if self.buggify.fire(DecisionPoint::TcpRtoEarly) {
                        rto = rto.mul_f64(self.buggify.magnitude(DecisionPoint::TcpRtoEarly, 0.25, 0.95));
                    } else if self.buggify.fire(DecisionPoint::TcpRtoLate) {
                        rto = rto.mul_f64(self.buggify.magnitude(DecisionPoint::TcpRtoLate, 1.05, 3.0));
                    }
                }
                let when = self.clock + rto;
                self.queue.schedule(when, Event::TcpTimer { node: node_id, conn: conn_id, generation });
            } else {
                // Invalidate any outstanding timer.
                conn.next_timer_generation();
            }
        }
    }

    fn handle_tcp_timer(
        &mut self,
        node_id: NodeId,
        conn_id: ConnId,
        generation: u64,
        out: &mut Vec<(AppId, AppEvent)>,
    ) {
        let cfg = self.tcp_config;
        let mut effects = std::mem::take(&mut self.effects_scratch);
        let node = &mut self.nodes[node_id.index()];
        if let Some(conn) = node.tcp.conns.get_mut(&conn_id) {
            if conn.timer_generation() == generation {
                conn.on_rto(self.clock, &cfg, &mut effects);
                self.finish_conn_activity(node_id, conn_id, &mut effects, out);
            }
        }
        self.effects_scratch = effects;
    }

    fn set_node_up(&mut self, node_id: NodeId, up: bool, out: &mut Vec<(AppId, AppEvent)>) {
        let clock = self.clock;
        let node = &mut self.nodes[node_id.index()];
        if node.up == up {
            return;
        }
        node.up = up;
        if up {
            if let Some(since) = node.down_since.take() {
                node.downtime_total += clock - since;
            }
        } else {
            node.down_since = Some(clock);
        }
        if !up {
            // Power loss: connections vanish without emitting segments.
            let mut conn_ids: Vec<ConnId> = node.tcp.conns.keys().copied().collect();
            conn_ids.sort_unstable();
            for conn_id in conn_ids {
                let conn = node.tcp.conns.get(&conn_id).expect("key just collected");
                out.push((conn.app, AppEvent::Tcp(TcpEvent::Closed { conn: conn_id })));
                node.tcp.remove_conn(conn_id);
            }
        }
        // Tell every app hosted on this node about the state change.
        let mut apps: Vec<AppId> = self
            .app_nodes
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node_id)
            .map(|(i, _)| AppId::from_raw(i as u32))
            .collect();
        apps.sort_unstable();
        for app in apps {
            out.push((app, AppEvent::LinkState(up)));
        }
    }
}

/// The simulation world: network, applications and the event loop.
///
/// ```
/// use netsim::world::World;
/// use netsim::packet::Addr;
/// use netsim::link::LinkConfig;
/// use netsim::time::SimDuration;
///
/// let mut world = World::new(42);
/// let a = world.add_node(Addr::new(10, 0, 0, 1), "a");
/// let b = world.add_node(Addr::new(10, 0, 0, 2), "b");
/// world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
/// world.run_for(SimDuration::from_secs(1));
/// assert_eq!(world.now().whole_secs(), 1);
/// ```
pub struct World {
    kernel: Kernel,
    apps: Vec<Option<Box<dyn App>>>,
    /// Reusable notification buffer for the event loop: filled by the
    /// kernel during [`World::step`], drained by dispatch, kept around
    /// so steady-state stepping never allocates.
    notify_scratch: Vec<(AppId, AppEvent)>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World").field("kernel", &self.kernel).field("apps", &self.apps.len()).finish()
    }
}

impl World {
    /// Creates an empty world with the given deterministic root seed.
    pub fn new(seed: u64) -> Self {
        World { kernel: Kernel::new(seed), apps: Vec::new(), notify_scratch: Vec::new() }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.clock
    }

    /// Adds a node with the given address.
    ///
    /// # Panics
    ///
    /// Panics if the address is already in use.
    pub fn add_node(&mut self, addr: Addr, name: impl Into<String>) -> NodeId {
        let id = NodeId::from_raw(self.kernel.nodes.len() as u32);
        let previous = self.kernel.local_addrs.insert(addr, id);
        assert!(previous.is_none(), "duplicate node address {addr}");
        self.kernel.nodes.push(Node::new(id, addr, name));
        id
    }

    /// Mixes the world's root seed into a link's private loss RNG so
    /// loss patterns vary with the run seed while staying independent
    /// of every other random stream.
    fn seed_link(&mut self, id: LinkId) {
        let mix = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.as_raw() as u64 + 1);
        let seed = self.kernel.root_seed ^ mix;
        self.kernel.links[id.index()].seed_loss_rng(seed);
    }

    /// Creates a CSMA bus over the given nodes and attaches them.
    pub fn add_csma_link(&mut self, members: &[NodeId], config: LinkConfig) -> LinkId {
        let id = LinkId::from_raw(self.kernel.links.len() as u32);
        self.kernel.links.push(Link::csma(id, members, config));
        self.seed_link(id);
        for &m in members {
            self.kernel.nodes[m.index()].attach(id);
        }
        id
    }

    /// Creates an 802.11-style Wi-Fi medium over the given nodes and
    /// attaches them.
    pub fn add_wifi_link(&mut self, members: &[NodeId], config: LinkConfig) -> LinkId {
        let id = LinkId::from_raw(self.kernel.links.len() as u32);
        self.kernel.links.push(Link::wifi(id, members, config));
        self.seed_link(id);
        for &m in members {
            self.kernel.nodes[m.index()].attach(id);
        }
        id
    }

    /// Creates a point-to-point link between `a` and `b` and attaches them.
    pub fn add_p2p_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> LinkId {
        let id = LinkId::from_raw(self.kernel.links.len() as u32);
        self.kernel.links.push(Link::p2p(id, a, b, config));
        self.seed_link(id);
        self.kernel.nodes[a.index()].attach(id);
        self.kernel.nodes[b.index()].attach(id);
        id
    }

    /// Attaches an extra member to an existing CSMA bus.
    pub fn join_csma_link(&mut self, link: LinkId, node: NodeId) {
        self.kernel.links[link.index()].add_member(node);
        self.kernel.nodes[node.index()].attach(link);
    }

    /// Registers an application on a node. All traffic it originates is
    /// stamped with `provenance`. The app does not run until
    /// [`World::start_app`] schedules it.
    pub fn add_app(
        &mut self,
        node: NodeId,
        app: Box<dyn App>,
        provenance: Provenance,
    ) -> AppId {
        let id = AppId::from_raw(self.apps.len() as u32);
        self.apps.push(Some(app));
        self.kernel.app_nodes.push(node);
        self.kernel.app_provenance.push(provenance);
        id
    }

    /// Schedules an application's `on_start` at the given time.
    pub fn start_app(&mut self, app: AppId, at: SimTime) {
        self.kernel.queue.schedule(at, Event::AppStart { app });
    }

    /// Registers a packet tap observing every delivered packet.
    pub fn add_tap(&mut self, tap: Box<dyn PacketTap>) {
        self.kernel.taps.push(tap);
    }

    /// Schedules an administrative state change (churn) for a node.
    pub fn schedule_node_up(&mut self, node: NodeId, up: bool, at: SimTime) {
        self.kernel.queue.schedule(at, Event::SetNodeUp { node, up });
    }

    /// Schedules every entry of a [`FaultPlan`] relative to the current
    /// virtual time. Fault transitions become ordinary queue events, so
    /// they interleave deterministically with traffic.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let now = self.kernel.clock;
        for entry in plan.entries() {
            self.kernel.queue.schedule(now + entry.at, Event::Fault { action: entry.action });
        }
    }

    /// Schedules a single fault action at an absolute time.
    pub fn schedule_fault(&mut self, at: SimTime, action: FaultAction) {
        self.kernel.queue.schedule(at, Event::Fault { action });
    }

    /// Immediately changes a node's administrative state.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        let mut notifications = std::mem::take(&mut self.notify_scratch);
        notifications.clear();
        self.kernel.set_node_up(node, up, &mut notifications);
        self.dispatch_notifications(&mut notifications);
        self.notify_scratch = notifications;
    }

    /// Traffic counters of a node.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        self.kernel.nodes[node.index()].stats
    }

    /// A node's address.
    pub fn node_addr(&self, node: NodeId) -> Addr {
        self.kernel.nodes[node.index()].addr
    }

    /// Whether a node is administratively up.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.kernel.nodes[node.index()].up
    }

    /// Total time a node has spent administratively down so far,
    /// including any still-open down interval (crashes, reboots and
    /// churn all accrue here).
    pub fn node_downtime(&self, node: NodeId) -> SimDuration {
        self.kernel.nodes[node.index()].downtime(self.kernel.clock)
    }

    /// Traffic counters of a link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.kernel.links[link.index()].stats()
    }

    /// Whether a link is administratively up (fault plans flap this).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.kernel.links[link.index()].is_up()
    }

    /// A node's current CPU-pressure factor (1.0 = unloaded).
    pub fn cpu_pressure(&self, node: NodeId) -> f64 {
        self.kernel.nodes[node.index()].cpu_pressure
    }

    /// Packets currently queued or in flight on a link's lanes.
    pub fn link_queued_packets(&self, link: LinkId) -> usize {
        self.kernel.links[link.index()].queued_packets()
    }

    /// Number of live TCP connections on a node.
    pub fn tcp_conn_count(&self, node: NodeId) -> usize {
        self.kernel.nodes[node.index()].tcp.conns.len()
    }

    /// Number of half-open connections in a port's listener backlog,
    /// plus the count of SYNs it had to drop.
    pub fn listener_pressure(&self, node: NodeId, port: u16) -> Option<(usize, u64)> {
        self.kernel.nodes[node.index()]
            .tcp
            .listeners
            .get(&port)
            .map(|l| (l.half_open.len(), l.syn_drops))
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed
    }

    /// Attaches observability: per-phase event counters and clock-advance
    /// histograms, plus link queue-depth sampling, recorded under `scope`.
    /// Call [`World::publish_link_obs`] at export time to also mirror the
    /// per-link traffic counters into gauges.
    pub fn set_obs(&mut self, scope: Scope) {
        self.kernel.obs = Some(WorldObs::new(scope));
    }

    /// Mirrors every link's [`LinkStats`] (tx/delivered/drop counters),
    /// up/down state and residual queue depth into gauges under
    /// `<scope>.link.<id>.*`. Idempotent; call once before snapshotting
    /// the registry.
    pub fn publish_link_obs(&mut self) {
        let Some(obs) = &mut self.kernel.obs else { return };
        obs.flush();
        let obs = &*obs;
        let links_scope = obs.scope.child("link");
        for link in &self.kernel.links {
            let scope = links_scope.child(&link.id().as_raw().to_string());
            let stats = link.stats();
            scope.gauge("tx_packets").set(stats.tx_packets as i64);
            scope.gauge("tx_bytes").set(stats.tx_bytes as i64);
            scope.gauge("delivered_packets").set(stats.delivered_packets as i64);
            scope.gauge("delivered_bytes").set(stats.delivered_bytes as i64);
            scope.gauge("drops_queue_full").set(stats.drops_queue_full as i64);
            scope.gauge("drops_lost").set(stats.drops_lost as i64);
            scope.gauge("drops_unroutable").set(stats.drops_unroutable as i64);
            scope.gauge("drops_link_down").set(stats.drops_link_down as i64);
            scope.gauge("up").set(link.is_up() as i64);
            scope.gauge("queued_packets").set(link.queued_packets() as i64);
        }
        // Packet-pool health: all pure functions of simulation state.
        let pool_scope = obs.scope.child("pool");
        let pool = &self.kernel.pool;
        pool_scope.gauge("live").set(pool.live() as i64);
        pool_scope.gauge("high_water").set(pool.high_water() as i64);
        pool_scope.gauge("capacity").set(pool.capacity() as i64);
        pool_scope.gauge("inserted_total").set(pool.inserted_total() as i64);
        pool_scope.gauge("reused_total").set(pool.reused_total() as i64);
        // Buggify fire counters, only when the layer is active: the
        // gauges must not appear in baseline telemetry, which is pinned
        // byte-for-byte by the golden fixtures.
        if self.kernel.buggify.enabled() {
            let bscope = obs.scope.child("buggify");
            for (name, evals, fires) in self.kernel.buggify.counts() {
                let pscope = bscope.child(name);
                pscope.gauge("evals").set(evals as i64);
                pscope.gauge("fires").set(fires as i64);
            }
        }
    }

    /// The kernel's packet pool (slot-reuse and high-water diagnostics).
    pub fn packet_pool(&self) -> &PacketPool {
        &self.kernel.pool
    }

    /// Installs (or clears, when `cfg.enabled` is false) the buggify
    /// perturbation layer. Call before the workload starts so every
    /// decision-point stream observes the run from the beginning.
    pub fn set_buggify(&mut self, cfg: BuggifyConfig) {
        self.kernel.buggify = Buggify::new(cfg);
    }

    /// Whether buggify perturbation is active.
    pub fn buggify_enabled(&self) -> bool {
        self.kernel.buggify.enabled()
    }

    /// Per-decision-point `(name, evaluations, fires)` counters.
    /// Empty when buggify is disabled.
    pub fn buggify_counts(&self) -> Vec<(&'static str, u64, u64)> {
        self.kernel.buggify.counts()
    }

    /// Mutable access to the kernel RNG, for orchestration code.
    ///
    /// The kernel stream is shared: TCP initial sequence numbers are
    /// drawn from it interleaved with whatever callers take. Draws whose
    /// position must not shift when unrelated setup code is reordered
    /// (fault plans, churn schedules, shard partitioning) belong on a
    /// named sub-stream instead — see [`SimRng::named`].
    pub fn rng_mut(&mut self) -> &mut SimRng {
        self.kernel.rng_mut()
    }

    /// Processes a single event, if one is pending. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, event)) = self.kernel.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.kernel.clock, "time went backwards");
        // Buggify runs before any accounting: a deferred event is not
        // "processed" (it will be popped again later), so the per-phase
        // counters still partition `events_processed` exactly.
        if self.kernel.buggify.enabled() && self.kernel.buggify_perturb(time, &event) {
            return true;
        }
        let advance_ns = time.as_nanos().saturating_sub(self.kernel.clock.as_nanos());
        let phase = phase_index(&event);
        let touched_link = match &event {
            // Boundary deliveries carry the sentinel link, which indexes
            // no real link and has no queue to sample.
            Event::LinkTxComplete { link, .. } | Event::Deliver { link, .. }
                if *link != BOUNDARY_LINK =>
            {
                Some(*link)
            }
            _ => None,
        };
        if let Some(obs) = &mut self.kernel.obs {
            obs.local_events[phase] += 1;
            obs.local_advance[phase].observe(advance_ns);
        }
        self.kernel.clock = time;
        self.kernel.events_processed += 1;
        let mut notifications = std::mem::take(&mut self.notify_scratch);
        notifications.clear();
        match event {
            Event::LinkTxComplete { link, lane } => {
                self.kernel.handle_tx_complete(link, lane);
            }
            Event::Deliver { link, node, packet } => {
                self.kernel.deliver(link, node, packet, &mut notifications)
            }
            Event::TcpTimer { node, conn, generation } => {
                self.kernel.handle_tcp_timer(node, conn, generation, &mut notifications)
            }
            Event::AppTimer { app, token, timer } => {
                if !self.kernel.cancelled_timers.remove(&timer) {
                    notifications.push((app, AppEvent::Timer(token)));
                }
            }
            Event::AppStart { app } => notifications.push((app, AppEvent::Start)),
            Event::SetNodeUp { node, up } => {
                self.kernel.set_node_up(node, up, &mut notifications)
            }
            Event::Fault { action } => self.kernel.apply_fault(action, &mut notifications),
            Event::TcpConnectFailed { app, conn } => {
                notifications.push((app, AppEvent::Tcp(TcpEvent::ConnectFailed { conn })));
            }
        };
        if let (Some(obs), Some(link)) = (&mut self.kernel.obs, touched_link) {
            let depth = self.kernel.links[link.index()].queued_packets() as u64;
            obs.local_depth.observe(depth);
        }
        self.dispatch_notifications(&mut notifications);
        self.notify_scratch = notifications;
        true
    }

    fn dispatch_notifications(&mut self, notifications: &mut Vec<(AppId, AppEvent)>) {
        for (app_id, event) in notifications.drain(..) {
            let Some(slot) = self.apps.get_mut(app_id.index()) else { continue };
            let Some(mut app) = slot.take() else { continue };
            let node = self.kernel.app_nodes[app_id.index()];
            let mut ctx = Ctx { kernel: &mut self.kernel, app: app_id, node };
            match event {
                AppEvent::Start => app.on_start(&mut ctx),
                AppEvent::Tcp(e) => app.on_tcp(&mut ctx, e),
                AppEvent::Udp(d) => app.on_udp(&mut ctx, d),
                AppEvent::Timer(token) => app.on_timer(&mut ctx, token),
                AppEvent::LinkState(up) => app.on_link_state(&mut ctx, up),
            }
            self.apps[app_id.index()] = Some(app);
        }
    }

    /// Runs until the virtual clock reaches `until` (events at exactly
    /// `until` are processed). The clock is left at `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.kernel.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        if self.kernel.clock < until {
            self.kernel.clock = until;
        }
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.kernel.clock + duration;
        self.run_until(until);
    }

    /// Drains every pending event (use only for bounded workloads).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Runs every event strictly *before* `horizon`, then advances the
    /// clock to `horizon`. This is the conservative-synchronization
    /// primitive for sharded execution: events at exactly `horizon` stay
    /// queued, because a cross-shard packet arriving *at* the horizon
    /// may still be injected before they run (see [`crate::shard`]).
    pub fn run_before(&mut self, horizon: SimTime) {
        while let Some(t) = self.kernel.queue.peek_time() {
            if t >= horizon {
                break;
            }
            self.step();
        }
        if self.kernel.clock < horizon {
            self.kernel.clock = horizon;
        }
    }

    /// The timestamp of the earliest pending event, if any. Takes
    /// `&mut self` because peeking may compact the timer wheel's
    /// overflow levels to find the true minimum.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.kernel.queue.peek_time()
    }

    /// Enables (or disables) boundary egress: with it on, packets
    /// addressed to a destination with no node in this world are
    /// captured into the egress buffer instead of being flooded onto
    /// the sender's default link. Off by default, so a standalone world
    /// behaves exactly as before sharding existed.
    pub fn set_boundary_egress(&mut self, enabled: bool) {
        self.kernel.egress_enabled = enabled;
    }

    /// Moves all captured boundary packets (send-time stamped, in send
    /// order) into `out`. The per-cell send order is what the shard
    /// coordinator's `(time, cell, seq)` merge key is built from.
    pub fn drain_egress(&mut self, out: &mut Vec<(SimTime, Packet)>) {
        out.append(&mut self.kernel.egress);
    }

    /// Delivers a packet that originated outside this world to a local
    /// node at virtual time `at` (which must not precede the clock).
    /// The delivery is an ordinary [`Event::Deliver`] carrying the
    /// sentinel [`BOUNDARY_LINK`], so taps, node accounting, buggify
    /// perturbation, and transport demux all treat it exactly like a
    /// packet that crossed a local link.
    pub fn inject_packet(&mut self, at: SimTime, node: NodeId, packet: Packet) {
        debug_assert!(
            at >= self.kernel.clock,
            "cross-boundary injection at {at} precedes the clock {}",
            self.kernel.clock
        );
        let id = self.kernel.pool.insert(packet);
        self.kernel.queue.schedule(at, Event::Deliver { link: BOUNDARY_LINK, node, packet: id });
    }
}

/// The sentinel link id stamped on cross-boundary deliveries injected
/// with [`World::inject_packet`]. It indexes no real link, so the event
/// loop skips link-queue sampling for it.
pub const BOUNDARY_LINK: LinkId = LinkId::from_raw(u32::MAX);

/// The capability handle applications use inside callbacks.
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    app: AppId,
    node: NodeId,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("app", &self.app).field("node", &self.node).finish()
    }
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.clock
    }

    /// This application's id.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// The hosting node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The hosting node's address.
    pub fn addr(&self) -> Addr {
        self.kernel.nodes[self.node.index()].addr
    }

    /// Whether the hosting node is administratively up.
    pub fn is_up(&self) -> bool {
        self.kernel.nodes[self.node.index()].up
    }

    /// The kernel RNG (deterministic).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.kernel.rng
    }

    fn provenance(&self) -> Provenance {
        self.kernel.app_provenance[self.app.index()]
    }

    /// Starts listening on a TCP port. Returns `false` if the port is
    /// already bound.
    pub fn tcp_listen(&mut self, port: u16, backlog: usize) -> bool {
        let node = &mut self.kernel.nodes[self.node.index()];
        if node.tcp.listeners.contains_key(&port) {
            return false;
        }
        node.tcp.listeners.insert(port, Listener::new(self.app, backlog));
        true
    }

    /// Starts listening on an unused high port and returns it (FTP
    /// passive-mode data channels use this).
    ///
    /// # Panics
    ///
    /// Panics if no free port can be found.
    pub fn tcp_listen_ephemeral(&mut self, backlog: usize) -> u16 {
        let node = &mut self.kernel.nodes[self.node.index()];
        for candidate in 20_000..30_000u16 {
            if let std::collections::hash_map::Entry::Vacant(e) = node.tcp.listeners.entry(candidate) {
                e.insert(Listener::new(self.app, backlog));
                return candidate;
            }
        }
        panic!("no free ephemeral listening port");
    }

    /// Stops listening on a port previously bound with
    /// [`Ctx::tcp_listen`] or [`Ctx::tcp_listen_ephemeral`].
    pub fn tcp_unlisten(&mut self, port: u16) {
        self.kernel.nodes[self.node.index()].tcp.listeners.remove(&port);
    }

    /// Opens a TCP connection to `dst:port`. Completion is reported via
    /// [`TcpEvent::Connected`] or [`TcpEvent::ConnectFailed`].
    pub fn tcp_connect(&mut self, dst: Addr, port: u16) -> ConnId {
        let provenance = self.provenance();
        let conn_id = self.kernel.alloc_conn_id();
        let iss = self.kernel.rng.next_u64() as u32;
        let cfg = self.kernel.tcp_config;
        let mut effects = std::mem::take(&mut self.kernel.effects_scratch);
        let node = &mut self.kernel.nodes[self.node.index()];
        let Some(local_port) = node.tcp.alloc_ephemeral((dst, port)) else {
            // Ephemeral ports exhausted: fail the open asynchronously so
            // the caller sees the same `ConnectFailed` path as any other
            // failed connect (socket calls never notify re-entrantly).
            self.kernel.effects_scratch = effects;
            let now = self.kernel.clock;
            self.kernel.queue.schedule(now, Event::TcpConnectFailed { app: self.app, conn: conn_id });
            return conn_id;
        };
        let local = (node.addr, local_port);
        let conn =
            TcpConn::open_active(conn_id, self.app, local, (dst, port), provenance, iss, &cfg, &mut effects);
        node.tcp.conns.insert(conn_id, conn);
        node.tcp.by_key.insert((local_port, dst, port), conn_id);
        self.finish_quiet(conn_id, &mut effects, "open_active");
        self.kernel.effects_scratch = effects;
        conn_id
    }

    /// Runs [`Kernel::finish_conn_activity`] through the kernel's
    /// reusable scratch buffer, asserting the call produced no app
    /// events (socket calls made *by* an app never notify one).
    fn finish_quiet(&mut self, conn: ConnId, effects: &mut TcpEffects, what: &str) {
        let mut scratch = std::mem::take(&mut self.kernel.ctx_scratch);
        scratch.clear();
        self.kernel.finish_conn_activity(self.node, conn, effects, &mut scratch);
        debug_assert!(scratch.is_empty(), "{what} produced app events");
        scratch.clear();
        self.kernel.ctx_scratch = scratch;
    }

    /// Queues bytes on an open connection.
    pub fn tcp_send(&mut self, conn: ConnId, data: &[u8]) {
        let cfg = self.kernel.tcp_config;
        let now = self.kernel.clock;
        let mut effects = std::mem::take(&mut self.kernel.effects_scratch);
        let node = &mut self.kernel.nodes[self.node.index()];
        if let Some(c) = node.tcp.conns.get_mut(&conn) {
            c.send(data, now, &cfg, &mut effects);
        }
        self.finish_quiet(conn, &mut effects, "send");
        self.kernel.effects_scratch = effects;
    }

    /// Queues an owned buffer on an open connection without copying it:
    /// the connection slices the chunk (refcount bumps) as it segments
    /// it onto the wire. Use for large or repeated payloads a sender
    /// already holds as [`Bytes`] (streaming chunks, cached bodies).
    pub fn tcp_send_bytes(&mut self, conn: ConnId, data: Bytes) {
        let cfg = self.kernel.tcp_config;
        let now = self.kernel.clock;
        let mut effects = std::mem::take(&mut self.kernel.effects_scratch);
        let node = &mut self.kernel.nodes[self.node.index()];
        if let Some(c) = node.tcp.conns.get_mut(&conn) {
            c.send_bytes(data, now, &cfg, &mut effects);
        }
        self.finish_quiet(conn, &mut effects, "send");
        self.kernel.effects_scratch = effects;
    }

    /// Gracefully closes a connection (FIN after queued data drains).
    pub fn tcp_close(&mut self, conn: ConnId) {
        let cfg = self.kernel.tcp_config;
        let now = self.kernel.clock;
        let mut effects = std::mem::take(&mut self.kernel.effects_scratch);
        let node = &mut self.kernel.nodes[self.node.index()];
        if let Some(c) = node.tcp.conns.get_mut(&conn) {
            c.close(now, &cfg, &mut effects);
        }
        self.finish_swallowed(conn, &mut effects);
        self.kernel.effects_scratch = effects;
    }

    /// Like [`Ctx::finish_quiet`] but discards any produced events (the
    /// app initiated the transition, so its own notifications are
    /// swallowed).
    fn finish_swallowed(&mut self, conn: ConnId, effects: &mut TcpEffects) {
        let mut scratch = std::mem::take(&mut self.kernel.ctx_scratch);
        scratch.clear();
        self.kernel.finish_conn_activity(self.node, conn, effects, &mut scratch);
        scratch.clear();
        self.kernel.ctx_scratch = scratch;
    }

    /// Aborts a connection with a RST.
    pub fn tcp_abort(&mut self, conn: ConnId) {
        let cfg = self.kernel.tcp_config;
        let mut effects = std::mem::take(&mut self.kernel.effects_scratch);
        let node = &mut self.kernel.nodes[self.node.index()];
        if let Some(c) = node.tcp.conns.get_mut(&conn) {
            c.abort(&cfg, &mut effects);
        }
        // The app initiated the abort; swallow its own Closed event.
        self.finish_swallowed(conn, &mut effects);
        self.kernel.effects_scratch = effects;
    }

    /// Binds a UDP port. Returns `false` if the port is taken.
    pub fn udp_bind(&mut self, port: u16) -> bool {
        self.kernel.nodes[self.node.index()].udp.bind(port, self.app)
    }

    /// Binds an ephemeral UDP port and returns it.
    pub fn udp_bind_ephemeral(&mut self) -> u16 {
        self.kernel.nodes[self.node.index()].udp.bind_ephemeral(self.app)
    }

    /// Sends a UDP datagram from `src_port` to `dst:dst_port`.
    pub fn udp_send(&mut self, src_port: u16, dst: Addr, dst_port: u16, payload: Bytes) {
        let provenance = self.provenance();
        let src = self.addr();
        let packet = Packet::udp(src, dst, src_port, dst_port, payload).with_provenance(provenance);
        let _ = self.kernel.send_packet(self.node, packet);
    }

    /// Sends a raw, fully formed packet (flood generators use this to
    /// spoof sources and skip connection state). The packet is stamped
    /// with the app's provenance.
    pub fn send_raw(&mut self, packet: Packet) -> Result<(), DropReason> {
        let provenance = self.provenance();
        self.kernel.send_packet(self.node, packet.with_provenance(provenance))
    }

    /// Schedules a timer; `token` is handed back to
    /// [`App::on_timer`] when it fires.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let timer = TimerId::from_raw(self.kernel.next_timer_id);
        self.kernel.next_timer_id += 1;
        let when = self.kernel.clock + delay;
        self.kernel.queue.schedule(when, Event::AppTimer { app: self.app, token, timer });
        timer
    }

    /// Cancels a timer scheduled with [`Ctx::set_timer`].
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.kernel.cancelled_timers.insert(timer);
    }

    /// Payload bytes received so far on a connection (diagnostics).
    pub fn conn_bytes_received(&self, conn: ConnId) -> Option<u64> {
        self.kernel.nodes[self.node.index()].tcp.conns.get(&conn).map(|c| c.bytes_received())
    }

    /// Segments retransmitted so far on a connection (diagnostics).
    pub fn conn_retransmitted(&self, conn: ConnId) -> Option<u64> {
        self.kernel.nodes[self.node.index()]
            .tcp
            .conns
            .get(&conn)
            .map(|c| c.retransmitted_segments())
    }

    /// The hosting node's CPU-pressure factor (1.0 = unloaded). Apps
    /// that model compute cost — the realtime IDS — multiply their
    /// nominal per-window cost by this, so injected pressure stretches
    /// metered compute deterministically.
    pub fn cpu_pressure(&self) -> f64 {
        self.kernel.nodes[self.node.index()].cpu_pressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct EchoServerState {
        accepted: usize,
        bytes: Vec<u8>,
    }

    struct EchoServer {
        port: u16,
        state: Rc<RefCell<EchoServerState>>,
    }

    impl App for EchoServer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            assert!(ctx.tcp_listen(self.port, 16));
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
            match event {
                TcpEvent::Accepted { .. } => self.state.borrow_mut().accepted += 1,
                TcpEvent::Data { conn, data } => {
                    self.state.borrow_mut().bytes.extend_from_slice(&data);
                    ctx.tcp_send(conn, &data); // echo
                }
                _ => {}
            }
        }
    }

    #[derive(Default)]
    struct ClientState {
        connected: bool,
        echoed: Vec<u8>,
        closed: bool,
    }

    struct Client {
        server: Addr,
        port: u16,
        message: Vec<u8>,
        state: Rc<RefCell<ClientState>>,
    }

    impl App for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_connect(self.server, self.port);
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
            match event {
                TcpEvent::Connected { conn } => {
                    self.state.borrow_mut().connected = true;
                    ctx.tcp_send(conn, &self.message);
                }
                TcpEvent::Data { conn, data } => {
                    let mut st = self.state.borrow_mut();
                    st.echoed.extend_from_slice(&data);
                    if st.echoed.len() >= self.message.len() {
                        drop(st);
                        ctx.tcp_close(conn);
                    }
                }
                TcpEvent::Closed { .. } => self.state.borrow_mut().closed = true,
                _ => {}
            }
        }
    }

    fn echo_world(
        message: Vec<u8>,
        loss: f64,
    ) -> (World, Rc<RefCell<EchoServerState>>, Rc<RefCell<ClientState>>) {
        let mut world = World::new(7);
        let server_node = world.add_node(Addr::new(10, 0, 0, 1), "server");
        let client_node = world.add_node(Addr::new(10, 0, 0, 2), "client");
        let cfg = LinkConfig { loss_rate: loss, ..LinkConfig::lan_100mbps() };
        world.add_csma_link(&[server_node, client_node], cfg);

        let server_state = Rc::new(RefCell::new(EchoServerState::default()));
        let client_state = Rc::new(RefCell::new(ClientState::default()));
        let server = world.add_app(
            server_node,
            Box::new(EchoServer { port: 80, state: Rc::clone(&server_state) }),
            Provenance::Benign,
        );
        let client = world.add_app(
            client_node,
            Box::new(Client {
                server: Addr::new(10, 0, 0, 1),
                port: 80,
                message,
                state: Rc::clone(&client_state),
            }),
            Provenance::Benign,
        );
        world.start_app(server, SimTime::ZERO);
        world.start_app(client, SimTime::from_nanos(1));
        (world, server_state, client_state)
    }

    #[test]
    fn echo_roundtrip_over_clean_link() {
        let message = vec![7u8; 10_000];
        let (mut world, server_state, client_state) = echo_world(message.clone(), 0.0);
        world.run_for(SimDuration::from_secs(5));
        assert!(client_state.borrow().connected);
        assert_eq!(server_state.borrow().accepted, 1);
        assert_eq!(server_state.borrow().bytes, message);
        assert_eq!(client_state.borrow().echoed, message);
    }

    #[test]
    fn echo_roundtrip_survives_lossy_link() {
        let message = vec![9u8; 20_000];
        let (mut world, _server_state, client_state) = echo_world(message.clone(), 0.05);
        world.run_for(SimDuration::from_secs(30));
        assert_eq!(client_state.borrow().echoed, message, "retransmissions recover all bytes");
    }

    #[test]
    fn connect_to_missing_port_fails_with_rst() {
        struct Probe {
            failed: Rc<RefCell<bool>>,
        }
        impl App for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_connect(Addr::new(10, 0, 0, 1), 9999);
            }
            fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, event: TcpEvent) {
                if matches!(event, TcpEvent::ConnectFailed { .. }) {
                    *self.failed.borrow_mut() = true;
                }
            }
        }
        let mut world = World::new(1);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "a");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "b");
        world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
        let failed = Rc::new(RefCell::new(false));
        let probe = world.add_app(b, Box::new(Probe { failed: Rc::clone(&failed) }), Provenance::Benign);
        world.start_app(probe, SimTime::ZERO);
        world.run_for(SimDuration::from_secs(2));
        assert!(*failed.borrow());
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerApp {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl App for TimerApp {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let cancelled = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.cancel_timer(cancelled);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.borrow_mut().push(token);
            }
        }
        let mut world = World::new(1);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "a");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "b");
        world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
        let fired = Rc::new(RefCell::new(Vec::new()));
        let app = world.add_app(a, Box::new(TimerApp { fired: Rc::clone(&fired) }), Provenance::Benign);
        world.start_app(app, SimTime::ZERO);
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(*fired.borrow(), vec![1, 3]);
    }

    #[test]
    fn down_node_drops_traffic_and_kills_conns() {
        // Bring the server down mid-transfer: its connections disappear
        // and the client eventually gives up via RTO.
        let message = vec![5u8; 200_000];
        let (mut world, server_state, client_state) = echo_world(message, 0.0);
        world.run_for(SimDuration::from_millis(5));
        assert!(client_state.borrow().connected);
        let server_node = NodeId::from_raw(0);
        world.set_node_up(server_node, false);
        let bytes_at_cut = server_state.borrow().bytes.len();
        world.run_for(SimDuration::from_secs(120));
        // No further bytes arrive and the client's connection dies.
        assert_eq!(server_state.borrow().bytes.len(), bytes_at_cut);
        assert!(client_state.borrow().closed);
        assert!(world.node_stats(server_node).dropped_down > 0);
    }

    #[test]
    fn node_churn_notifies_apps() {
        struct Watcher {
            seen: Rc<RefCell<Vec<bool>>>,
        }
        impl App for Watcher {
            fn on_link_state(&mut self, _ctx: &mut Ctx<'_>, up: bool) {
                self.seen.borrow_mut().push(up);
            }
        }
        let mut world = World::new(1);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "a");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "b");
        world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
        let seen = Rc::new(RefCell::new(Vec::new()));
        let app = world.add_app(a, Box::new(Watcher { seen: Rc::clone(&seen) }), Provenance::Benign);
        world.start_app(app, SimTime::ZERO);
        world.schedule_node_up(a, false, SimTime::from_millis(100));
        world.schedule_node_up(a, true, SimTime::from_millis(200));
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(*seen.borrow(), vec![false, true]);
        assert!(world.node_is_up(a));
    }

    #[test]
    fn deterministic_event_counts_across_runs() {
        let run = || {
            let message = vec![3u8; 5000];
            let (mut world, _s, _c) = echo_world(message, 0.02);
            world.run_for(SimDuration::from_secs(10));
            world.events_processed()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn obs_counts_every_event_and_is_reproducible() {
        use obs::Registry;

        let run = || {
            let message = vec![8u8; 50_000];
            let (mut world, _s, _c) = echo_world(message, 0.02);
            let registry = Registry::new();
            world.set_obs(registry.scope("netsim"));
            world.run_for(SimDuration::from_secs(10));
            world.publish_link_obs();
            (world.events_processed(), registry.snapshot())
        };
        let (events, telemetry) = run();

        // Per-phase counters partition the total event count.
        let phase_total: u64 = telemetry
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("netsim.phase.") && name.ends_with(".events"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(phase_total, events);

        // Link traffic shows up in both the sampled histogram and the
        // published gauges.
        assert!(telemetry.histogram("netsim.link.queue_depth").expect("sampled").count > 0);
        assert!(telemetry.gauge("netsim.link.0.delivered_packets").expect("published") > 0);
        assert_eq!(telemetry.gauge("netsim.link.0.up"), Some(1));

        // The whole artifact is byte-identical across same-seed runs.
        let (_, telemetry2) = run();
        assert_eq!(telemetry.render_text(), telemetry2.render_text());
    }

    #[test]
    fn fault_plan_flap_blocks_then_restores_traffic() {
        use crate::faults::FaultPlan;

        let message = vec![4u8; 500_000];
        let (mut world, _server_state, client_state) = echo_world(message.clone(), 0.0);
        let bridge = LinkId::from_raw(0);
        let mut plan = FaultPlan::new();
        plan.link_flap(bridge, SimDuration::from_millis(5), SimDuration::from_secs(2));
        world.apply_fault_plan(&plan);

        // Mid-flap: the link is down and the transfer is stalled.
        world.run_for(SimDuration::from_secs(1));
        assert!(!world.link_is_up(bridge));
        let echoed_mid_flap = client_state.borrow().echoed.len();
        assert!(echoed_mid_flap < message.len());
        assert!(world.link_stats(bridge).drops_link_down > 0);

        // After restoration, RTO-driven retransmission recovers the
        // whole transfer.
        world.run_for(SimDuration::from_secs(120));
        assert!(world.link_is_up(bridge));
        assert_eq!(client_state.borrow().echoed, message);
    }

    #[test]
    fn fault_plan_runs_are_byte_reproducible() {
        use crate::faults::FaultPlan;

        let run = || {
            let message = vec![6u8; 100_000];
            let (mut world, _s, client_state) = echo_world(message, 0.01);
            let bridge = LinkId::from_raw(0);
            let mut plan = FaultPlan::new();
            let mut plan_rng = SimRng::seed_from(99);
            plan.link_flap_random(
                bridge,
                SimDuration::from_millis(10),
                SimDuration::from_secs(20),
                4.0,
                1.0,
                &mut plan_rng,
            );
            plan.loss_ramp(bridge, SimDuration::from_secs(2), SimDuration::from_secs(5), 0.2, 4);
            plan.throttle(bridge, SimDuration::from_secs(8), SimDuration::from_secs(3), 0.2);
            world.apply_fault_plan(&plan);
            world.run_for(SimDuration::from_secs(60));
            let echoed = client_state.borrow().echoed.len();
            (world.events_processed(), world.link_stats(bridge), echoed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn node_reboot_fault_notifies_apps_and_accrues_downtime() {
        use crate::faults::FaultPlan;

        struct Watcher {
            seen: Rc<RefCell<Vec<bool>>>,
        }
        impl App for Watcher {
            fn on_link_state(&mut self, _ctx: &mut Ctx<'_>, up: bool) {
                self.seen.borrow_mut().push(up);
            }
        }
        let mut world = World::new(5);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "a");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "b");
        world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
        let seen = Rc::new(RefCell::new(Vec::new()));
        let app = world.add_app(a, Box::new(Watcher { seen: Rc::clone(&seen) }), Provenance::Benign);
        world.start_app(app, SimTime::ZERO);

        let mut plan = FaultPlan::new();
        plan.node_reboot(a, SimDuration::from_secs(2), SimDuration::from_secs(3));
        plan.node_crash(a, SimDuration::from_secs(10));
        world.apply_fault_plan(&plan);

        world.run_for(SimDuration::from_secs(6));
        // The reboot produced a clean down → up pair.
        assert_eq!(*seen.borrow(), vec![false, true]);
        assert!(world.node_is_up(a));
        assert_eq!(world.node_downtime(a), SimDuration::from_secs(3));

        // The crash leaves the node down; its open interval accrues.
        world.run_for(SimDuration::from_secs(6));
        assert!(!world.node_is_up(a));
        assert_eq!(*seen.borrow(), vec![false, true, false]);
        assert_eq!(world.node_downtime(a), SimDuration::from_secs(5));
        // The untouched node accrued nothing.
        assert_eq!(world.node_downtime(b), SimDuration::ZERO);
    }

    #[test]
    fn cpu_pressure_reaches_apps_and_relaxes() {
        use crate::faults::FaultPlan;

        struct PressureProbe {
            seen: Rc<RefCell<Vec<f64>>>,
        }
        impl App for PressureProbe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                self.seen.borrow_mut().push(ctx.cpu_pressure());
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
        }
        let mut world = World::new(3);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "a");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "b");
        world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
        let seen = Rc::new(RefCell::new(Vec::new()));
        let app =
            world.add_app(a, Box::new(PressureProbe { seen: Rc::clone(&seen) }), Provenance::Benign);
        world.start_app(app, SimTime::ZERO);
        let mut plan = FaultPlan::new();
        plan.cpu_pressure(a, SimDuration::from_millis(1500), SimDuration::from_secs(2), 50.0);
        world.apply_fault_plan(&plan);
        world.run_for(SimDuration::from_millis(4500));
        assert_eq!(*seen.borrow(), vec![1.0, 50.0, 50.0, 1.0]);
        assert_eq!(world.cpu_pressure(a), 1.0);
    }

    #[test]
    fn ephemeral_port_exhaustion_reports_connect_failed() {
        // Regression: exhausting the ephemeral range used to panic the
        // kernel. Now the open fails asynchronously via ConnectFailed.
        struct Exhauster {
            failures: Rc<RefCell<usize>>,
        }
        impl App for Exhauster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // One more connect than the range (32768..49152) holds.
                for _ in 0..16_385u32 {
                    ctx.tcp_connect(Addr::new(10, 0, 0, 1), 80);
                }
            }
            fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, event: TcpEvent) {
                if matches!(event, TcpEvent::ConnectFailed { .. }) {
                    *self.failures.borrow_mut() += 1;
                }
            }
        }
        let mut world = World::new(2);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "server");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "client");
        world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
        let failures = Rc::new(RefCell::new(0usize));
        let app =
            world.add_app(b, Box::new(Exhauster { failures: Rc::clone(&failures) }), Provenance::Benign);
        world.start_app(app, SimTime::ZERO);
        // Short horizon: the exhaustion failure is scheduled at `now`,
        // long before any SYN retransmission timer would fire.
        world.run_for(SimDuration::from_millis(1));
        assert!(*failures.borrow() >= 1, "exhausted connect must fail, not panic");
    }

    #[test]
    fn buggify_enabled_echo_still_delivers_every_byte() {
        // Chaos may delay, reorder, duplicate and crash, but TCP still
        // delivers the exact byte stream.
        let message = vec![11u8; 30_000];
        let (mut world, _server_state, client_state) = echo_world(message.clone(), 0.0);
        let mut cfg = BuggifyConfig::swarm(424242);
        // Keep lifecycle blips out of this test: a crash on the server
        // kills the echo connection outright, which is exercised (and
        // asserted on) by the swarm harness instead.
        cfg.intensity = 1.0;
        world.set_buggify(cfg);
        world.run_for(SimDuration::from_secs(240));
        let echoed = client_state.borrow().echoed.clone();
        if echoed != message {
            // A lifecycle blip may legitimately kill the transfer;
            // in that case the connection must at least have closed
            // cleanly rather than wedged.
            assert!(client_state.borrow().closed, "transfer neither completed nor closed");
        }
        assert!(world.buggify_counts().iter().any(|&(_, evals, _)| evals > 0));
    }

    #[test]
    fn buggify_runs_are_byte_reproducible_per_swarm_seed() {
        let run = |swarm_seed: u64| {
            let message = vec![13u8; 40_000];
            let (mut world, _s, client_state) = echo_world(message, 0.01);
            world.set_buggify(BuggifyConfig::swarm(swarm_seed));
            world.run_for(SimDuration::from_secs(60));
            let echoed = client_state.borrow().echoed.len();
            (world.events_processed(), world.buggify_counts(), echoed)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1, "different swarm seeds must perturb differently");
    }
}
