//! Seeded randomness for deterministic simulations.
//!
//! All stochastic behaviour in the testbed (workload inter-arrivals, scan
//! targets, link loss, model initialisation) flows through [`SimRng`], a
//! thin wrapper over a seeded ChaCha-based [`rand::rngs::StdRng`] with the
//! distribution helpers the traffic and botnet models need. Creating every
//! component's RNG by [`SimRng::fork`] from one root seed makes whole runs
//! reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator for simulation components.
///
/// ```
/// use netsim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator.
    ///
    /// Forked generators let each component own private randomness while
    /// the whole simulation stays a pure function of the root seed.
    ///
    /// Note that a fork consumes one draw from the parent, so the child
    /// stream depends on *how many* draws and forks preceded it. For
    /// streams that must survive reordering of unrelated setup code
    /// (e.g. shard partitioning changing per-component install order),
    /// prefer [`SimRng::named`].
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.next_u64())
    }

    /// Seeds an independent stream keyed by `(root_seed, name)`.
    ///
    /// Uses the same derivation as [`crate::buggify::stream_seed`], so a
    /// named stream is a pure function of the root seed and the label —
    /// unlike [`SimRng::fork`], it cannot shift when unrelated draws are
    /// added, removed, or reordered around it. Orchestration code (fault
    /// plans, churn schedules, deploy-time draws) should use this so
    /// shard partitioning cannot reorder its randomness.
    pub fn named(root_seed: u64, name: &str) -> SimRng {
        SimRng::seed_from(crate::buggify::stream_seed(root_seed, name))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.inner.random_range(0..n)
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.inner.random_range(lo..=hi)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// An exponential variate with the given mean (inter-arrival times of
    /// a Poisson process).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid exponential mean: {mean}");
        // Inverse-CDF sampling; 1 - u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// A Poisson-distributed count with the given mean (Knuth's method for
    /// small means, normal approximation above 30).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0 && mean.is_finite(), "invalid poisson mean: {mean}");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let x = mean + mean.sqrt() * self.standard_normal();
            return x.max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// A standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev: {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// A bounded Pareto variate (heavy-tailed file sizes / flow lengths).
    ///
    /// # Panics
    ///
    /// Panics if the shape is not positive or `lo >= hi`.
    pub fn bounded_pareto(&mut self, shape: f64, lo: f64, hi: f64) -> f64 {
        BoundedPareto::new(shape, lo, hi).sample(self)
    }

    /// A Zipf-distributed rank in `[0, n)` with exponent `s` (popularity
    /// skew of requested web objects).
    ///
    /// Uses inverse-CDF over precomputed weights for small `n`; callers
    /// that need large catalogues should precompute a [`ZipfTable`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        ZipfTable::new(n, s).sample(self)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// A bounded Pareto sampler with the bound powers precomputed.
///
/// [`SimRng::bounded_pareto`] pays two `powf` calls per draw just to
/// re-derive `lo^shape` and `hi^shape`; batch users (catalogue
/// generation draws hundreds of sizes with fixed bounds) build one of
/// these instead. Per-sample arithmetic is identical expression for
/// expression, so the sampler produces bit-for-bit the same variates as
/// the convenience method.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    la: f64,
    ha: f64,
    neg_inv_shape: f64,
}

impl BoundedPareto {
    /// Precomputes the sampler for `shape` over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not positive or `lo >= hi`.
    pub fn new(shape: f64, lo: f64, hi: f64) -> Self {
        assert!(shape > 0.0, "invalid pareto shape: {shape}");
        assert!(lo > 0.0 && lo < hi, "invalid pareto bounds [{lo}, {hi}]");
        BoundedPareto { la: lo.powf(shape), ha: hi.powf(shape), neg_inv_shape: -1.0 / shape }
    }

    /// Draws one variate (consumes exactly one uniform from `rng`).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform();
        // Inverse CDF of the truncated Pareto distribution.
        (-(u * self.ha - u * self.la - self.ha) / (self.ha * self.la)).powf(self.neg_inv_shape)
    }
}

/// Precomputed cumulative weights for repeated Zipf sampling.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        if s == 1.0 {
            // `powf(x, 1.0)` returns `x` exactly (IEEE 754 pow special
            // case), so the classic-Zipf fast path is bit-identical to
            // the general one while skipping a `powf` per rank.
            for rank in 1..=n {
                total += 1.0 / rank as f64;
                cdf.push(total);
            }
        } else {
            for rank in 1..=n {
                total += 1.0 / (rank as f64).powf(s);
                cdf.push(total);
            }
        }
        for w in &mut cdf {
            *w /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks in the table.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self.cdf.binary_search_by(|w| w.partial_cmp(&u).expect("non-NaN cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_independent_deterministic_children() {
        let mut root1 = SimRng::seed_from(1);
        let mut root2 = SimRng::seed_from(1);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Child diverges from parent stream.
        assert_ne!(root1.next_u64(), c1.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SimRng::seed_from(4);
        for target in [0.5, 5.0, 60.0] {
            let n = 5_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(target)).sum();
            let mean = sum as f64 / n as f64;
            assert!((mean - target).abs() < target.max(1.0) * 0.1, "mean {mean} target {target}");
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1_000 {
            let x = rng.bounded_pareto(1.2, 100.0, 1_000_000.0);
            assert!((100.0..=1_000_000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let mut rng = SimRng::seed_from(8);
        let table = ZipfTable::new(50, 1.0);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[49]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(10);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
