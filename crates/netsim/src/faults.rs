//! Schedule-driven fault injection: link flaps, loss/latency ramps,
//! bandwidth throttling and CPU-pressure, all byte-reproducible per seed.
//!
//! A [`FaultPlan`] is a declarative list of `(offset, action)` pairs.
//! [`World::apply_fault_plan`](crate::world::World::apply_fault_plan)
//! turns each entry into an ordinary [`Event`](crate::event::Event) on
//! the simulation queue, so faults interleave with traffic in the same
//! total event order as everything else — two runs with the same seed
//! and the same plan replay identically, byte for byte.
//!
//! Randomised plan shapes (flap intervals, jitter magnitudes) draw from
//! a caller-supplied [`SimRng`] *at plan-construction time*; once built,
//! a plan is pure data. Nothing about fault execution consumes the
//! world RNG, so attaching a plan never perturbs the random streams of
//! workloads, scanners or unrelated links.

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// One instantaneous fault transition applied to the network.
///
/// Actions are plain data (serialisable, no closures) so plans can be
/// stored, diffed and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Administratively raise or cut a link (a "flap" is a down/up pair).
    SetLinkUp {
        /// The affected link.
        link: LinkId,
        /// `true` restores the link, `false` cuts it.
        up: bool,
    },
    /// Override a link's channel-loss probability (`None` restores the
    /// configured `loss_rate`).
    SetLossOverride {
        /// The affected link.
        link: LinkId,
        /// Replacement loss probability, clamped to `[0, 1]`.
        rate: Option<f64>,
    },
    /// Scale a link's effective bandwidth (`0 < scale <= 1` throttles;
    /// `1.0` restores nominal speed).
    SetBandwidthScale {
        /// The affected link.
        link: LinkId,
        /// Multiplier applied to the configured bandwidth.
        scale: f64,
    },
    /// Add extra one-way propagation delay on top of the configured
    /// value (latency jitter ramps step this up and back down).
    SetExtraDelay {
        /// The affected link.
        link: LinkId,
        /// Additional delay; [`SimDuration::ZERO`] restores nominal.
        delay: SimDuration,
    },
    /// Set a node's CPU-pressure factor: modelled compute on the node
    /// costs `factor ×` its nominal time (`1.0` is unloaded). The
    /// realtime IDS uses this to decide deterministically whether a
    /// window's detection overran its interval.
    SetCpuPressure {
        /// The affected node.
        node: NodeId,
        /// Compute-time multiplier, clamped to be non-negative.
        factor: f64,
    },
    /// Hard-crash a node: its NIC detaches, every TCP connection it
    /// held vanishes without emitting a segment, and apps on the node
    /// are told the link went down. The node stays down until a
    /// [`FaultAction::NodeReboot`] (or an explicit `set_node_up`)
    /// restores it.
    NodeCrash {
        /// The node that loses power.
        node: NodeId,
    },
    /// Crash a node and bring it back after `boot_delay`: the crash
    /// half is identical to [`FaultAction::NodeCrash`]; the restore is
    /// an ordinary node-up event scheduled `boot_delay` later, so apps
    /// see a clean down → up transition and re-initialise themselves
    /// (memory-resident state such as a Mirai infection is lost).
    NodeReboot {
        /// The node that reboots.
        node: NodeId,
        /// Time the node spends booting before it rejoins the network.
        boot_delay: SimDuration,
    },
}

/// A fault action scheduled at an offset from plan attachment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEntry {
    /// When the action fires, relative to the time the plan is applied.
    pub at: SimDuration,
    /// What happens.
    pub action: FaultAction,
}

/// A declarative, replayable schedule of fault transitions.
///
/// ```
/// use netsim::faults::FaultPlan;
/// use netsim::ids::LinkId;
/// use netsim::time::SimDuration;
///
/// let mut plan = FaultPlan::new();
/// plan.link_flap(
///     LinkId::from_raw(0),
///     SimDuration::from_secs(10),
///     SimDuration::from_secs(3),
/// );
/// assert_eq!(plan.len(), 2); // one down, one up
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw action at `at` (offset from plan attachment).
    pub fn push(&mut self, at: SimDuration, action: FaultAction) -> &mut Self {
        self.entries.push(FaultEntry { at, action });
        self
    }

    /// The scheduled entries, in insertion order.
    ///
    /// Insertion order is preserved deliberately: entries at equal
    /// offsets fire in the order they were pushed (the event queue
    /// breaks timestamp ties by scheduling sequence).
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no actions are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends every entry of `other`, keeping offsets unchanged.
    pub fn merge(&mut self, other: &FaultPlan) -> &mut Self {
        self.entries.extend_from_slice(&other.entries);
        self
    }

    /// Cuts `link` at `start` and restores it `down_for` later.
    pub fn link_flap(
        &mut self,
        link: LinkId,
        start: SimDuration,
        down_for: SimDuration,
    ) -> &mut Self {
        self.push(start, FaultAction::SetLinkUp { link, up: false });
        self.push(start + down_for, FaultAction::SetLinkUp { link, up: true })
    }

    /// Randomised flapping: starting at `start`, the link alternates
    /// exponentially distributed up and down intervals (means
    /// `mean_up_secs` / `mean_down_secs`) until `horizon`, where it is
    /// always restored. The draws come from `rng` now — the finished
    /// plan is deterministic data.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive and finite.
    pub fn link_flap_random(
        &mut self,
        link: LinkId,
        start: SimDuration,
        horizon: SimDuration,
        mean_up_secs: f64,
        mean_down_secs: f64,
        rng: &mut SimRng,
    ) -> &mut Self {
        let mut at = start;
        let mut up = true;
        while at < horizon {
            let interval = if up {
                rng.exponential(mean_up_secs)
            } else {
                rng.exponential(mean_down_secs)
            };
            at += SimDuration::from_secs_f64(interval);
            if at >= horizon {
                break;
            }
            up = !up;
            self.push(at, FaultAction::SetLinkUp { link, up });
        }
        if !up {
            self.push(horizon, FaultAction::SetLinkUp { link, up: true });
        }
        self
    }

    /// A triangular loss ramp: loss on `link` steps from near zero up to
    /// `peak` at the midpoint of `[start, start + duration]` and back
    /// down across `steps` equal segments, then the override clears.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn loss_ramp(
        &mut self,
        link: LinkId,
        start: SimDuration,
        duration: SimDuration,
        peak: f64,
        steps: usize,
    ) -> &mut Self {
        assert!(steps > 0, "loss ramp needs at least one step");
        for i in 0..steps {
            let at = start + (duration / steps as u64) * i as u64;
            let rate = peak * triangle(i, steps);
            self.push(at, FaultAction::SetLossOverride { link, rate: Some(rate) });
        }
        self.push(start + duration, FaultAction::SetLossOverride { link, rate: None })
    }

    /// A triangular latency-jitter ramp: extra delay on `link` rises to
    /// roughly `peak` mid-ramp and falls back, across `steps` segments.
    /// Each step's magnitude is perturbed by ±25 % drawn from `rng` at
    /// construction time, then the extra delay clears.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn delay_jitter_ramp(
        &mut self,
        link: LinkId,
        start: SimDuration,
        duration: SimDuration,
        peak: SimDuration,
        steps: usize,
        rng: &mut SimRng,
    ) -> &mut Self {
        assert!(steps > 0, "jitter ramp needs at least one step");
        for i in 0..steps {
            let at = start + (duration / steps as u64) * i as u64;
            let wobble = 0.75 + 0.5 * rng.uniform();
            let delay = peak.mul_f64(triangle(i, steps) * wobble);
            self.push(at, FaultAction::SetExtraDelay { link, delay });
        }
        self.push(
            start + duration,
            FaultAction::SetExtraDelay { link, delay: SimDuration::ZERO },
        )
    }

    /// Throttles `link` to `factor ×` its configured bandwidth for
    /// `duration`, then restores nominal speed.
    pub fn throttle(
        &mut self,
        link: LinkId,
        start: SimDuration,
        duration: SimDuration,
        factor: f64,
    ) -> &mut Self {
        self.push(start, FaultAction::SetBandwidthScale { link, scale: factor });
        self.push(start + duration, FaultAction::SetBandwidthScale { link, scale: 1.0 })
    }

    /// Applies CPU pressure `factor` to `node` for `duration`, then
    /// relieves it.
    pub fn cpu_pressure(
        &mut self,
        node: NodeId,
        start: SimDuration,
        duration: SimDuration,
        factor: f64,
    ) -> &mut Self {
        self.push(start, FaultAction::SetCpuPressure { node, factor });
        self.push(start + duration, FaultAction::SetCpuPressure { node, factor: 1.0 })
    }

    /// Crashes `node` at `start`; nothing brings it back (pair with
    /// [`FaultPlan::node_reboot`] or a manual restore for recovery
    /// scenarios).
    pub fn node_crash(&mut self, node: NodeId, start: SimDuration) -> &mut Self {
        self.push(start, FaultAction::NodeCrash { node })
    }

    /// Crashes `node` at `start` and boots it back `boot_delay` later.
    pub fn node_reboot(
        &mut self,
        node: NodeId,
        start: SimDuration,
        boot_delay: SimDuration,
    ) -> &mut Self {
        self.push(start, FaultAction::NodeReboot { node, boot_delay })
    }
}

/// Triangular envelope over `steps` segments: 0-based segment `i` maps
/// to a weight in `(0, 1]` peaking at the middle segment.
fn triangle(i: usize, steps: usize) -> f64 {
    if steps == 1 {
        return 1.0;
    }
    let mid = (steps - 1) as f64 / 2.0;
    1.0 - ((i as f64 - mid).abs() / mid).min(1.0) * (1.0 - 1.0 / steps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkId {
        LinkId::from_raw(0)
    }

    #[test]
    fn flap_is_a_down_up_pair() {
        let mut plan = FaultPlan::new();
        plan.link_flap(link(), SimDuration::from_secs(5), SimDuration::from_secs(2));
        let entries = plan.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0],
            FaultEntry {
                at: SimDuration::from_secs(5),
                action: FaultAction::SetLinkUp { link: link(), up: false },
            }
        );
        assert_eq!(
            entries[1],
            FaultEntry {
                at: SimDuration::from_secs(7),
                action: FaultAction::SetLinkUp { link: link(), up: true },
            }
        );
    }

    #[test]
    fn random_flap_is_deterministic_per_seed_and_ends_up() {
        let build = || {
            let mut rng = SimRng::seed_from(11);
            let mut plan = FaultPlan::new();
            plan.link_flap_random(
                link(),
                SimDuration::ZERO,
                SimDuration::from_secs(120),
                10.0,
                3.0,
                &mut rng,
            );
            plan
        };
        let a = build();
        assert_eq!(a, build());
        // The plan never leaves the link down past the horizon.
        let mut up = true;
        for entry in a.entries() {
            assert!(entry.at <= SimDuration::from_secs(120));
            if let FaultAction::SetLinkUp { up: u, .. } = entry.action {
                up = u;
            }
        }
        assert!(up, "link must be restored by the horizon");
    }

    #[test]
    fn loss_ramp_peaks_mid_ramp_and_clears() {
        let mut plan = FaultPlan::new();
        plan.loss_ramp(link(), SimDuration::ZERO, SimDuration::from_secs(10), 0.4, 5);
        let rates: Vec<f64> = plan
            .entries()
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::SetLossOverride { rate, .. } => rate,
                _ => None,
            })
            .collect();
        assert_eq!(rates.len(), 5);
        let peak_idx =
            rates.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert_eq!(peak_idx, 2, "triangle peaks at the middle step");
        assert!((rates[2] - 0.4).abs() < 1e-12);
        // Final entry clears the override.
        assert_eq!(
            plan.entries().last().unwrap().action,
            FaultAction::SetLossOverride { link: link(), rate: None }
        );
    }

    #[test]
    fn throttle_and_pressure_restore_nominal() {
        let mut plan = FaultPlan::new();
        plan.throttle(link(), SimDuration::from_secs(1), SimDuration::from_secs(4), 0.1);
        plan.cpu_pressure(
            NodeId::from_raw(3),
            SimDuration::from_secs(2),
            SimDuration::from_secs(6),
            200.0,
        );
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.entries()[1].action,
            FaultAction::SetBandwidthScale { link: link(), scale: 1.0 }
        );
        assert_eq!(
            plan.entries()[3].action,
            FaultAction::SetCpuPressure { node: NodeId::from_raw(3), factor: 1.0 }
        );
    }

    #[test]
    fn crash_and_reboot_builders_schedule_single_entries() {
        let node = NodeId::from_raw(4);
        let mut plan = FaultPlan::new();
        plan.node_crash(node, SimDuration::from_secs(3));
        plan.node_reboot(node, SimDuration::from_secs(9), SimDuration::from_secs(2));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.entries()[0],
            FaultEntry { at: SimDuration::from_secs(3), action: FaultAction::NodeCrash { node } }
        );
        assert_eq!(
            plan.entries()[1],
            FaultEntry {
                at: SimDuration::from_secs(9),
                action: FaultAction::NodeReboot { node, boot_delay: SimDuration::from_secs(2) },
            }
        );
    }

    #[test]
    fn merge_preserves_both_schedules() {
        let mut a = FaultPlan::new();
        a.link_flap(link(), SimDuration::from_secs(1), SimDuration::from_secs(1));
        let mut b = FaultPlan::new();
        b.throttle(link(), SimDuration::from_secs(3), SimDuration::from_secs(1), 0.5);
        a.merge(&b);
        assert_eq!(a.len(), 4);
    }
}
