//! The discrete-event core: event kinds and the time-ordered queue.
//!
//! Events are plain data (no closures), dispatched by the
//! [`World`](crate::world::World) loop. Ties at equal timestamps break on
//! a monotonically increasing sequence number, which makes execution order
//! a *total* order and therefore the whole simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::faults::FaultAction;
use crate::ids::{AppId, ConnId, LinkId, NodeId, TimerId};
use crate::pool::PacketId;
use crate::time::SimTime;

/// A scheduled occurrence inside the simulator.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lane of a link finished serialising its head-of-queue packet.
    LinkTxComplete {
        /// The link that finished transmitting.
        link: LinkId,
        /// Index of the transmitting lane within the link.
        lane: usize,
    },
    /// A packet arrives at a node after the link propagation delay.
    ///
    /// Carries a pool handle, not the packet body: heap sifts move a
    /// few machine words, and the body lives in the kernel's
    /// [`PacketPool`](crate::pool::PacketPool) until the last receiver
    /// releases it.
    Deliver {
        /// The link the packet travelled on.
        link: LinkId,
        /// The receiving node.
        node: NodeId,
        /// Pool handle of the delivered packet.
        packet: PacketId,
    },
    /// A TCP retransmission timer fired.
    TcpTimer {
        /// Node owning the connection.
        node: NodeId,
        /// The connection.
        conn: ConnId,
        /// Generation stamp; stale timers (generation mismatch) are ignored.
        generation: u64,
    },
    /// An application timer fired.
    AppTimer {
        /// The application to notify.
        app: AppId,
        /// Caller-chosen token passed back to the application.
        token: u64,
        /// Identity of this timer, for cancellation.
        timer: TimerId,
    },
    /// An application should run its `on_start` hook.
    AppStart {
        /// The application to start.
        app: AppId,
    },
    /// A node changes administrative state (churn: device leaves/rejoins).
    SetNodeUp {
        /// The node affected.
        node: NodeId,
        /// `true` to bring the node up, `false` to take it down.
        up: bool,
    },
    /// A scheduled fault-plan transition fires (link flap, loss
    /// override, throttle, CPU pressure — see [`FaultAction`]).
    Fault {
        /// The transition to apply.
        action: FaultAction,
    },
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// ```
/// use netsim::event::{Event, EventQueue};
/// use netsim::ids::AppId;
/// use netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), Event::AppStart { app: AppId::from_raw(0) });
/// q.schedule(SimTime::from_secs(1), Event::AppStart { app: AppId::from_raw(1) });
/// let (t, _) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(1));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (including processed ones).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(app: u32) -> Event {
        Event::AppStart { app: AppId::from_raw(app) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), start(3));
        q.schedule(SimTime::from_secs(1), start(1));
        q.schedule(SimTime::from_secs(2), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.whole_secs()).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(5), start(i));
        }
        let mut seen = Vec::new();
        while let Some((_, Event::AppStart { app })) = q.pop() {
            seen.push(app.as_raw());
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    /// The whole point of pooling packet bodies: every heap sift moves a
    /// few machine words. If `Event` (and thus `Scheduled`) ever grows
    /// back towards carrying a packet body inline — `Packet` alone is
    /// well over 40 bytes before its payload — this pins the regression.
    #[test]
    fn scheduled_events_stay_small() {
        assert!(
            std::mem::size_of::<Event>() <= 40,
            "Event grew to {} bytes; keep packet bodies in the pool",
            std::mem::size_of::<Event>()
        );
        assert!(std::mem::size_of::<Scheduled>() <= 56);
        assert_eq!(std::mem::size_of::<crate::pool::PacketId>(), 8);
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, start(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }
}
