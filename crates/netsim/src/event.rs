//! The discrete-event core: event kinds and the time-ordered queue.
//!
//! Events are plain data (no closures), dispatched by the
//! [`World`](crate::world::World) loop. Ties at equal timestamps break on
//! a monotonically increasing sequence number, which makes execution order
//! a *total* order and therefore the whole simulation deterministic.
//!
//! The queue itself is a hierarchical timer wheel (4 levels × 64 slots,
//! ~1 µs ticks) with a [`BinaryHeap`] spillover for far-future events:
//! `schedule`/`pop` touch one slot instead of sifting a heap of every
//! pending event. Wheel entries live in one slab arena threaded through
//! intrusive free/slot lists, so constructing a queue allocates nothing,
//! cascading a slot is pure pointer relinking, and a warmed-up
//! simulation schedules and pops without allocating (the arena, ready
//! run and overflow heap all keep their high-water capacity).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::mem;

use crate::faults::FaultAction;
use crate::ids::{AppId, ConnId, LinkId, NodeId, TimerId};
use crate::pool::PacketId;
use crate::time::SimTime;

/// A scheduled occurrence inside the simulator.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lane of a link finished serialising its head-of-queue packet.
    LinkTxComplete {
        /// The link that finished transmitting.
        link: LinkId,
        /// Index of the transmitting lane within the link.
        lane: usize,
    },
    /// A packet arrives at a node after the link propagation delay.
    ///
    /// Carries a pool handle, not the packet body: heap sifts move a
    /// few machine words, and the body lives in the kernel's
    /// [`PacketPool`](crate::pool::PacketPool) until the last receiver
    /// releases it.
    Deliver {
        /// The link the packet travelled on.
        link: LinkId,
        /// The receiving node.
        node: NodeId,
        /// Pool handle of the delivered packet.
        packet: PacketId,
    },
    /// A TCP retransmission timer fired.
    TcpTimer {
        /// Node owning the connection.
        node: NodeId,
        /// The connection.
        conn: ConnId,
        /// Generation stamp; stale timers (generation mismatch) are ignored.
        generation: u64,
    },
    /// An application timer fired.
    AppTimer {
        /// The application to notify.
        app: AppId,
        /// Caller-chosen token passed back to the application.
        token: u64,
        /// Identity of this timer, for cancellation.
        timer: TimerId,
    },
    /// An application should run its `on_start` hook.
    AppStart {
        /// The application to start.
        app: AppId,
    },
    /// A node changes administrative state (churn: device leaves/rejoins).
    SetNodeUp {
        /// The node affected.
        node: NodeId,
        /// `true` to bring the node up, `false` to take it down.
        up: bool,
    },
    /// A scheduled fault-plan transition fires (link flap, loss
    /// override, throttle, CPU pressure — see [`FaultAction`]).
    Fault {
        /// The transition to apply.
        action: FaultAction,
    },
    /// An active open failed before any segment left the node (e.g.
    /// ephemeral-port exhaustion). Delivered through the queue so the
    /// caller of `tcp_connect` observes `ConnectFailed` asynchronously,
    /// like every other failed open, instead of re-entrantly.
    TcpConnectFailed {
        /// The application that attempted the connect.
        app: AppId,
        /// The connection id handed back to the caller.
        conn: ConnId,
    },
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Tick granularity: 2^10 ns ≈ 1 µs. Coarser than packet timestamps, so
/// ordering *within* a tick always comes from the `(time, seq)` sort of
/// the drained slot, never from slot placement.
const TICK_SHIFT: u32 = 10;
/// log2 of the slots per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per level (must match the `u64` occupancy bitmap).
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels; spans `SLOTS^LEVELS` ticks ≈ 17 s of simulated time
/// before events spill into the overflow heap.
const LEVELS: usize = 4;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Null link in the slab arena's intrusive lists.
const NIL: u32 = u32::MAX;

/// One slab-arena cell: a scheduled event plus the intrusive link that
/// threads it onto a slot list (or the free list once recycled). Cells
/// are never deallocated individually — freeing pushes the index onto
/// the free list, so a warmed-up wheel recycles nodes without touching
/// the allocator. Keeping the link inline (rather than a `Vec` per
/// slot) is what lets 256 slots exist with zero up-front allocation.
#[derive(Debug)]
struct Node {
    item: Scheduled,
    next: u32,
}

#[inline]
fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> TICK_SHIFT
}

/// Smallest occupied slot strictly after `idx`, if any.
#[inline]
fn next_occupied(occ: u64, idx: usize) -> Option<usize> {
    let ahead = if idx + 1 >= SLOTS { 0 } else { occ & (u64::MAX << (idx + 1)) };
    if ahead == 0 {
        None
    } else {
        Some(ahead.trailing_zeros() as usize)
    }
}

/// A deterministic time-ordered event queue.
///
/// Internally a hierarchical timer wheel: level `k` holds events whose
/// tick shares the cursor's `64^(k+1)`-tick window but not the
/// `64^k`-tick one, slotted by tick digit `k`. Events beyond the top
/// window live in a spillover min-heap; events at or before the cursor
/// sit in a sorted ready run. The cursor only moves forward, hopping
/// directly to the next occupied slot (no tick-by-tick idling), and
/// every slot drain re-sorts by `(time, seq)` — so pops are globally
/// ordered and same-time events still pop in insertion order, exactly
/// like the plain binary heap this replaces.
///
/// ```
/// use netsim::event::{Event, EventQueue};
/// use netsim::ids::AppId;
/// use netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), Event::AppStart { app: AppId::from_raw(0) });
/// q.schedule(SimTime::from_secs(1), Event::AppStart { app: AppId::from_raw(1) });
/// let (t, _) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct EventQueue {
    /// Events with tick ≤ `cur`, sorted by `(time, seq)` — the pop front.
    ready: VecDeque<Scheduled>,
    /// Slab storage for every event filed in the wheel.
    arena: Vec<Node>,
    /// Head of the intrusive free list of recycled arena cells.
    free_head: u32,
    /// Per-slot list heads into `arena`; `NIL` exactly where `occupied`
    /// has a clear bit.
    heads: [[u32; SLOTS]; LEVELS],
    /// Per-level occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Far-future events (tick outside the cursor's top-level window).
    overflow: BinaryHeap<Scheduled>,
    /// Reused buffer for sorting a drained level-0 slot.
    scratch: Vec<Scheduled>,
    /// Cursor tick. Monotonic; all wheel events are strictly after it.
    cur: u64,
    len: usize,
    next_seq: u64,
    scheduled_total: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            ready: VecDeque::new(),
            arena: Vec::new(),
            free_head: NIL,
            heads: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            cur: 0,
            len: 0,
            next_seq: 0,
            scheduled_total: 0,
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        self.insert(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.refill_ready();
        let s = self.ready.pop_front()?;
        self.len -= 1;
        Some((s.time, s.event))
    }

    /// Timestamp of the earliest pending event.
    ///
    /// Takes `&mut self`: peeking may advance the wheel cursor to the
    /// next occupied slot (which never changes *what* is earliest, only
    /// where it is stored).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.refill_ready();
        self.ready.front().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (including processed ones).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Files one event into the ready run, the wheel, or the overflow.
    ///
    /// Level choice is by *window sharing*, not delta: the event goes to
    /// the smallest level whose window (tick with the low `6·(k+1)` bits
    /// dropped) matches the cursor's. Delta-based placement would let an
    /// event land in a slot the cursor has already passed this rotation;
    /// window sharing makes every chosen slot strictly ahead of the
    /// cursor's index at that level.
    fn insert(&mut self, s: Scheduled) {
        let t = tick_of(s.time);
        if t <= self.cur {
            let pos = self.ready.partition_point(|e| (e.time, e.seq) < (s.time, s.seq));
            self.ready.insert(pos, s);
            return;
        }
        if let Some((k, slot)) = self.wheel_home(t) {
            let idx = self.alloc_node(s);
            self.link(k, slot, idx);
            return;
        }
        self.overflow.push(s);
    }

    /// `(level, slot)` for tick `t`, or `None` when `t` lies outside the
    /// cursor's top-level window (→ overflow heap). Level choice is the
    /// window-sharing rule documented on [`Self::insert`].
    #[inline]
    fn wheel_home(&self, t: u64) -> Option<(usize, usize)> {
        for k in 0..LEVELS {
            let window_shift = LEVEL_BITS * (k as u32 + 1);
            if t >> window_shift == self.cur >> window_shift {
                let slot = ((t >> (LEVEL_BITS * k as u32)) & SLOT_MASK) as usize;
                return Some((k, slot));
            }
        }
        None
    }

    /// Takes a cell from the free list, or grows the slab.
    fn alloc_node(&mut self, item: Scheduled) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.arena[idx as usize];
            self.free_head = node.next;
            node.item = item;
            return idx;
        }
        debug_assert!(self.arena.len() < NIL as usize, "slab index space exhausted");
        self.arena.push(Node { item, next: NIL });
        (self.arena.len() - 1) as u32
    }

    /// Returns a cell to the free list (its stale item stays in place
    /// until the cell is reused).
    fn free_node(&mut self, idx: u32) {
        self.arena[idx as usize].next = self.free_head;
        self.free_head = idx;
    }

    /// Pushes cell `idx` onto the head of a slot list.
    fn link(&mut self, level: usize, slot: usize, idx: u32) {
        self.arena[idx as usize].next = self.heads[level][slot];
        self.heads[level][slot] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// Moves the event out of cell `idx`, leaving a placeholder.
    fn take_item(&mut self, idx: u32) -> Scheduled {
        let placeholder =
            Scheduled { time: SimTime::ZERO, seq: 0, event: Event::AppStart { app: AppId::from_raw(0) } };
        mem::replace(&mut self.arena[idx as usize].item, placeholder)
    }

    /// Re-files one cascading cell after a cursor jump: relinks it into
    /// its new (strictly lower) wheel slot without touching the event,
    /// or — when its tick now sits at the cursor — recycles the cell and
    /// moves the event into the ready run.
    fn refile(&mut self, idx: u32) {
        let t = tick_of(self.arena[idx as usize].item.time);
        if t > self.cur {
            if let Some((k, slot)) = self.wheel_home(t) {
                self.link(k, slot, idx);
                return;
            }
            // Unreachable in practice: a cascaded event shared the old
            // cursor's window and the cursor only moved forward inside
            // it. `insert` below still files it correctly if not.
        }
        let s = self.take_item(idx);
        self.free_node(idx);
        self.insert(s);
    }

    /// Ensures the ready run is non-empty unless the queue is drained.
    fn refill_ready(&mut self) {
        while self.ready.is_empty() {
            if !self.advance() {
                return;
            }
        }
    }

    /// One cursor hop toward the next pending event. Drains the nearest
    /// occupied level-0 slot into the ready run, or cascades one
    /// higher-level slot (re-filing its events a level down), or pulls
    /// the next top-level window out of the overflow heap. Returns
    /// `false` when nothing is pending outside the ready run.
    ///
    /// Lower levels are always exhausted first: a level-k event shares
    /// the cursor's level-k window but not its level-(k-1) window, so it
    /// is strictly later than every event still filed below level k.
    fn advance(&mut self) -> bool {
        // Level 0 drains straight into the ready run.
        let idx0 = (self.cur & SLOT_MASK) as usize;
        if let Some(slot) = next_occupied(self.occupied[0], idx0) {
            self.cur = (self.cur & !SLOT_MASK) | slot as u64;
            self.occupied[0] &= !(1 << slot);
            let mut idx = mem::replace(&mut self.heads[0][slot], NIL);
            debug_assert!(self.scratch.is_empty());
            while idx != NIL {
                let next = self.arena[idx as usize].next;
                let item = self.take_item(idx);
                self.free_node(idx);
                self.scratch.push(item);
                idx = next;
            }
            self.scratch.sort_unstable_by_key(|e| (e.time, e.seq));
            self.ready.extend(self.scratch.drain(..));
            return true;
        }
        // Higher levels cascade: jump the cursor to the slot's window
        // start, then re-file each event. It lands a level down — a pure
        // relink of the same slab cell — or, when it sits exactly on the
        // new cursor tick, moves into the ready run.
        for k in 1..LEVELS {
            let shift = LEVEL_BITS * k as u32;
            let idx_k = ((self.cur >> shift) & SLOT_MASK) as usize;
            if let Some(slot) = next_occupied(self.occupied[k], idx_k) {
                let window = 1u64 << (shift + LEVEL_BITS);
                self.cur = (self.cur & !(window - 1)) | ((slot as u64) << shift);
                self.occupied[k] &= !(1 << slot);
                let mut idx = mem::replace(&mut self.heads[k][slot], NIL);
                while idx != NIL {
                    let next = self.arena[idx as usize].next;
                    self.refile(idx);
                    idx = next;
                }
                return true;
            }
        }
        // Wheel exhausted: jump to the earliest far-future window and
        // pull every overflow event that shares it.
        let Some(min) = self.overflow.peek() else {
            return false;
        };
        let top_shift = LEVEL_BITS * LEVELS as u32;
        self.cur = (tick_of(min.time) >> top_shift) << top_shift;
        while let Some(top) = self.overflow.peek() {
            if tick_of(top.time) >> top_shift != self.cur >> top_shift {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry");
            self.insert(e);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(app: u32) -> Event {
        Event::AppStart { app: AppId::from_raw(app) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), start(3));
        q.schedule(SimTime::from_secs(1), start(1));
        q.schedule(SimTime::from_secs(2), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.whole_secs()).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(5), start(i));
        }
        let mut seen = Vec::new();
        while let Some((_, Event::AppStart { app })) = q.pop() {
            seen.push(app.as_raw());
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    /// The whole point of pooling packet bodies: every heap sift moves a
    /// few machine words. If `Event` (and thus `Scheduled`) ever grows
    /// back towards carrying a packet body inline — `Packet` alone is
    /// well over 40 bytes before its payload — this pins the regression.
    #[test]
    fn scheduled_events_stay_small() {
        assert!(
            std::mem::size_of::<Event>() <= 40,
            "Event grew to {} bytes; keep packet bodies in the pool",
            std::mem::size_of::<Event>()
        );
        assert!(std::mem::size_of::<Scheduled>() <= 56);
        assert!(std::mem::size_of::<Node>() <= 64, "slab cell outgrew a cache line");
        assert_eq!(std::mem::size_of::<crate::pool::PacketId>(), 8);
    }

    /// Randomized schedule/pop interleavings against a sorted-`Vec`
    /// reference queue: deltas span every wheel level plus the overflow
    /// heap, with duplicate timestamps to exercise the FIFO tie-break,
    /// and pops may be followed by scheduling "in the past" relative to
    /// the wheel cursor (the ready-run insert path).
    #[test]
    fn wheel_matches_sorted_reference_across_random_workloads() {
        for seed in 0..8u64 {
            let mut rng = crate::rng::SimRng::seed_from(seed);
            let mut q = EventQueue::new();
            let mut reference: Vec<(SimTime, u64, u32)> = Vec::new();
            let mut seq = 0u64;
            let mut id = 0u32;
            let mut now = 0u64;
            let mut ops = 0;
            while ops < 3000 || !reference.is_empty() {
                ops += 1;
                let scheduling = ops < 3000 && (reference.is_empty() || rng.chance(0.55));
                if scheduling {
                    let delta = match rng.below(5) {
                        0 => 0, // exact duplicate of `now`
                        1 => rng.below(1 << 8),
                        2 => rng.below(1 << 14), // level 1-2 spans
                        3 => rng.below(1 << 24), // level 3 span
                        _ => rng.below(1 << 38), // overflow heap
                    };
                    let t = SimTime::from_nanos(now + delta);
                    q.schedule(t, start(id));
                    reference.push((t, seq, id));
                    seq += 1;
                    id += 1;
                } else {
                    let min = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.0, e.1))
                        .map(|(i, _)| i)
                        .expect("reference non-empty");
                    let (rt, _, rid) = reference.remove(min);
                    assert_eq!(q.peek_time(), Some(rt), "seed {seed} op {ops}");
                    let (t, Event::AppStart { app }) = q.pop().expect("queue non-empty") else {
                        panic!("unexpected event kind");
                    };
                    assert_eq!((t, app.as_raw()), (rt, rid), "seed {seed} op {ops}");
                    now = t.as_nanos();
                }
                assert_eq!(q.len(), reference.len());
            }
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    /// The sharded-run access pattern, pinned against a `BinaryHeap`
    /// oracle: every synchronization window peeks the queue (advancing
    /// the wheel cursor — possibly deep into the far future when only
    /// an overflow-heap event is pending, i.e. beyond the `SLOTS^LEVELS`
    /// ≈ 17 s horizon) *without popping*, and then boundary-packet
    /// injection schedules events behind that stalled cursor. Those
    /// late arrivals take the ready-run sorted-insert path and must
    /// still pop strictly before the far-future event that dragged the
    /// cursor forward.
    #[test]
    fn stalled_cursor_keeps_heap_order_under_far_future_overflow() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        for seed in 0..6u64 {
            let mut rng = crate::rng::SimRng::seed_from(seed ^ 0x5ead_c0de);
            let mut q = EventQueue::new();
            let mut oracle: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut id = 0u32;
            let mut now = 0u64;
            let mut push = |q: &mut EventQueue,
                            oracle: &mut BinaryHeap<Reverse<(SimTime, u64, u32)>>,
                            t: SimTime| {
                q.schedule(t, start(id));
                oracle.push(Reverse((t, seq, id)));
                seq += 1;
                id += 1;
            };
            for round in 0..300u32 {
                // A burst spanning every wheel level plus the overflow
                // heap (deltas past 2^34 ns ≈ the 17 s wheel horizon).
                for _ in 0..1 + rng.below(6) {
                    let delta = match rng.below(6) {
                        0 => 0,
                        1 => rng.below(1 << 8),
                        2 => rng.below(1 << 14),
                        3 => rng.below(1 << 24),
                        4 => rng.below(1 << 34),
                        _ => (1 << 34) + rng.below(1 << 40),
                    };
                    push(&mut q, &mut oracle, SimTime::from_nanos(now + delta));
                }
                // Stall: peek without popping. When the only pending
                // events are far-future this walks the cursor across
                // empty windows (and drains the overflow heap into the
                // wheel) while the pop stream stays frozen.
                assert_eq!(
                    q.peek_time(),
                    oracle.peek().map(|Reverse((t, _, _))| *t),
                    "seed {seed} round {round}"
                );
                // Inject behind the stalled cursor: near-`now` arrivals,
                // exactly what cross-shard mailbox delivery schedules
                // after the coordinator peeked the horizon.
                for _ in 0..rng.below(3) {
                    push(&mut q, &mut oracle, SimTime::from_nanos(now + rng.below(1 << 12)));
                }
                for _ in 0..rng.below(5) {
                    let Some(Reverse((rt, _, rid))) = oracle.pop() else { break };
                    let Some((t, Event::AppStart { app })) = q.pop() else {
                        panic!("seed {seed} round {round}: queue ran dry before oracle");
                    };
                    assert_eq!((t, app.as_raw()), (rt, rid), "seed {seed} round {round}");
                    now = t.as_nanos();
                }
                assert_eq!(q.len(), oracle.len(), "seed {seed} round {round}");
            }
            while let Some(Reverse((rt, _, rid))) = oracle.pop() {
                let Some((t, Event::AppStart { app })) = q.pop() else {
                    panic!("seed {seed}: queue ran dry during final drain");
                };
                assert_eq!((t, app.as_raw()), (rt, rid), "seed {seed} final drain");
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, start(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }
}
