//! Packet taps: promiscuous observation points for capture tooling.

use crate::ids::{LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// Where and when a tapped packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapMeta {
    /// Arrival (delivery) time at the receiving NIC.
    pub time: SimTime,
    /// The link the packet travelled on.
    pub link: LinkId,
    /// The node receiving the packet.
    pub receiver: NodeId,
}

/// An observer of packets delivered on the simulated network.
///
/// Taps see every delivered packet *before* protocol processing, like a
/// `tcpdump` on the receiving interface. They must not mutate the packet;
/// they receive a shared reference and typically copy out the fields they
/// need.
pub trait PacketTap {
    /// Called once per delivered packet.
    fn on_packet(&mut self, meta: &TapMeta, packet: &Packet);
}

impl<F: FnMut(&TapMeta, &Packet)> PacketTap for F {
    fn on_packet(&mut self, meta: &TapMeta, packet: &Packet) {
        self(meta, packet)
    }
}
