//! Per-node UDP state: port bindings and datagram demultiplexing.

use std::collections::HashMap;

use bytes::Bytes;

use crate::ids::AppId;
use crate::packet::Addr;

/// A received UDP datagram, as delivered to an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender address (as claimed on the wire; floods may spoof it).
    pub src: Addr,
    /// Sender port.
    pub src_port: u16,
    /// Local port the datagram arrived on.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Per-node UDP socket table.
#[derive(Debug, Default)]
pub struct UdpHost {
    bindings: HashMap<u16, AppId>,
    next_ephemeral: u16,
    /// Datagrams dropped because no socket was bound to the port.
    pub unreachable: u64,
}

impl UdpHost {
    /// Creates an empty table.
    pub fn new() -> Self {
        UdpHost { next_ephemeral: 40_000, ..UdpHost::default() }
    }

    /// Binds `port` to `app`. Returns `false` if the port was taken.
    pub fn bind(&mut self, port: u16, app: AppId) -> bool {
        use std::collections::hash_map::Entry;
        match self.bindings.entry(port) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(app);
                true
            }
        }
    }

    /// Releases a bound port.
    pub fn unbind(&mut self, port: u16) {
        self.bindings.remove(&port);
    }

    /// Allocates and binds an unused ephemeral port for `app`.
    pub fn bind_ephemeral(&mut self, app: AppId) -> u16 {
        for _ in 0..9_152 {
            let port = self.next_ephemeral;
            self.next_ephemeral =
                if self.next_ephemeral == 49_151 { 40_000 } else { self.next_ephemeral + 1 };
            if self.bind(port, app) {
                return port;
            }
        }
        panic!("UDP ephemeral port space exhausted");
    }

    /// The application bound to `port`, if any.
    pub fn lookup(&self, port: u16) -> Option<AppId> {
        self.bindings.get(&port).copied()
    }

    /// Number of bound ports.
    pub fn bound_count(&self) -> usize {
        self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_is_exclusive() {
        let mut host = UdpHost::new();
        assert!(host.bind(53, AppId::from_raw(1)));
        assert!(!host.bind(53, AppId::from_raw(2)));
        assert_eq!(host.lookup(53), Some(AppId::from_raw(1)));
        host.unbind(53);
        assert_eq!(host.lookup(53), None);
    }

    #[test]
    fn ephemeral_binds_are_unique() {
        let mut host = UdpHost::new();
        let a = host.bind_ephemeral(AppId::from_raw(1));
        let b = host.bind_ephemeral(AppId::from_raw(1));
        assert_ne!(a, b);
        assert_eq!(host.bound_count(), 2);
    }
}
