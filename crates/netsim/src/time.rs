//! Virtual simulation time.
//!
//! The simulator runs on a nanosecond-resolution virtual clock. [`SimTime`]
//! is an absolute instant since simulation start and [`SimDuration`] a span
//! between instants. Both are thin `u64` newtypes so they are free to copy
//! and totally ordered, which the event queue relies on for determinism.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the virtual clock, in nanoseconds since start.
///
/// ```
/// use netsim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use netsim::time::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d, SimDuration::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from whole milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The number of the whole second this instant falls in.
    ///
    /// Used by windowed feature extraction: instants `[n, n+1)` seconds map
    /// to window `n`.
    pub const fn whole_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Duration elapsed since `earlier`, saturating to zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Checked rewind of an instant by a duration.
    ///
    /// The `Sub` operator saturates at [`SimTime::ZERO`], which is the
    /// right default for display math but silently masks causality
    /// violations in synchronization code (a negative cross-shard
    /// lookahead clamps to "now" instead of failing). Use this where
    /// underflow means a bug.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration seconds: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Checked duration subtraction.
    ///
    /// The `Sub` operator saturates at [`SimDuration::ZERO`]; callers
    /// computing a slack or lookahead margin where a negative result
    /// means a causality bug should use this and assert on `None`.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Multiplies the duration by a float factor, saturating at the ends.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0 && !factor.is_nan(), "invalid duration factor: {factor}");
        let nanos = (self.0 as f64 * factor).round();
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 3_500_000_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(500));
    }

    #[test]
    fn subtraction_saturates_instead_of_underflowing() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn checked_sub_reports_underflow_the_operators_clamp() {
        // Regression: `SimTime - SimDuration` and `SimDuration -
        // SimDuration` saturate to zero, which masks negative slack in
        // synchronization math. The checked variants must expose it.
        let t = SimTime::from_secs(1);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(t.checked_sub(SimDuration::from_secs(5)), None);
        assert_eq!(
            t.checked_sub(SimDuration::from_millis(400)),
            Some(SimTime::from_millis(600))
        );

        let d = SimDuration::from_millis(3);
        assert_eq!(d - SimDuration::from_millis(7), SimDuration::ZERO);
        assert_eq!(d.checked_sub(SimDuration::from_millis(7)), None);
        assert_eq!(d.checked_sub(d), Some(SimDuration::ZERO));
    }

    #[test]
    fn whole_secs_buckets_window_boundaries() {
        assert_eq!(SimTime::from_nanos(999_999_999).whole_secs(), 0);
        assert_eq!(SimTime::from_secs(1).whole_secs(), 1);
        assert_eq!((SimTime::from_secs(1) + SimDuration::from_nanos(1)).whole_secs(), 1);
    }

    #[test]
    fn duration_float_conversions() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(250));
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
        assert_eq!(d.mul_f64(4.0), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_mul_saturates() {
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::from_secs(2)).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(1)).is_empty());
    }
}
