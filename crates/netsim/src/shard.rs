//! Sharded parallel simulation with deterministic conservative time-sync.
//!
//! A sharded run partitions a topology into fixed logical **cells**
//! (per-subnet or per-device-range), each owning a full [`World`] — its
//! own timer-wheel event queue, `PacketPool`, and a private `SimRng`
//! stream seeded [`cell_seed`]`(seed, cell)` via the
//! [`crate::buggify::stream_seed`] derivation, so the cell count of one
//! run never perturbs another run's streams. Cells advance in lockstep
//! windows under conservative (CMB-style) synchronization:
//!
//! 1. The coordinator computes `t_min`, the earliest pending local
//!    event or in-flight boundary packet across all cells, and sets the
//!    window horizon `h = t_min + lookahead`, where the lookahead is
//!    the minimum cross-boundary link latency ([`ShardSpec`]'s
//!    `boundary_latency`).
//! 2. Every boundary packet arriving before `h` is injected into its
//!    destination cell, then each cell runs every local event strictly
//!    before `h` ([`World::run_before`]).
//! 3. Packets addressed outside a cell leave through its egress buffer
//!    (see [`World::set_boundary_egress`]); the coordinator merges all
//!    cells' egress in `(send time, cell, seq)` order, applies the
//!    boundary latency (plus the `shard.boundary_delay` buggify point,
//!    evaluated in that same deterministic merge order), and mails each
//!    packet to the cell exporting its destination address.
//!
//! Safety argument: every event processed in a window has time
//! `t >= t_min`, so every packet it sends arrives at
//! `t + lookahead >= h` — never inside the window that produced it.
//! The coordinator `debug_assert!`s this with checked (non-saturating)
//! time subtraction on every routed packet.
//!
//! **Shard count is a worker-thread knob, not a semantics knob.** The
//! trace of a sharded run is a pure function of the cell partition: the
//! windows derive from cell state only, cells never share state inside
//! a window, each worker executes its cells in ascending cell order,
//! and all cross-cell traffic flows through the coordinator's
//! deterministic merge. Running the same cells on 1 worker or 8
//! produces byte-identical results — the same thread-invariance
//! discipline as `ml::par::with_threads`.

use std::any::Any;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::buggify::{stream_seed, Buggify, BuggifyConfig, DecisionPoint};
use crate::ids::NodeId;
use crate::packet::{Addr, Packet};
use crate::time::{SimDuration, SimTime};
use crate::world::World;

/// Parameters of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Worker threads executing the cells. Purely a performance knob:
    /// any value produces byte-identical results. Clamped to
    /// `[1, cells]`.
    pub shards: usize,
    /// Root seed. Cell `i` runs on `World::new(cell_seed(seed, i))`.
    pub seed: u64,
    /// Virtual end of the run; every cell's clock lands exactly here.
    pub end: SimTime,
    /// The conservative lookahead: the minimum latency any packet pays
    /// to cross a cell boundary. Must be positive — a zero lookahead
    /// admits no parallel window at all.
    pub boundary_latency: SimDuration,
    /// Buggify layer. When enabled, every cell world is armed with a
    /// per-cell derived swarm stream, and the coordinator evaluates the
    /// `shard.boundary_delay` point once per cross-cell packet.
    pub buggify: BuggifyConfig,
}

impl ShardSpec {
    /// A spec with the given knobs and buggify disabled.
    pub fn new(seed: u64, end: SimTime, boundary_latency: SimDuration) -> Self {
        ShardSpec { shards: 1, seed, end, boundary_latency, buggify: BuggifyConfig::default() }
    }
}

/// The RNG seed of one cell's world: a named stream off the run seed,
/// so adding or removing cells never shifts another cell's stream.
pub fn cell_seed(seed: u64, cell: usize) -> u64 {
    stream_seed(seed, &format!("shard.cell.{cell}"))
}

/// What a cell tells the coordinator about itself after building: the
/// addresses other cells may send to, each mapped to the local node
/// that receives the injected packet.
#[derive(Debug, Default)]
pub struct CellManifest {
    /// Exported `(address, receiving node)` pairs. Addresses must be
    /// globally unique across cells.
    pub exports: Vec<(Addr, NodeId)>,
}

/// The opaque per-cell state a builder hands to its finisher (app
/// handles, sniffer handles, an obs registry...). It never leaves the
/// worker thread that built the cell, so it does not need `Send`.
pub type CellState = Box<dyn Any>;

/// One cell of a sharded run. The closures run on a worker thread: the
/// builder populates a freshly seeded world and returns the manifest
/// plus whatever state the finisher needs; the finisher runs after the
/// final window and reduces the cell to a `Send` report.
pub struct CellSpec<R> {
    /// Display name (progress/debug only; determinism keys off the
    /// cell index, not the name).
    pub name: String,
    /// Populates the cell world. Runs once, before the first window.
    #[allow(clippy::type_complexity)]
    pub build: Box<dyn FnOnce(&mut World) -> (CellManifest, CellState) + Send>,
    /// Reduces the finished cell to a report. Runs once, after the
    /// clock reaches `ShardSpec::end`.
    #[allow(clippy::type_complexity)]
    pub finish: Box<dyn FnOnce(&mut World, CellState) -> R + Send>,
}

/// Cross-shard accounting for a finished run. Every field is a pure
/// function of the cell partition — byte-identical across shard counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of cells.
    pub cells: usize,
    /// Worker threads actually used (after clamping).
    pub workers: usize,
    /// Synchronization windows executed.
    pub rounds: u64,
    /// Packets that left a cell through its boundary egress.
    pub cross_sent: u64,
    /// Boundary packets injected into a destination cell.
    pub cross_delivered: u64,
    /// Boundary packets whose destination no cell exports.
    pub cross_unroutable: u64,
    /// Boundary packets whose (possibly buggify-delayed) arrival fell
    /// past `ShardSpec::end` — still in flight when the run ended.
    pub cross_in_flight_at_end: u64,
    /// `shard.boundary_delay` decision-point evaluations.
    pub boundary_delay_evals: u64,
    /// `shard.boundary_delay` decision-point fires.
    pub boundary_delay_fires: u64,
    /// Buggify fires inside the cell worlds (0 when disabled).
    pub cell_buggify_fires: u64,
    /// Events processed, summed over cells.
    pub events_processed: u64,
    /// Each cell's final clock, in cell order.
    pub final_clocks: Vec<SimTime>,
}

impl ShardStats {
    /// Checks cross-shard packet conservation: every packet that left a
    /// cell must be delivered, unroutable, or in flight at the end.
    /// Returns a violation description, or `None` when the books
    /// balance.
    pub fn conservation_violation(&self) -> Option<String> {
        let accounted =
            self.cross_delivered + self.cross_unroutable + self.cross_in_flight_at_end;
        if self.cross_sent != accounted {
            return Some(format!(
                "cross-shard conservation: sent {} != delivered {} + unroutable {} + in-flight {}",
                self.cross_sent,
                self.cross_delivered,
                self.cross_unroutable,
                self.cross_in_flight_at_end
            ));
        }
        None
    }

    /// Checks clock-horizon agreement: every cell's clock must land
    /// exactly on `end`. Returns a violation description, or `None`.
    pub fn clock_violation(&self, end: SimTime) -> Option<String> {
        for (cell, &clock) in self.final_clocks.iter().enumerate() {
            if clock != end {
                return Some(format!("cell {cell} clock ended at {clock}, expected {end}"));
            }
        }
        None
    }
}

/// The outcome of [`run_sharded`]: per-cell reports in cell order plus
/// the coordinator's cross-shard accounting.
#[derive(Debug)]
pub struct ShardRun<R> {
    /// One report per cell, in cell order.
    pub reports: Vec<R>,
    /// Cross-shard accounting.
    pub stats: ShardStats,
}

/// A boundary packet en route to its destination cell.
struct Delivery {
    cell: usize,
    at: SimTime,
    seq: u64,
    node: NodeId,
    packet: Packet,
}

enum Cmd {
    /// Run one window: inject `inbox` (sorted by `(cell, at, seq)`),
    /// then advance every owned cell to `until` — strictly-before when
    /// `inclusive` is false, `run_until` semantics when true.
    Window { until: SimTime, inclusive: bool, inbox: Vec<Delivery> },
    /// Finish every owned cell and report.
    Finish,
}

struct CellWindow {
    cell: usize,
    next_event: Option<SimTime>,
    egress: Vec<(SimTime, Packet)>,
}

enum WorkerMsg<R> {
    Built { cells: Vec<(usize, CellManifest, Option<SimTime>)> },
    Window { cells: Vec<CellWindow> },
    Finished { cells: Vec<(usize, R, SimTime, u64, u64)> },
}

struct WorkerCell<R> {
    idx: usize,
    world: World,
    state: CellState,
    #[allow(clippy::type_complexity)]
    finish: Box<dyn FnOnce(&mut World, CellState) -> R + Send>,
}

fn worker_loop<R: Send>(
    seed: u64,
    buggify: BuggifyConfig,
    assigned: Vec<(usize, CellSpec<R>)>,
    rx: Receiver<Cmd>,
    tx: Sender<WorkerMsg<R>>,
) {
    let mut cells: Vec<WorkerCell<R>> = Vec::with_capacity(assigned.len());
    let mut built = Vec::with_capacity(assigned.len());
    for (idx, spec) in assigned {
        let mut world = World::new(cell_seed(seed, idx));
        world.set_boundary_egress(true);
        if buggify.enabled {
            // Each cell gets its own derived swarm stream so the cells
            // of one swarm seed do not replay identical perturbation
            // schedules.
            world.set_buggify(BuggifyConfig {
                enabled: true,
                swarm_seed: stream_seed(buggify.swarm_seed, &format!("shard.cell.{idx}")),
                intensity: buggify.intensity,
            });
        }
        let (manifest, state) = (spec.build)(&mut world);
        built.push((idx, manifest, world.next_event_time()));
        cells.push(WorkerCell { idx, world, state, finish: spec.finish });
    }
    if tx.send(WorkerMsg::Built { cells: built }).is_err() {
        return;
    }

    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Window { until, inclusive, inbox } => {
                let mut out = Vec::with_capacity(cells.len());
                let mut cursor = 0usize;
                // Cells execute in ascending cell order regardless of
                // which worker owns them — part of the shard-count
                // invariance contract (`cells` is built in assignment
                // order, which is ascending).
                for cell in cells.iter_mut() {
                    while cursor < inbox.len() && inbox[cursor].cell == cell.idx {
                        let d = &inbox[cursor];
                        cell.world.inject_packet(d.at, d.node, d.packet.clone());
                        cursor += 1;
                    }
                    if inclusive {
                        cell.world.run_until(until);
                    } else {
                        cell.world.run_before(until);
                    }
                    let mut egress = Vec::new();
                    cell.world.drain_egress(&mut egress);
                    out.push(CellWindow {
                        cell: cell.idx,
                        next_event: cell.world.next_event_time(),
                        egress,
                    });
                }
                debug_assert_eq!(cursor, inbox.len(), "inbox held deliveries for unowned cells");
                if tx.send(WorkerMsg::Window { cells: out }).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let mut out = Vec::with_capacity(cells.len());
                for cell in cells.drain(..) {
                    let WorkerCell { idx, mut world, state, finish } = cell;
                    let fires: u64 =
                        world.buggify_counts().iter().map(|&(_, _, f)| f).sum();
                    let events = world.events_processed();
                    let clock = world.now();
                    let report = finish(&mut world, state);
                    out.push((idx, report, clock, events, fires));
                }
                let _ = tx.send(WorkerMsg::Finished { cells: out });
                return;
            }
        }
    }
}

/// Runs a cell partition to `spec.end` on `spec.shards` worker threads.
///
/// Byte-identity contract: the result is a pure function of
/// `(spec.seed, spec.end, spec.boundary_latency, spec.buggify, cells)`
/// — `spec.shards` never changes a byte.
///
/// # Panics
///
/// Panics if `cells` is empty, if `boundary_latency` is zero, if two
/// cells export the same address, or if a worker thread panics (the
/// worker's panic propagates).
pub fn run_sharded<R: Send>(spec: &ShardSpec, cells: Vec<CellSpec<R>>) -> ShardRun<R> {
    assert!(!cells.is_empty(), "a sharded run needs at least one cell");
    assert!(
        spec.boundary_latency > SimDuration::ZERO,
        "conservative synchronization needs a positive lookahead (boundary_latency)"
    );
    let n_cells = cells.len();
    let workers = spec.shards.clamp(1, n_cells);

    // Round-robin cell ownership: worker w owns cells {i : i % workers == w},
    // each worker's list ascending.
    let mut assigned: Vec<Vec<(usize, CellSpec<R>)>> = Vec::with_capacity(workers);
    assigned.resize_with(workers, Vec::new);
    for (idx, cell) in cells.into_iter().enumerate() {
        assigned[idx % workers].push((idx, cell));
    }

    std::thread::scope(|scope| {
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(workers);
        let mut msg_rxs: Vec<Receiver<WorkerMsg<R>>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker_cells in assigned {
            let (cmd_tx, cmd_rx) = channel::<Cmd>();
            let (msg_tx, msg_rx) = channel::<WorkerMsg<R>>();
            let seed = spec.seed;
            let buggify = spec.buggify;
            handles.push(
                scope.spawn(move || worker_loop(seed, buggify, worker_cells, cmd_rx, msg_tx)),
            );
            cmd_txs.push(cmd_tx);
            msg_rxs.push(msg_rx);
        }

        // If a worker panicked, its channel closes: join everything and
        // re-raise the original panic instead of a recv error.
        macro_rules! recv {
            ($rx:expr) => {
                match $rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => {
                        drop(cmd_txs);
                        for h in handles {
                            if let Err(payload) = h.join() {
                                std::panic::resume_unwind(payload);
                            }
                        }
                        unreachable!("worker channel closed without a panic")
                    }
                }
            };
        }

        // Gather manifests; build the global address -> (cell, node)
        // export table and each cell's initial next-event time.
        let mut exports: HashMap<Addr, (usize, NodeId)> = HashMap::new();
        let mut next_event: Vec<Option<SimTime>> = vec![None; n_cells];
        for rx in &msg_rxs {
            let WorkerMsg::Built { cells } = recv!(rx) else {
                unreachable!("worker spoke out of turn during build")
            };
            for (idx, manifest, ne) in cells {
                next_event[idx] = ne;
                for (addr, node) in manifest.exports {
                    let previous = exports.insert(addr, (idx, node));
                    assert!(
                        previous.is_none(),
                        "address {addr} exported by two cells ({} and {idx})",
                        previous.map(|(c, _)| c).unwrap_or_default()
                    );
                }
            }
        }

        let mut stats = ShardStats {
            cells: n_cells,
            workers,
            final_clocks: vec![SimTime::ZERO; n_cells],
            ..ShardStats::default()
        };
        let mut buggify = Buggify::new(spec.buggify);
        let mut pending: Vec<Delivery> = Vec::new();
        let mut route_seq = 0u64;
        let mut last_until = SimTime::ZERO;
        let mut finished = false;

        while !finished {
            let e_min = next_event.iter().flatten().min().copied();
            let m_min = pending.iter().map(|d| d.at).min();
            let t_min = match (e_min, m_min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (t, None) | (None, t) => t,
            };
            let (until, inclusive) = match t_min {
                // Quiesced, or everything left lies past the end: one
                // final inclusive window lands every clock on `end`.
                None => (spec.end, true),
                Some(t) if t > spec.end => (spec.end, true),
                Some(t) => {
                    let horizon = t + spec.boundary_latency;
                    if horizon >= spec.end {
                        (spec.end, true)
                    } else {
                        (horizon, false)
                    }
                }
            };
            finished = inclusive && until == spec.end;
            // Horizon monotonicity: checked, not saturating — a window
            // that moved backwards would silently clamp to zero.
            debug_assert!(
                until.checked_since(last_until).is_some(),
                "window horizon moved backwards: {until} < {last_until}"
            );
            last_until = until;

            // Everything arriving inside this window must be injected
            // before it runs. Sorted by (cell, at, seq): per-cell
            // injection order is the deterministic merge order.
            let mut inbox: Vec<Delivery> = Vec::new();
            let mut keep: Vec<Delivery> = Vec::with_capacity(pending.len());
            for d in pending.drain(..) {
                if d.at < until || (inclusive && d.at == until) {
                    inbox.push(d);
                } else {
                    keep.push(d);
                }
            }
            pending = keep;
            stats.cross_delivered += inbox.len() as u64;
            inbox.sort_by_key(|d| (d.cell, d.at, d.seq));

            // Split the inbox per owner and run the window everywhere.
            let mut per_worker: Vec<Vec<Delivery>> = Vec::with_capacity(workers);
            per_worker.resize_with(workers, Vec::new);
            for d in inbox {
                per_worker[d.cell % workers].push(d);
            }
            for (w, tx) in cmd_txs.iter().enumerate() {
                let inbox = std::mem::take(&mut per_worker[w]);
                if tx.send(Cmd::Window { until, inclusive, inbox }).is_err() {
                    // Worker gone: fall through to the recv below, which
                    // joins and re-raises its panic.
                }
            }
            stats.rounds += 1;

            // Collect the window results, then merge all egress in
            // (send time, cell, seq) order — the deterministic total
            // order the buggify draws and mailbox ordering key off.
            let mut windows: Vec<Option<CellWindow>> = Vec::with_capacity(n_cells);
            windows.resize_with(n_cells, || None);
            for rx in &msg_rxs {
                let WorkerMsg::Window { cells } = recv!(rx) else {
                    unreachable!("worker spoke out of turn during a window")
                };
                for cw in cells {
                    let idx = cw.cell;
                    windows[idx] = Some(cw);
                }
            }
            for (idx, slot) in windows.iter_mut().enumerate() {
                let cw = slot.as_mut().expect("every cell reports every window");
                next_event[idx] = cw.next_event;
                for (sent_at, packet) in cw.egress.drain(..) {
                    stats.cross_sent += 1;
                    let mut arrival = sent_at + spec.boundary_latency;
                    if buggify.fire(DecisionPoint::ShardBoundaryDelay) {
                        // Extra boundary latency: 0.1–5 ms on top of the
                        // lookahead. Only ever added, so the causality
                        // argument below is unaffected.
                        let ns =
                            buggify.magnitude(DecisionPoint::ShardBoundaryDelay, 1e5, 5e6);
                        arrival += SimDuration::from_nanos(ns as u64);
                    }
                    // The conservative-sync safety invariant: a packet
                    // sent during this window arrives no earlier than
                    // the window horizon. Checked subtraction — the
                    // saturating operator would mask a violation as
                    // "zero slack" (see SimTime::checked_sub).
                    debug_assert!(
                        arrival.checked_since(until).is_some(),
                        "causality violation: boundary packet sent at {sent_at} arrives at \
                         {arrival}, inside the window ending at {until}"
                    );
                    match exports.get(&packet.dst) {
                        Some(&(dst_cell, node)) => {
                            pending.push(Delivery {
                                cell: dst_cell,
                                at: arrival,
                                seq: route_seq,
                                node,
                                packet,
                            });
                            route_seq += 1;
                        }
                        None => stats.cross_unroutable += 1,
                    }
                }
            }
        }

        stats.cross_in_flight_at_end = pending.len() as u64;
        if let Some((_, evals, fires)) =
            buggify.counts().iter().find(|(n, _, _)| *n == DecisionPoint::ShardBoundaryDelay.name())
        {
            stats.boundary_delay_evals = *evals;
            stats.boundary_delay_fires = *fires;
        }

        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        let mut reports: Vec<Option<R>> = Vec::with_capacity(n_cells);
        reports.resize_with(n_cells, || None);
        for rx in &msg_rxs {
            let WorkerMsg::Finished { cells } = recv!(rx) else {
                unreachable!("worker spoke out of turn during finish")
            };
            for (idx, report, clock, events, fires) in cells {
                stats.final_clocks[idx] = clock;
                stats.events_processed += events;
                stats.cell_buggify_fires += fires;
                reports[idx] = Some(report);
            }
        }
        drop(cmd_txs);
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        let reports =
            reports.into_iter().map(|r| r.expect("every cell reports a result")).collect();
        ShardRun { reports, stats }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::node::NodeStats;
    use crate::udp::Datagram;
    use crate::world::{App, Ctx};
    use bytes::Bytes;

    /// Sends one UDP datagram per interval to a fixed destination,
    /// starting at t=interval.
    struct Beacon {
        dst: Addr,
        interval: SimDuration,
        remaining: u32,
    }

    impl App for Beacon {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_bind(9);
            ctx.set_timer(self.interval, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            ctx.udp_send(9, self.dst, 7, Bytes::from_static(b"beacon"));
            ctx.set_timer(self.interval, 0);
        }
    }

    /// Counts datagrams received on port 7.
    struct Sink;

    impl App for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_bind(7);
        }
        fn on_udp(&mut self, _ctx: &mut Ctx<'_>, _datagram: Datagram) {}
    }

    fn cell_addr(cell: usize, host: u8) -> Addr {
        Addr::new(10, cell as u8 + 1, 0, host)
    }

    /// A ring of cells: each cell's device beacons at the next cell's
    /// sink, so every packet crosses a boundary.
    fn ring_cells(n: usize, beacons: u32) -> Vec<CellSpec<(NodeStats, NodeStats, u64)>> {
        (0..n)
            .map(|cell| {
                let dst = cell_addr((cell + 1) % n, 2);
                CellSpec {
                    name: format!("cell{cell}"),
                    build: Box::new(move |world: &mut World| {
                        let device = world.add_node(cell_addr(cell, 1), "device");
                        let sink = world.add_node(cell_addr(cell, 2), "sink");
                        world.add_csma_link(&[device, sink], LinkConfig::lan_100mbps());
                        let beacon = world.add_app(
                            device,
                            Box::new(Beacon {
                                dst,
                                interval: SimDuration::from_millis(10),
                                remaining: beacons,
                            }),
                            crate::packet::Provenance::Benign,
                        );
                        let sink_app = world.add_app(
                            sink,
                            Box::new(Sink),
                            crate::packet::Provenance::Benign,
                        );
                        world.start_app(beacon, SimTime::ZERO);
                        world.start_app(sink_app, SimTime::ZERO);
                        let manifest = CellManifest {
                            exports: vec![(cell_addr(cell, 2), sink)],
                        };
                        (manifest, Box::new((device, sink)) as CellState)
                    }),
                    finish: Box::new(|world: &mut World, state: CellState| {
                        let (device, sink) = *state.downcast::<(NodeId, NodeId)>().unwrap();
                        (world.node_stats(device), world.node_stats(sink), world.events_processed())
                    }),
                }
            })
            .collect()
    }

    fn run_ring(shards: usize) -> ShardRun<(NodeStats, NodeStats, u64)> {
        let mut spec =
            ShardSpec::new(42, SimTime::from_secs(1), SimDuration::from_micros(500));
        spec.shards = shards;
        run_sharded(&spec, ring_cells(4, 20))
    }

    #[test]
    fn cross_cell_packets_arrive_and_conserve() {
        let run = run_ring(2);
        assert_eq!(run.stats.cells, 4);
        assert_eq!(run.stats.workers, 2);
        assert!(run.stats.rounds > 0);
        // 4 beacons x 20 packets, all cross-boundary.
        assert_eq!(run.stats.cross_sent, 80);
        assert_eq!(run.stats.conservation_violation(), None);
        assert_eq!(run.stats.clock_violation(SimTime::from_secs(1)), None);
        for (_, sink, _) in &run.reports {
            assert_eq!(sink.recv_packets, 20, "every beacon packet must arrive");
        }
    }

    #[test]
    fn shard_count_is_invariant() {
        let one = run_ring(1);
        let two = run_ring(2);
        let eight = run_ring(8);
        assert_eq!(one.reports, two.reports);
        assert_eq!(one.reports, eight.reports);
        // Worker count is the only field allowed to differ.
        assert_eq!(two.stats.workers, 2);
        assert_eq!(eight.stats.workers, 4, "8 shards clamp to 4 cells");
        let normalize = |mut s: ShardStats| {
            s.workers = 1;
            s
        };
        assert_eq!(one.stats, normalize(two.stats));
        assert_eq!(one.stats, normalize(eight.stats));
    }

    #[test]
    fn buggify_boundary_delay_fires_deterministically() {
        let run_with = |swarm_seed: u64| {
            let mut spec =
                ShardSpec::new(42, SimTime::from_secs(1), SimDuration::from_micros(500));
            spec.shards = 2;
            spec.buggify = BuggifyConfig::swarm(swarm_seed);
            run_sharded(&spec, ring_cells(4, 20))
        };
        let a = run_with(7);
        let b = run_with(7);
        assert_eq!(a.reports, b.reports, "same swarm seed must replay identically");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stats.boundary_delay_evals, a.stats.cross_sent);
        assert_eq!(a.stats.conservation_violation(), None);
        // At 80 evals and p=0.02 a fire is not guaranteed for every
        // seed; sweep a few to make sure the point can fire at all.
        let fired = (0..8).any(|s| run_with(s).stats.boundary_delay_fires > 0);
        assert!(fired, "shard.boundary_delay must be able to fire");
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let spec = ShardSpec::new(1, SimTime::from_secs(1), SimDuration::ZERO);
        let _ = run_sharded(&spec, ring_cells(1, 1));
    }

    #[test]
    fn unroutable_boundary_packets_are_counted() {
        let spec = ShardSpec::new(9, SimTime::from_millis(100), SimDuration::from_micros(100));
        let cells = vec![CellSpec {
            name: "lonely".to_owned(),
            build: Box::new(|world: &mut World| {
                let device = world.add_node(Addr::new(10, 1, 0, 1), "device");
                let peer = world.add_node(Addr::new(10, 1, 0, 2), "peer");
                world.add_csma_link(&[device, peer], LinkConfig::lan_100mbps());
                let app = world.add_app(
                    device,
                    Box::new(Beacon {
                        dst: Addr::new(99, 9, 9, 9),
                        interval: SimDuration::from_millis(10),
                        remaining: 3,
                    }),
                    crate::packet::Provenance::Benign,
                );
                world.start_app(app, SimTime::ZERO);
                (CellManifest::default(), Box::new(()) as CellState)
            }),
            finish: Box::new(|_world: &mut World, _state: CellState| ()),
        }];
        let run = run_sharded(&spec, cells);
        assert_eq!(run.stats.cross_sent, 3);
        assert_eq!(run.stats.cross_unroutable, 3);
        assert_eq!(run.stats.conservation_violation(), None);
    }
}
