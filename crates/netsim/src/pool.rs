//! Slab-backed packet pool with generation-stamped handles.
//!
//! The event queue and link lanes do not carry [`Packet`]s by value:
//! they carry 8-byte [`PacketId`] handles into a [`PacketPool`] owned
//! by the kernel. This keeps `Scheduled` (and therefore every binary
//! heap sift) small, and lets a CSMA/Wi-Fi broadcast fan out to N
//! receivers by bumping a refcount instead of cloning the packet N
//! times.
//!
//! Invariants (see DESIGN.md §10):
//!
//! - Every `PacketId` is created by [`PacketPool::insert`] with one
//!   reference, and dies on the [`PacketPool::release`] call that
//!   drops the last reference. At that point the slot's generation is
//!   bumped and its index joins the free list, so any leaked stale id
//!   panics loudly on [`PacketPool::get`] instead of silently reading
//!   a recycled packet.
//! - Floods reuse slots: steady-state traffic allocates nothing once
//!   the pool has grown to its high-water mark.
//! - The pool never hands out owned `Packet`s except on final release,
//!   so taps and sniffers observe `&Packet` borrows, never copies.

use crate::packet::Packet;

/// A handle to a pooled packet: slot index plus generation stamp.
///
/// `Copy` and 8 bytes, so events and lane queues move handles, not
/// packet bodies. A `PacketId` is only valid against the pool that
/// issued it, and only until the last reference is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    refs: u32,
    packet: Option<Packet>,
}

/// A free-list slab of in-flight packets.
///
/// ```
/// use netsim::packet::{Addr, Packet};
/// use netsim::pool::PacketPool;
/// use bytes::Bytes;
///
/// let mut pool = PacketPool::new();
/// let id = pool.insert(Packet::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2, Bytes::new()));
/// assert_eq!(pool.get(id).transport.dst_port(), 2);
/// let packet = pool.release(id).expect("last reference returns the packet");
/// assert_eq!(packet.transport.dst_port(), 2);
/// assert_eq!(pool.live(), 0);
/// ```
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    inserted_total: u64,
    reused_total: u64,
}

impl PacketPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `packet`, returning a handle holding one reference.
    ///
    /// Reuses a free slot when one exists (no allocation); otherwise
    /// grows the slab.
    pub fn insert(&mut self, packet: Packet) -> PacketId {
        self.inserted_total += 1;
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        if let Some(index) = self.free.pop() {
            self.reused_total += 1;
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.packet.is_none(), "free-list slot still occupied");
            slot.refs = 1;
            slot.packet = Some(packet);
            return PacketId { index, generation: slot.generation };
        }
        let index = u32::try_from(self.slots.len()).expect("packet pool exceeds u32 slots");
        self.slots.push(Slot { generation: 0, refs: 1, packet: Some(packet) });
        PacketId { index, generation: 0 }
    }

    /// Borrows the packet behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (its last reference was released) —
    /// that is always a kernel bug, never a recoverable condition.
    pub fn get(&self, id: PacketId) -> &Packet {
        let slot = &self.slots[id.index as usize];
        assert_eq!(slot.generation, id.generation, "stale PacketId {id:?}");
        slot.packet.as_ref().expect("live generation implies occupied slot")
    }

    /// Adds a reference to `id` (broadcast fan-out: one per extra
    /// receiver).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn retain(&mut self, id: PacketId) {
        let slot = &mut self.slots[id.index as usize];
        assert_eq!(slot.generation, id.generation, "stale PacketId {id:?}");
        slot.refs += 1;
    }

    /// Drops one reference to `id`. Returns the owned packet when this
    /// was the last reference (the slot is recycled), `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn release(&mut self, id: PacketId) -> Option<Packet> {
        let slot = &mut self.slots[id.index as usize];
        assert_eq!(slot.generation, id.generation, "stale PacketId {id:?}");
        slot.refs -= 1;
        if slot.refs > 0 {
            return None;
        }
        let packet = slot.packet.take().expect("live generation implies occupied slot");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
        Some(packet)
    }

    /// Number of live packets currently in the pool.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Maximum number of simultaneously live packets ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total packets ever inserted.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Inserts that reused a free slot instead of growing the slab.
    pub fn reused_total(&self) -> u64 {
        self.reused_total
    }

    /// Number of slots the slab has grown to (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use bytes::Bytes;

    fn udp(port: u16) -> Packet {
        Packet::udp(Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2), 1000, port, Bytes::new())
    }

    #[test]
    fn insert_get_release_roundtrip() {
        let mut pool = PacketPool::new();
        let id = pool.insert(udp(80));
        assert_eq!(pool.get(id).transport.dst_port(), 80);
        assert_eq!(pool.live(), 1);
        let packet = pool.release(id).expect("sole reference");
        assert_eq!(packet.transport.dst_port(), 80);
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn slots_are_reused_after_release() {
        let mut pool = PacketPool::new();
        for round in 0..100u16 {
            let id = pool.insert(udp(round));
            pool.release(id);
        }
        assert_eq!(pool.capacity(), 1, "steady-state traffic must not grow the slab");
        assert_eq!(pool.high_water(), 1);
        assert_eq!(pool.inserted_total(), 100);
        assert_eq!(pool.reused_total(), 99);
    }

    #[test]
    fn retain_defers_recycling_until_last_release() {
        let mut pool = PacketPool::new();
        let id = pool.insert(udp(53));
        pool.retain(id);
        pool.retain(id);
        assert!(pool.release(id).is_none());
        assert!(pool.release(id).is_none());
        assert_eq!(pool.get(id).transport.dst_port(), 53);
        assert!(pool.release(id).is_some());
        assert_eq!(pool.live(), 0);
    }

    #[test]
    #[should_panic(expected = "stale PacketId")]
    fn stale_id_panics_on_get() {
        let mut pool = PacketPool::new();
        let id = pool.insert(udp(1));
        pool.release(id);
        // The slot is recycled under a new generation; the old handle
        // must not resolve.
        let _ = pool.insert(udp(2));
        let _ = pool.get(id);
    }

    #[test]
    fn high_water_tracks_concurrent_liveness() {
        let mut pool = PacketPool::new();
        let ids: Vec<PacketId> = (0..8).map(|i| pool.insert(udp(i))).collect();
        assert_eq!(pool.high_water(), 8);
        for id in ids {
            pool.release(id);
        }
        let id = pool.insert(udp(9));
        assert_eq!(pool.high_water(), 8, "high water is a maximum, not current");
        assert_eq!(pool.live(), 1);
        pool.release(id);
    }
}
