//! Link models: full-duplex point-to-point links and shared CSMA buses.
//!
//! Both models serialise packets at a configured bandwidth, apply a
//! propagation delay, and drop on tail when a transmit queue is full —
//! which is exactly the mechanism by which a volumetric DDoS congests the
//! victim's access link. The CSMA bus mirrors NS-3's `CsmaChannel`: every
//! attached device has its own transmit queue, and a single transmission
//! occupies the shared medium at a time, arbitrated round-robin.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventQueue};
use crate::ids::{LinkId, NodeId};
use crate::packet::{Addr, Packet};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Static configuration of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Channel bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Per-lane transmit queue capacity in packets.
    pub queue_packets: usize,
    /// Independent per-packet loss probability (0 disables).
    pub loss_rate: f64,
}

impl LinkConfig {
    /// A 100 Mbit/s LAN profile with 50 µs delay, the default testbed link.
    pub fn lan_100mbps() -> Self {
        LinkConfig {
            bandwidth_bps: 100_000_000,
            delay: SimDuration::from_micros(50),
            queue_packets: 100,
            loss_rate: 0.0,
        }
    }

    /// A 54 Mbit/s Wi-Fi profile (802.11g-class) with mild channel loss.
    pub fn wifi_54mbps() -> Self {
        LinkConfig {
            bandwidth_bps: 54_000_000,
            delay: SimDuration::from_micros(20),
            queue_packets: 100,
            loss_rate: 0.002,
        }
    }

    /// A 1 Gbit/s profile for the TServer uplink.
    pub fn uplink_1gbps() -> Self {
        LinkConfig {
            bandwidth_bps: 1_000_000_000,
            delay: SimDuration::from_micros(100),
            queue_packets: 200,
            loss_rate: 0.0,
        }
    }

    /// Time to serialise `bytes` onto the wire at this bandwidth.
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        let nanos = (bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(nanos.max(1) as u64)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::lan_100mbps()
    }
}

/// Reason a packet never made it onto (or across) a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The transmit queue was full (tail drop).
    QueueFull,
    /// Random channel loss.
    Lost,
    /// No attached node has the destination address.
    Unroutable,
    /// The sending or receiving node was administratively down.
    NodeDown,
}

/// Traffic counters for a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets fully serialised onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialised onto the wire.
    pub tx_bytes: u64,
    /// Packets handed to receivers.
    pub delivered_packets: u64,
    /// Bytes handed to receivers.
    pub delivered_bytes: u64,
    /// Tail drops at full transmit queues.
    pub drops_queue_full: u64,
    /// Random channel losses.
    pub drops_lost: u64,
    /// Packets addressed to nobody on the link.
    pub drops_unroutable: u64,
}

#[derive(Debug)]
struct Lane {
    owner: NodeId,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
}

impl Lane {
    fn new(owner: NodeId) -> Self {
        Lane { owner, queue: VecDeque::new(), in_flight: None }
    }
}

#[derive(Debug)]
enum LinkKind {
    P2p { a: NodeId, b: NodeId },
    Csma { bus_busy: bool, rr_next: usize },
    /// IEEE 802.11-style shared medium: like CSMA, but every frame pays
    /// DIFS plus a random contention backoff before transmitting (DCF
    /// without collision modelling). Backoff randomness comes from a
    /// link-local LCG so links stay deterministic without threading the
    /// world RNG through the hot path.
    Wifi { medium_busy: bool, rr_next: usize, backoff_state: u64 },
}

/// 802.11 DIFS (distributed inter-frame space) before each frame.
const WIFI_DIFS: SimDuration = SimDuration::from_micros(34);
/// 802.11 slot time; backoff draws 0..WIFI_CW_SLOTS of these.
const WIFI_SLOT: SimDuration = SimDuration::from_micros(9);
/// Contention-window size in slots (fixed CWmin, no exponential growth).
const WIFI_CW_SLOTS: u64 = 16;

/// A simulated link.
#[derive(Debug)]
pub struct Link {
    id: LinkId,
    kind: LinkKind,
    config: LinkConfig,
    lanes: Vec<Lane>,
    stats: LinkStats,
}

/// Minimal view of a node the link needs for delivery resolution.
#[derive(Debug, Clone, Copy)]
pub struct EndpointInfo {
    /// The node's address.
    pub addr: Addr,
    /// Whether the node is administratively up.
    pub up: bool,
}

/// Resolves endpoint info for delivery targeting.
pub trait EndpointResolver {
    /// Looks up address/state for a node attached to the link.
    fn endpoint(&self, node: NodeId) -> EndpointInfo;
}

impl<F: Fn(NodeId) -> EndpointInfo> EndpointResolver for F {
    fn endpoint(&self, node: NodeId) -> EndpointInfo {
        self(node)
    }
}

impl Link {
    /// Creates a full-duplex point-to-point link between `a` and `b`.
    pub fn p2p(id: LinkId, a: NodeId, b: NodeId, config: LinkConfig) -> Self {
        Link {
            id,
            kind: LinkKind::P2p { a, b },
            config,
            lanes: vec![Lane::new(a), Lane::new(b)],
            stats: LinkStats::default(),
        }
    }

    /// Creates a shared CSMA bus over `members`.
    ///
    /// The bus may start empty; members can be attached later with
    /// [`Link::add_member`] (containers join the testbed bridge one at a
    /// time as they are deployed).
    pub fn csma(id: LinkId, members: &[NodeId], config: LinkConfig) -> Self {
        Link {
            id,
            kind: LinkKind::Csma { bus_busy: false, rr_next: 0 },
            config,
            lanes: members.iter().copied().map(Lane::new).collect(),
            stats: LinkStats::default(),
        }
    }

    /// Creates an 802.11-style shared medium over `members` (DDoSim's
    /// Wi-Fi network option): CSMA semantics plus DIFS + random backoff
    /// per frame, so contention overhead and jitter are modelled.
    pub fn wifi(id: LinkId, members: &[NodeId], config: LinkConfig) -> Self {
        Link {
            id,
            kind: LinkKind::Wifi {
                medium_busy: false,
                rr_next: 0,
                backoff_state: 0x9e37_79b9_7f4a_7c15 ^ id.as_raw() as u64,
            },
            config,
            lanes: members.iter().copied().map(Lane::new).collect(),
            stats: LinkStats::default(),
        }
    }

    /// The link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Current traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Nodes attached to this link.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.lanes.iter().map(|l| l.owner)
    }

    /// Whether `node` is attached to this link.
    pub fn has_member(&self, node: NodeId) -> bool {
        self.lanes.iter().any(|l| l.owner == node)
    }

    /// Attaches another member to a CSMA bus.
    ///
    /// # Panics
    ///
    /// Panics on point-to-point links.
    pub fn add_member(&mut self, node: NodeId) {
        match self.kind {
            LinkKind::Csma { .. } | LinkKind::Wifi { .. } => self.lanes.push(Lane::new(node)),
            LinkKind::P2p { .. } => panic!("cannot add members to a point-to-point link"),
        }
    }

    fn lane_of(&self, node: NodeId) -> Option<usize> {
        self.lanes.iter().position(|l| l.owner == node)
    }

    /// Total packets currently queued (all lanes).
    pub fn queued_packets(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len() + usize::from(l.in_flight.is_some())).sum()
    }

    /// Accepts a packet from `from` for transmission.
    ///
    /// Returns the drop reason if the packet was not accepted.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not attached to the link.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        from: NodeId,
        packet: Packet,
        queue: &mut EventQueue,
    ) -> Result<(), DropReason> {
        let lane_idx = self.lane_of(from).expect("sender is not attached to link");
        if self.lanes[lane_idx].queue.len() >= self.config.queue_packets {
            self.stats.drops_queue_full += 1;
            return Err(DropReason::QueueFull);
        }
        self.lanes[lane_idx].queue.push_back(packet);
        self.try_start_tx(now, queue);
        Ok(())
    }

    /// Starts transmissions on any idle lane/bus with pending packets.
    fn try_start_tx(&mut self, now: SimTime, queue: &mut EventQueue) {
        match &mut self.kind {
            LinkKind::P2p { .. } => {
                for lane_idx in 0..self.lanes.len() {
                    self.start_lane_if_idle(now, lane_idx, queue);
                }
            }
            LinkKind::Csma { bus_busy, rr_next } => {
                if *bus_busy {
                    return;
                }
                let n = self.lanes.len();
                let start = *rr_next;
                for offset in 0..n {
                    let lane_idx = (start + offset) % n;
                    if !self.lanes[lane_idx].queue.is_empty() {
                        *rr_next = (lane_idx + 1) % n;
                        *bus_busy = true;
                        self.begin_tx(now, lane_idx, SimDuration::ZERO, queue);
                        return;
                    }
                }
            }
            LinkKind::Wifi { medium_busy, rr_next, backoff_state } => {
                if *medium_busy {
                    return;
                }
                let n = self.lanes.len();
                let start = *rr_next;
                for offset in 0..n {
                    let lane_idx = (start + offset) % n;
                    if !self.lanes[lane_idx].queue.is_empty() {
                        *rr_next = (lane_idx + 1) % n;
                        *medium_busy = true;
                        // xorshift* step for the backoff draw.
                        let mut x = *backoff_state;
                        x ^= x >> 12;
                        x ^= x << 25;
                        x ^= x >> 27;
                        *backoff_state = x;
                        let slots = x.wrapping_mul(0x2545_f491_4f6c_dd1d) % WIFI_CW_SLOTS;
                        let overhead = WIFI_DIFS + WIFI_SLOT * slots;
                        self.begin_tx(now, lane_idx, overhead, queue);
                        return;
                    }
                }
            }
        }
    }

    fn start_lane_if_idle(&mut self, now: SimTime, lane_idx: usize, queue: &mut EventQueue) {
        if self.lanes[lane_idx].in_flight.is_none() && !self.lanes[lane_idx].queue.is_empty() {
            self.begin_tx(now, lane_idx, SimDuration::ZERO, queue);
        }
    }

    fn begin_tx(
        &mut self,
        now: SimTime,
        lane_idx: usize,
        access_overhead: SimDuration,
        queue: &mut EventQueue,
    ) {
        let packet = self.lanes[lane_idx].queue.pop_front().expect("checked non-empty");
        let ser = self.config.serialization_time(packet.wire_len());
        self.lanes[lane_idx].in_flight = Some(packet);
        queue.schedule(
            now + access_overhead + ser,
            Event::LinkTxComplete { link: self.id, lane: lane_idx },
        );
    }

    /// Completes the in-flight transmission on `lane`, scheduling delivery
    /// events and starting the next pending transmission.
    pub fn on_tx_complete<R: EndpointResolver>(
        &mut self,
        now: SimTime,
        lane_idx: usize,
        resolver: &R,
        queue: &mut EventQueue,
        rng: &mut SimRng,
    ) {
        let packet = self.lanes[lane_idx]
            .in_flight
            .take()
            .expect("tx-complete event for an idle lane");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += packet.wire_len() as u64;
        let sender = self.lanes[lane_idx].owner;

        match &mut self.kind {
            LinkKind::Csma { bus_busy, .. } => *bus_busy = false,
            LinkKind::Wifi { medium_busy, .. } => *medium_busy = false,
            LinkKind::P2p { .. } => {}
        }

        if self.config.loss_rate > 0.0 && rng.chance(self.config.loss_rate) {
            self.stats.drops_lost += 1;
        } else {
            self.deliver_targets(now, sender, packet, resolver, queue);
        }

        self.try_start_tx(now, queue);
    }

    fn deliver_targets<R: EndpointResolver>(
        &mut self,
        now: SimTime,
        sender: NodeId,
        packet: Packet,
        resolver: &R,
        queue: &mut EventQueue,
    ) {
        let arrive = now + self.config.delay;
        match self.kind {
            LinkKind::P2p { a, b } => {
                let target = if sender == a { b } else { a };
                self.stats.delivered_packets += 1;
                self.stats.delivered_bytes += packet.wire_len() as u64;
                queue.schedule(arrive, Event::Deliver { link: self.id, node: target, packet });
            }
            LinkKind::Csma { .. } | LinkKind::Wifi { .. } => {
                if packet.dst == Addr::BROADCAST {
                    let targets: Vec<NodeId> =
                        self.lanes.iter().map(|l| l.owner).filter(|&n| n != sender).collect();
                    for target in targets {
                        self.stats.delivered_packets += 1;
                        self.stats.delivered_bytes += packet.wire_len() as u64;
                        queue.schedule(
                            arrive,
                            Event::Deliver { link: self.id, node: target, packet: packet.clone() },
                        );
                    }
                } else {
                    let target =
                        self.lanes.iter().map(|l| l.owner).find(|&n| resolver.endpoint(n).addr == packet.dst);
                    match target {
                        Some(target) => {
                            self.stats.delivered_packets += 1;
                            self.stats.delivered_bytes += packet.wire_len() as u64;
                            queue.schedule(arrive, Event::Deliver { link: self.id, node: target, packet });
                        }
                        None => self.stats.drops_unroutable += 1,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn packet(dst: Addr, len: usize) -> Packet {
        Packet::udp(Addr::new(10, 0, 0, 1), dst, 1111, 2222, Bytes::from(vec![0u8; len]))
    }

    fn resolver(table: Vec<(NodeId, Addr)>) -> impl EndpointResolver {
        move |node: NodeId| {
            let addr = table.iter().find(|(n, _)| *n == node).map(|(_, a)| *a).unwrap_or(Addr::UNSPECIFIED);
            EndpointInfo { addr, up: true }
        }
    }

    fn drain(
        link: &mut Link,
        queue: &mut EventQueue,
        resolver: &impl EndpointResolver,
        rng: &mut SimRng,
    ) -> Vec<(SimTime, NodeId, Packet)> {
        let mut deliveries = Vec::new();
        while let Some((t, ev)) = queue.pop() {
            match ev {
                Event::LinkTxComplete { lane, .. } => link.on_tx_complete(t, lane, resolver, queue, rng),
                Event::Deliver { node, packet, .. } => deliveries.push((t, node, packet)),
                other => panic!("unexpected event {other:?}"),
            }
        }
        deliveries
    }

    #[test]
    fn serialization_time_scales_with_bytes() {
        let cfg = LinkConfig { bandwidth_bps: 8_000_000, ..LinkConfig::lan_100mbps() };
        // 8 Mbit/s = 1 byte/us.
        assert_eq!(cfg.serialization_time(1000), SimDuration::from_micros(1000));
    }

    #[test]
    fn p2p_delivers_to_peer_after_ser_plus_delay() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_millis(1),
            queue_packets: 10,
            loss_rate: 0.0,
        };
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
        let mut queue = EventQueue::new();
        let mut rng = SimRng::seed_from(1);
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);

        let p = packet(Addr::new(10, 0, 0, 2), 972); // 1000 bytes on the wire
        let wire = p.wire_len();
        assert_eq!(wire, 1000);
        link.enqueue(SimTime::ZERO, a, p, &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut queue, &res, &mut rng);
        assert_eq!(deliveries.len(), 1);
        let (t, node, _) = &deliveries[0];
        assert_eq!(*node, b);
        assert_eq!(*t, SimTime::ZERO + SimDuration::from_micros(1000) + SimDuration::from_millis(1));
        assert_eq!(link.stats().tx_packets, 1);
        assert_eq!(link.stats().delivered_packets, 1);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig { queue_packets: 2, ..LinkConfig::lan_100mbps() };
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
        let mut queue = EventQueue::new();

        // First fill: one in flight + two queued, the rest dropped.
        for _ in 0..5 {
            let _ = link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), &mut queue);
        }
        assert_eq!(link.stats().drops_queue_full, 2);
        assert_eq!(link.queued_packets(), 3);
    }

    #[test]
    fn csma_shares_the_bus_round_robin() {
        let nodes: Vec<NodeId> = (0..3).map(NodeId::from_raw).collect();
        let addrs: Vec<Addr> = (0..3).map(|i| Addr::new(10, 0, 0, i as u8 + 1)).collect();
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_micros(10),
            queue_packets: 10,
            loss_rate: 0.0,
        };
        let mut link = Link::csma(LinkId::from_raw(0), &nodes, cfg);
        let mut queue = EventQueue::new();
        let mut rng = SimRng::seed_from(2);
        let res = resolver(nodes.iter().copied().zip(addrs.iter().copied()).collect());

        // Nodes 0 and 1 both flood node 2; transmissions must interleave.
        for _ in 0..3 {
            link.enqueue(SimTime::ZERO, nodes[0], packet(addrs[2], 100), &mut queue).unwrap();
            link.enqueue(SimTime::ZERO, nodes[1], packet(addrs[2], 100), &mut queue).unwrap();
        }
        let deliveries = drain(&mut link, &mut queue, &res, &mut rng);
        assert_eq!(deliveries.len(), 6);
        // Delivery times strictly increase: the bus serialises one at a time.
        for w in deliveries.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn csma_unroutable_is_counted_not_delivered() {
        let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let mut link = Link::csma(LinkId::from_raw(0), &nodes, LinkConfig::lan_100mbps());
        let mut queue = EventQueue::new();
        let mut rng = SimRng::seed_from(3);
        let res = resolver(vec![
            (nodes[0], Addr::new(10, 0, 0, 1)),
            (nodes[1], Addr::new(10, 0, 0, 2)),
        ]);
        link.enqueue(SimTime::ZERO, nodes[0], packet(Addr::new(10, 0, 0, 99), 100), &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut queue, &res, &mut rng);
        assert!(deliveries.is_empty());
        assert_eq!(link.stats().drops_unroutable, 1);
    }

    #[test]
    fn csma_broadcast_reaches_everyone_but_sender() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
        let mut link = Link::csma(LinkId::from_raw(0), &nodes, LinkConfig::lan_100mbps());
        let mut queue = EventQueue::new();
        let mut rng = SimRng::seed_from(4);
        let res = resolver(nodes.iter().map(|&n| (n, Addr::new(10, 0, 0, n.as_raw() as u8 + 1))).collect());
        link.enqueue(SimTime::ZERO, nodes[0], packet(Addr::BROADCAST, 10), &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut queue, &res, &mut rng);
        let mut receivers: Vec<u32> = deliveries.iter().map(|(_, n, _)| n.as_raw()).collect();
        receivers.sort_unstable();
        assert_eq!(receivers, vec![1, 2, 3]);
    }

    #[test]
    fn total_loss_drops_everything() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig { loss_rate: 1.0, ..LinkConfig::lan_100mbps() };
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
        let mut queue = EventQueue::new();
        let mut rng = SimRng::seed_from(5);
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);
        for _ in 0..5 {
            link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), &mut queue).unwrap();
        }
        let deliveries = drain(&mut link, &mut queue, &res, &mut rng);
        assert!(deliveries.is_empty());
        assert_eq!(link.stats().drops_lost, 5);
    }

    #[test]
    fn wifi_pays_contention_overhead() {
        // Identical traffic over CSMA vs Wi-Fi: Wi-Fi finishes later
        // because every frame pays DIFS + backoff.
        let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let addrs = [Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)];
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_micros(10),
            queue_packets: 64,
            loss_rate: 0.0,
        };
        let res = resolver(nodes.iter().copied().zip(addrs.iter().copied()).collect());
        let finish = |mut link: Link| {
            let mut queue = EventQueue::new();
            let mut rng = SimRng::seed_from(9);
            for _ in 0..20 {
                link.enqueue(SimTime::ZERO, nodes[0], packet(addrs[1], 100), &mut queue).unwrap();
            }
            let deliveries = drain(&mut link, &mut queue, &res, &mut rng);
            assert_eq!(deliveries.len(), 20);
            deliveries.last().unwrap().0
        };
        let csma_done = finish(Link::csma(LinkId::from_raw(0), &nodes, cfg));
        let wifi_done = finish(Link::wifi(LinkId::from_raw(1), &nodes, cfg));
        assert!(wifi_done > csma_done, "wifi {wifi_done} vs csma {csma_done}");
        // Overhead is bounded: at most DIFS + CW slots per frame.
        let max_overhead = (SimDuration::from_micros(34)
            + SimDuration::from_micros(9) * 16)
            * 20;
        assert!(wifi_done - csma_done <= max_overhead);
    }

    #[test]
    fn wifi_backoff_is_deterministic_per_link() {
        let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let addrs = [Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)];
        let res = resolver(nodes.iter().copied().zip(addrs.iter().copied()).collect());
        let run = || {
            let mut link = Link::wifi(LinkId::from_raw(3), &nodes, LinkConfig::wifi_54mbps());
            let mut queue = EventQueue::new();
            let mut rng = SimRng::seed_from(1);
            for _ in 0..10 {
                link.enqueue(SimTime::ZERO, nodes[0], packet(addrs[1], 200), &mut queue).unwrap();
            }
            drain(&mut link, &mut queue, &res, &mut rng)
                .into_iter()
                .map(|(t, _, _)| t)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "point-to-point")]
    fn p2p_rejects_extra_members() {
        let mut link = Link::p2p(
            LinkId::from_raw(0),
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            LinkConfig::default(),
        );
        link.add_member(NodeId::from_raw(2));
    }
}
