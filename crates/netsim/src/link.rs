//! Link models: full-duplex point-to-point links and shared CSMA buses.
//!
//! Both models serialise packets at a configured bandwidth, apply a
//! propagation delay, and drop on tail when a transmit queue is full —
//! which is exactly the mechanism by which a volumetric DDoS congests the
//! victim's access link. The CSMA bus mirrors NS-3's `CsmaChannel`: every
//! attached device has its own transmit queue, and a single transmission
//! occupies the shared medium at a time, arbitrated round-robin.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventQueue};
use crate::ids::{LinkId, NodeId};
use crate::packet::{Addr, Packet};
use crate::pool::{PacketId, PacketPool};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Static configuration of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Channel bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Per-lane transmit queue capacity in packets.
    pub queue_packets: usize,
    /// Independent per-packet loss probability (0 disables).
    pub loss_rate: f64,
}

impl LinkConfig {
    /// A 100 Mbit/s LAN profile with 50 µs delay, the default testbed link.
    pub fn lan_100mbps() -> Self {
        LinkConfig {
            bandwidth_bps: 100_000_000,
            delay: SimDuration::from_micros(50),
            queue_packets: 100,
            loss_rate: 0.0,
        }
    }

    /// A 54 Mbit/s Wi-Fi profile (802.11g-class) with mild channel loss.
    pub fn wifi_54mbps() -> Self {
        LinkConfig {
            bandwidth_bps: 54_000_000,
            delay: SimDuration::from_micros(20),
            queue_packets: 100,
            loss_rate: 0.002,
        }
    }

    /// A 1 Gbit/s profile for the TServer uplink.
    pub fn uplink_1gbps() -> Self {
        LinkConfig {
            bandwidth_bps: 1_000_000_000,
            delay: SimDuration::from_micros(100),
            queue_packets: 200,
            loss_rate: 0.0,
        }
    }

    /// Time to serialise `bytes` onto the wire at this bandwidth.
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        let nanos = (bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(nanos.max(1) as u64)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::lan_100mbps()
    }
}

/// Reason a packet never made it onto (or across) a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The transmit queue was full (tail drop).
    QueueFull,
    /// Random channel loss.
    Lost,
    /// No attached node has the destination address.
    Unroutable,
    /// The sending or receiving node was administratively down.
    NodeDown,
    /// The link itself was administratively down (fault-plan flap).
    LinkDown,
}

/// Traffic counters for a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets fully serialised onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialised onto the wire.
    pub tx_bytes: u64,
    /// Packets handed to receivers.
    pub delivered_packets: u64,
    /// Bytes handed to receivers.
    pub delivered_bytes: u64,
    /// Tail drops at full transmit queues.
    pub drops_queue_full: u64,
    /// Random channel losses.
    pub drops_lost: u64,
    /// Packets addressed to nobody on the link.
    pub drops_unroutable: u64,
    /// Packets rejected or destroyed because the link was down.
    pub drops_link_down: u64,
}

/// A queued transmission: the pool handle plus the two packet fields
/// the link layer needs (serialisation length and routing target),
/// cached so the hot path never dereferences the pool.
#[derive(Debug, Clone, Copy)]
struct QueuedFrame {
    id: PacketId,
    wire_len: u32,
    dst: Addr,
}

#[derive(Debug)]
struct Lane {
    owner: NodeId,
    queue: VecDeque<QueuedFrame>,
    in_flight: Option<QueuedFrame>,
}

impl Lane {
    fn new(owner: NodeId) -> Self {
        Lane { owner, queue: VecDeque::new(), in_flight: None }
    }
}

#[derive(Debug)]
enum LinkKind {
    P2p { a: NodeId, b: NodeId },
    Csma { bus_busy: bool, rr_next: usize },
    /// IEEE 802.11-style shared medium: like CSMA, but every frame pays
    /// DIFS plus a random contention backoff before transmitting (DCF
    /// without collision modelling). Backoff randomness comes from a
    /// link-local LCG so links stay deterministic without threading the
    /// world RNG through the hot path.
    Wifi { medium_busy: bool, rr_next: usize, backoff_state: u64 },
}

/// 802.11 DIFS (distributed inter-frame space) before each frame.
const WIFI_DIFS: SimDuration = SimDuration::from_micros(34);
/// 802.11 slot time; backoff draws 0..WIFI_CW_SLOTS of these.
const WIFI_SLOT: SimDuration = SimDuration::from_micros(9);
/// Contention-window size in slots (fixed CWmin, no exponential growth).
const WIFI_CW_SLOTS: u64 = 16;

/// A simulated link.
#[derive(Debug)]
pub struct Link {
    id: LinkId,
    kind: LinkKind,
    config: LinkConfig,
    lanes: Vec<Lane>,
    stats: LinkStats,
    /// Administrative state; fault plans flap this.
    up: bool,
    /// Fault-plan replacement for `config.loss_rate` while `Some`.
    loss_override: Option<f64>,
    /// Fault-plan bandwidth multiplier (1.0 = nominal).
    bandwidth_scale: f64,
    /// Fault-plan extra one-way delay on top of `config.delay`.
    extra_delay: SimDuration,
    /// Private RNG for channel-loss draws. One value is consumed per
    /// transmitted frame regardless of loss configuration or queue
    /// state, so enabling loss on this link never shifts the random
    /// stream of any other component.
    loss_rng: SimRng,
}

/// Minimal view of a node the link needs for delivery resolution.
#[derive(Debug, Clone, Copy)]
pub struct EndpointInfo {
    /// The node's address.
    pub addr: Addr,
    /// Whether the node is administratively up.
    pub up: bool,
}

/// Resolves endpoint info for delivery targeting.
pub trait EndpointResolver {
    /// Looks up address/state for a node attached to the link.
    fn endpoint(&self, node: NodeId) -> EndpointInfo;
}

impl<F: Fn(NodeId) -> EndpointInfo> EndpointResolver for F {
    fn endpoint(&self, node: NodeId) -> EndpointInfo {
        self(node)
    }
}

impl Link {
    /// Seed for a link's private loss RNG when none is supplied via
    /// [`Link::seed_loss_rng`] (golden-ratio mix of the link id, the
    /// same idiom as the Wi-Fi backoff LCG).
    fn default_loss_seed(id: LinkId) -> u64 {
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.as_raw() as u64 + 1)
    }

    fn with_kind(id: LinkId, kind: LinkKind, config: LinkConfig, lanes: Vec<Lane>) -> Self {
        Link {
            id,
            kind,
            config,
            lanes,
            stats: LinkStats::default(),
            up: true,
            loss_override: None,
            bandwidth_scale: 1.0,
            extra_delay: SimDuration::ZERO,
            loss_rng: SimRng::seed_from(Self::default_loss_seed(id)),
        }
    }

    /// Creates a full-duplex point-to-point link between `a` and `b`.
    pub fn p2p(id: LinkId, a: NodeId, b: NodeId, config: LinkConfig) -> Self {
        Link::with_kind(id, LinkKind::P2p { a, b }, config, vec![Lane::new(a), Lane::new(b)])
    }

    /// Creates a shared CSMA bus over `members`.
    ///
    /// The bus may start empty; members can be attached later with
    /// [`Link::add_member`] (containers join the testbed bridge one at a
    /// time as they are deployed).
    pub fn csma(id: LinkId, members: &[NodeId], config: LinkConfig) -> Self {
        Link::with_kind(
            id,
            LinkKind::Csma { bus_busy: false, rr_next: 0 },
            config,
            members.iter().copied().map(Lane::new).collect(),
        )
    }

    /// Creates an 802.11-style shared medium over `members` (DDoSim's
    /// Wi-Fi network option): CSMA semantics plus DIFS + random backoff
    /// per frame, so contention overhead and jitter are modelled.
    pub fn wifi(id: LinkId, members: &[NodeId], config: LinkConfig) -> Self {
        Link::with_kind(
            id,
            LinkKind::Wifi {
                medium_busy: false,
                rr_next: 0,
                backoff_state: 0x9e37_79b9_7f4a_7c15 ^ id.as_raw() as u64,
            },
            config,
            members.iter().copied().map(Lane::new).collect(),
        )
    }

    /// Reseeds the private loss RNG (the world mixes its root seed in at
    /// link creation so whole runs stay a pure function of one seed).
    pub fn seed_loss_rng(&mut self, seed: u64) {
        self.loss_rng = SimRng::seed_from(seed);
    }

    /// The link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Current traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Whether the link is administratively up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Raises or cuts the link. Cutting destroys nothing that is
    /// already queued, but frames finishing serialisation while the
    /// link is down are destroyed (counted in `drops_link_down`), and
    /// new enqueues are rejected. Restoring the link restarts any
    /// stalled lanes.
    pub fn set_up(&mut self, now: SimTime, up: bool, queue: &mut EventQueue) {
        if self.up == up {
            return;
        }
        self.up = up;
        if up {
            self.try_start_tx(now, queue);
        }
    }

    /// Overrides the configured loss rate (`None` restores it).
    pub fn set_loss_override(&mut self, rate: Option<f64>) {
        self.loss_override = rate.map(|r| r.clamp(0.0, 1.0));
    }

    /// The loss probability currently in force.
    pub fn effective_loss_rate(&self) -> f64 {
        self.loss_override.unwrap_or(self.config.loss_rate)
    }

    /// Scales the effective bandwidth (throttling). Clamped to a small
    /// positive floor so serialisation time stays finite.
    pub fn set_bandwidth_scale(&mut self, scale: f64) {
        self.bandwidth_scale = scale.max(1e-6);
    }

    /// The current bandwidth multiplier.
    pub fn bandwidth_scale(&self) -> f64 {
        self.bandwidth_scale
    }

    /// Sets extra one-way delay on top of the configured propagation
    /// delay (latency jitter).
    pub fn set_extra_delay(&mut self, delay: SimDuration) {
        self.extra_delay = delay;
    }

    /// The extra one-way delay currently in force.
    pub fn extra_delay(&self) -> SimDuration {
        self.extra_delay
    }

    /// Nodes attached to this link.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.lanes.iter().map(|l| l.owner)
    }

    /// Whether `node` is attached to this link.
    pub fn has_member(&self, node: NodeId) -> bool {
        self.lanes.iter().any(|l| l.owner == node)
    }

    /// Attaches another member to a CSMA bus.
    ///
    /// # Panics
    ///
    /// Panics on point-to-point links.
    pub fn add_member(&mut self, node: NodeId) {
        match self.kind {
            LinkKind::Csma { .. } | LinkKind::Wifi { .. } => self.lanes.push(Lane::new(node)),
            LinkKind::P2p { .. } => panic!("cannot add members to a point-to-point link"),
        }
    }

    fn lane_of(&self, node: NodeId) -> Option<usize> {
        self.lanes.iter().position(|l| l.owner == node)
    }

    /// Total packets currently queued (all lanes).
    pub fn queued_packets(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len() + usize::from(l.in_flight.is_some())).sum()
    }

    /// Accepts a packet from `from` for transmission.
    ///
    /// Returns the drop reason if the packet was not accepted. The
    /// packet body enters `pool` only on acceptance: drop paths never
    /// touch the pool, so rejected packets cost no slot churn.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not attached to the link.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        from: NodeId,
        packet: Packet,
        pool: &mut PacketPool,
        queue: &mut EventQueue,
    ) -> Result<(), DropReason> {
        let lane_idx = self.lane_of(from).expect("sender is not attached to link");
        if !self.up {
            self.stats.drops_link_down += 1;
            return Err(DropReason::LinkDown);
        }
        if self.lanes[lane_idx].queue.len() >= self.config.queue_packets {
            self.stats.drops_queue_full += 1;
            return Err(DropReason::QueueFull);
        }
        let frame = QueuedFrame {
            wire_len: packet.wire_len() as u32,
            dst: packet.dst,
            id: pool.insert(packet),
        };
        self.lanes[lane_idx].queue.push_back(frame);
        self.try_start_tx(now, queue);
        Ok(())
    }

    /// Starts transmissions on any idle lane/bus with pending packets.
    fn try_start_tx(&mut self, now: SimTime, queue: &mut EventQueue) {
        if !self.up {
            return;
        }
        match &mut self.kind {
            LinkKind::P2p { .. } => {
                for lane_idx in 0..self.lanes.len() {
                    self.start_lane_if_idle(now, lane_idx, queue);
                }
            }
            LinkKind::Csma { bus_busy, rr_next } => {
                if *bus_busy {
                    return;
                }
                let n = self.lanes.len();
                let start = *rr_next;
                for offset in 0..n {
                    let lane_idx = (start + offset) % n;
                    if !self.lanes[lane_idx].queue.is_empty() {
                        *rr_next = (lane_idx + 1) % n;
                        *bus_busy = true;
                        self.begin_tx(now, lane_idx, SimDuration::ZERO, queue);
                        return;
                    }
                }
            }
            LinkKind::Wifi { medium_busy, rr_next, backoff_state } => {
                if *medium_busy {
                    return;
                }
                let n = self.lanes.len();
                let start = *rr_next;
                for offset in 0..n {
                    let lane_idx = (start + offset) % n;
                    if !self.lanes[lane_idx].queue.is_empty() {
                        *rr_next = (lane_idx + 1) % n;
                        *medium_busy = true;
                        // xorshift* step for the backoff draw.
                        let mut x = *backoff_state;
                        x ^= x >> 12;
                        x ^= x << 25;
                        x ^= x >> 27;
                        *backoff_state = x;
                        let slots = x.wrapping_mul(0x2545_f491_4f6c_dd1d) % WIFI_CW_SLOTS;
                        let overhead = WIFI_DIFS + WIFI_SLOT * slots;
                        self.begin_tx(now, lane_idx, overhead, queue);
                        return;
                    }
                }
            }
        }
    }

    fn start_lane_if_idle(&mut self, now: SimTime, lane_idx: usize, queue: &mut EventQueue) {
        if self.lanes[lane_idx].in_flight.is_none() && !self.lanes[lane_idx].queue.is_empty() {
            self.begin_tx(now, lane_idx, SimDuration::ZERO, queue);
        }
    }

    fn begin_tx(
        &mut self,
        now: SimTime,
        lane_idx: usize,
        access_overhead: SimDuration,
        queue: &mut EventQueue,
    ) {
        // Invariant: every caller (`start_lane_if_idle` and the CSMA /
        // Wi-Fi arbitration loops) selects `lane_idx` only after
        // observing a non-empty queue, and nothing dequeues in between.
        let frame = self.lanes[lane_idx]
            .queue
            .pop_front()
            .expect("begin_tx called on a lane whose queue was checked non-empty");
        let base = self.config.serialization_time(frame.wire_len as usize);
        let ser = if self.bandwidth_scale == 1.0 {
            base
        } else {
            SimDuration::from_secs_f64(base.as_secs_f64() / self.bandwidth_scale)
        };
        self.lanes[lane_idx].in_flight = Some(frame);
        queue.schedule(
            now + access_overhead + ser,
            Event::LinkTxComplete { link: self.id, lane: lane_idx },
        );
    }

    /// Completes the in-flight transmission on `lane`, scheduling delivery
    /// events and starting the next pending transmission.
    ///
    /// # Panics
    ///
    /// Panics if the lane has no in-flight packet. Each
    /// `LinkTxComplete` event is scheduled by exactly one `begin_tx`
    /// (which sets `in_flight`), and nothing else clears the slot, so
    /// this fires only on a corrupted event stream — e.g. a
    /// hand-crafted or double-delivered event.
    pub fn on_tx_complete<R: EndpointResolver>(
        &mut self,
        now: SimTime,
        lane_idx: usize,
        resolver: &R,
        pool: &mut PacketPool,
        queue: &mut EventQueue,
    ) {
        let frame = self.lanes[lane_idx]
            .in_flight
            .take()
            .expect("tx-complete event for an idle lane");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += frame.wire_len as u64;
        let sender = self.lanes[lane_idx].owner;

        match &mut self.kind {
            LinkKind::Csma { bus_busy, .. } => *bus_busy = false,
            LinkKind::Wifi { medium_busy, .. } => *medium_busy = false,
            LinkKind::P2p { .. } => {}
        }

        // Exactly one draw per transmitted frame, unconditionally: the
        // stream position is a function of the frame sequence alone, so
        // loss configuration (or a fault-plan override toggling mid-run)
        // never shifts which later frames get lost.
        let lost = self.loss_rng.chance(self.effective_loss_rate());
        if !self.up {
            // The link was cut while the frame was on the wire.
            self.stats.drops_link_down += 1;
            pool.release(frame.id);
        } else if lost {
            self.stats.drops_lost += 1;
            pool.release(frame.id);
        } else {
            self.deliver_targets(now, sender, frame, resolver, pool, queue);
        }

        self.try_start_tx(now, queue);
    }

    fn deliver_targets<R: EndpointResolver>(
        &mut self,
        now: SimTime,
        sender: NodeId,
        frame: QueuedFrame,
        resolver: &R,
        pool: &mut PacketPool,
        queue: &mut EventQueue,
    ) {
        let arrive = now + self.config.delay + self.extra_delay;
        match self.kind {
            LinkKind::P2p { a, b } => {
                let target = if sender == a { b } else { a };
                self.stats.delivered_packets += 1;
                self.stats.delivered_bytes += frame.wire_len as u64;
                queue.schedule(arrive, Event::Deliver { link: self.id, node: target, packet: frame.id });
            }
            LinkKind::Csma { .. } | LinkKind::Wifi { .. } => {
                if frame.dst == Addr::BROADCAST {
                    // Fan-out bumps the pool refcount per extra receiver
                    // instead of cloning the packet body; the last
                    // receiver's `release` recycles the slot.
                    let mut targets = 0u32;
                    for i in 0..self.lanes.len() {
                        let target = self.lanes[i].owner;
                        if target == sender {
                            continue;
                        }
                        if targets > 0 {
                            pool.retain(frame.id);
                        }
                        targets += 1;
                        self.stats.delivered_packets += 1;
                        self.stats.delivered_bytes += frame.wire_len as u64;
                        queue.schedule(
                            arrive,
                            Event::Deliver { link: self.id, node: target, packet: frame.id },
                        );
                    }
                    if targets == 0 {
                        // A one-member bus: nobody to receive.
                        pool.release(frame.id);
                    }
                } else {
                    let target =
                        self.lanes.iter().map(|l| l.owner).find(|&n| resolver.endpoint(n).addr == frame.dst);
                    match target {
                        Some(target) => {
                            self.stats.delivered_packets += 1;
                            self.stats.delivered_bytes += frame.wire_len as u64;
                            queue.schedule(arrive, Event::Deliver { link: self.id, node: target, packet: frame.id });
                        }
                        None => {
                            self.stats.drops_unroutable += 1;
                            pool.release(frame.id);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn packet(dst: Addr, len: usize) -> Packet {
        Packet::udp(Addr::new(10, 0, 0, 1), dst, 1111, 2222, Bytes::from(vec![0u8; len]))
    }

    fn resolver(table: Vec<(NodeId, Addr)>) -> impl EndpointResolver {
        move |node: NodeId| {
            let addr = table.iter().find(|(n, _)| *n == node).map(|(_, a)| *a).unwrap_or(Addr::UNSPECIFIED);
            EndpointInfo { addr, up: true }
        }
    }

    fn drain(
        link: &mut Link,
        pool: &mut PacketPool,
        queue: &mut EventQueue,
        resolver: &impl EndpointResolver,
    ) -> Vec<(SimTime, NodeId, Packet)> {
        let mut deliveries = Vec::new();
        while let Some((t, ev)) = queue.pop() {
            match ev {
                Event::LinkTxComplete { lane, .. } => {
                    link.on_tx_complete(t, lane, resolver, pool, queue)
                }
                Event::Deliver { node, packet, .. } => {
                    let body = pool.get(packet).clone();
                    pool.release(packet);
                    deliveries.push((t, node, body));
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(pool.live(), link.queued_packets(), "pool leaks packets beyond queued frames");
        deliveries
    }

    #[test]
    fn serialization_time_scales_with_bytes() {
        let cfg = LinkConfig { bandwidth_bps: 8_000_000, ..LinkConfig::lan_100mbps() };
        // 8 Mbit/s = 1 byte/us.
        assert_eq!(cfg.serialization_time(1000), SimDuration::from_micros(1000));
    }

    #[test]
    fn p2p_delivers_to_peer_after_ser_plus_delay() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_millis(1),
            queue_packets: 10,
            loss_rate: 0.0,
        };
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);

        let p = packet(Addr::new(10, 0, 0, 2), 972); // 1000 bytes on the wire
        let wire = p.wire_len();
        assert_eq!(wire, 1000);
        link.enqueue(SimTime::ZERO, a, p, &mut pool, &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        assert_eq!(deliveries.len(), 1);
        let (t, node, _) = &deliveries[0];
        assert_eq!(*node, b);
        assert_eq!(*t, SimTime::ZERO + SimDuration::from_micros(1000) + SimDuration::from_millis(1));
        assert_eq!(link.stats().tx_packets, 1);
        assert_eq!(link.stats().delivered_packets, 1);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig { queue_packets: 2, ..LinkConfig::lan_100mbps() };
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();

        // First fill: one in flight + two queued, the rest dropped.
        for _ in 0..5 {
            let _ = link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), &mut pool, &mut queue);
        }
        assert_eq!(link.stats().drops_queue_full, 2);
        assert_eq!(link.queued_packets(), 3);
        // Tail-dropped packets never entered the pool.
        assert_eq!(pool.live(), 3);
    }

    #[test]
    fn csma_shares_the_bus_round_robin() {
        let nodes: Vec<NodeId> = (0..3).map(NodeId::from_raw).collect();
        let addrs: Vec<Addr> = (0..3).map(|i| Addr::new(10, 0, 0, i as u8 + 1)).collect();
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_micros(10),
            queue_packets: 10,
            loss_rate: 0.0,
        };
        let mut link = Link::csma(LinkId::from_raw(0), &nodes, cfg);
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        let res = resolver(nodes.iter().copied().zip(addrs.iter().copied()).collect());

        // Nodes 0 and 1 both flood node 2; transmissions must interleave.
        for _ in 0..3 {
            link.enqueue(SimTime::ZERO, nodes[0], packet(addrs[2], 100), &mut pool, &mut queue).unwrap();
            link.enqueue(SimTime::ZERO, nodes[1], packet(addrs[2], 100), &mut pool, &mut queue).unwrap();
        }
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        assert_eq!(deliveries.len(), 6);
        // Delivery times strictly increase: the bus serialises one at a time.
        for w in deliveries.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn csma_unroutable_is_counted_not_delivered() {
        let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let mut link = Link::csma(LinkId::from_raw(0), &nodes, LinkConfig::lan_100mbps());
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        let res = resolver(vec![
            (nodes[0], Addr::new(10, 0, 0, 1)),
            (nodes[1], Addr::new(10, 0, 0, 2)),
        ]);
        link.enqueue(SimTime::ZERO, nodes[0], packet(Addr::new(10, 0, 0, 99), 100), &mut pool, &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        assert!(deliveries.is_empty());
        assert_eq!(link.stats().drops_unroutable, 1);
    }

    #[test]
    fn csma_broadcast_reaches_everyone_but_sender() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
        let mut link = Link::csma(LinkId::from_raw(0), &nodes, LinkConfig::lan_100mbps());
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        let res = resolver(nodes.iter().map(|&n| (n, Addr::new(10, 0, 0, n.as_raw() as u8 + 1))).collect());
        link.enqueue(SimTime::ZERO, nodes[0], packet(Addr::BROADCAST, 10), &mut pool, &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        let mut receivers: Vec<u32> = deliveries.iter().map(|(_, n, _)| n.as_raw()).collect();
        receivers.sort_unstable();
        assert_eq!(receivers, vec![1, 2, 3]);
        // Fan-out shared one pool slot; all receivers released it.
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn total_loss_drops_everything() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig { loss_rate: 1.0, ..LinkConfig::lan_100mbps() };
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);
        for _ in 0..5 {
            link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), &mut pool, &mut queue).unwrap();
        }
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        assert!(deliveries.is_empty());
        assert_eq!(link.stats().drops_lost, 5);
        // Lost frames were released back to the pool.
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn wifi_pays_contention_overhead() {
        // Identical traffic over CSMA vs Wi-Fi: Wi-Fi finishes later
        // because every frame pays DIFS + backoff.
        let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let addrs = [Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)];
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_micros(10),
            queue_packets: 64,
            loss_rate: 0.0,
        };
        let res = resolver(nodes.iter().copied().zip(addrs.iter().copied()).collect());
        let finish = |mut link: Link| {
            let mut pool = PacketPool::new();
            let mut queue = EventQueue::new();
            for _ in 0..20 {
                link.enqueue(SimTime::ZERO, nodes[0], packet(addrs[1], 100), &mut pool, &mut queue).unwrap();
            }
            let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
            assert_eq!(deliveries.len(), 20);
            deliveries.last().unwrap().0
        };
        let csma_done = finish(Link::csma(LinkId::from_raw(0), &nodes, cfg));
        let wifi_done = finish(Link::wifi(LinkId::from_raw(1), &nodes, cfg));
        assert!(wifi_done > csma_done, "wifi {wifi_done} vs csma {csma_done}");
        // Overhead is bounded: at most DIFS + CW slots per frame.
        let max_overhead = (SimDuration::from_micros(34)
            + SimDuration::from_micros(9) * 16)
            * 20;
        assert!(wifi_done - csma_done <= max_overhead);
    }

    #[test]
    fn wifi_backoff_is_deterministic_per_link() {
        let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let addrs = [Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)];
        let res = resolver(nodes.iter().copied().zip(addrs.iter().copied()).collect());
        let run = || {
            let mut link = Link::wifi(LinkId::from_raw(3), &nodes, LinkConfig::wifi_54mbps());
            let mut pool = PacketPool::new();
            let mut queue = EventQueue::new();
            for _ in 0..10 {
                link.enqueue(SimTime::ZERO, nodes[0], packet(addrs[1], 200), &mut pool, &mut queue).unwrap();
            }
            drain(&mut link, &mut pool, &mut queue, &res)
                .into_iter()
                .map(|(t, _, _)| t)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_on_one_link_does_not_perturb_another() {
        // Two independent links share one event queue. Enabling heavy
        // loss on link A must leave link B's deliveries — times and
        // loss pattern — completely unchanged, because each link draws
        // from its own private RNG stream.
        let run = |loss_a: f64| -> Vec<(SimTime, u32)> {
            let a0 = NodeId::from_raw(0);
            let a1 = NodeId::from_raw(1);
            let b0 = NodeId::from_raw(2);
            let b1 = NodeId::from_raw(3);
            let cfg_a = LinkConfig { loss_rate: loss_a, ..LinkConfig::lan_100mbps() };
            let cfg_b = LinkConfig { loss_rate: 0.3, ..LinkConfig::lan_100mbps() };
            let mut link_a = Link::p2p(LinkId::from_raw(0), a0, a1, cfg_a);
            let mut link_b = Link::p2p(LinkId::from_raw(1), b0, b1, cfg_b);
            let mut pool = PacketPool::new();
            let mut queue = EventQueue::new();
            let res = resolver(vec![
                (a0, Addr::new(10, 0, 0, 1)),
                (a1, Addr::new(10, 0, 0, 2)),
                (b0, Addr::new(10, 0, 1, 1)),
                (b1, Addr::new(10, 0, 1, 2)),
            ]);
            for _ in 0..30 {
                link_a.enqueue(SimTime::ZERO, a0, packet(Addr::new(10, 0, 0, 2), 100), &mut pool, &mut queue).unwrap();
                link_b.enqueue(SimTime::ZERO, b0, packet(Addr::new(10, 0, 1, 2), 100), &mut pool, &mut queue).unwrap();
            }
            let mut deliveries = Vec::new();
            while let Some((t, ev)) = queue.pop() {
                match ev {
                    Event::LinkTxComplete { link, lane } => {
                        if link == LinkId::from_raw(0) {
                            link_a.on_tx_complete(t, lane, &res, &mut pool, &mut queue);
                        } else {
                            link_b.on_tx_complete(t, lane, &res, &mut pool, &mut queue);
                        }
                    }
                    Event::Deliver { node, packet, .. } => {
                        if node == b1 {
                            deliveries.push((t, node.as_raw()));
                        }
                        pool.release(packet);
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            assert_eq!(pool.live(), 0);
            deliveries
        };
        assert_eq!(run(0.0), run(0.9));
    }

    #[test]
    fn loss_stream_position_is_per_frame_regardless_of_config() {
        // The loss draw consumes exactly one RNG value per transmitted
        // frame even while loss is zero, so toggling an override mid-run
        // reproduces the same per-frame loss pattern as an uninterrupted
        // lossy run at the same frame positions.
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);
        let send_batch = |link: &mut Link, pool: &mut PacketPool, queue: &mut EventQueue, n: usize| {
            for _ in 0..n {
                link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), pool, queue).unwrap();
            }
        };

        // Reference: 40 frames, all at loss 0.5.
        let cfg = LinkConfig { loss_rate: 0.5, ..LinkConfig::lan_100mbps() };
        let mut reference = Link::p2p(LinkId::from_raw(7), a, b, cfg);
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        send_batch(&mut reference, &mut pool, &mut queue, 40);
        drain(&mut reference, &mut pool, &mut queue, &res);
        let reference_lost = reference.stats().drops_lost;

        // Same link id (same private seed): 20 lossless frames, then an
        // override for the last 20. Lost count over frames 20..40 must
        // match the reference's draws at the same positions.
        let mut toggled =
            Link::p2p(LinkId::from_raw(7), a, b, LinkConfig::lan_100mbps());
        let mut queue = EventQueue::new();
        send_batch(&mut toggled, &mut pool, &mut queue, 20);
        drain(&mut toggled, &mut pool, &mut queue, &res);
        assert_eq!(toggled.stats().drops_lost, 0);
        toggled.set_loss_override(Some(0.5));
        send_batch(&mut toggled, &mut pool, &mut queue, 20);
        drain(&mut toggled, &mut pool, &mut queue, &res);

        // Count the reference's losses among its last 20 frames only.
        let cfg_first_half = LinkConfig { loss_rate: 0.5, ..LinkConfig::lan_100mbps() };
        let mut first_half = Link::p2p(LinkId::from_raw(7), a, b, cfg_first_half);
        let mut queue = EventQueue::new();
        send_batch(&mut first_half, &mut pool, &mut queue, 20);
        drain(&mut first_half, &mut pool, &mut queue, &res);
        let reference_last_20 = reference_lost - first_half.stats().drops_lost;
        assert_eq!(toggled.stats().drops_lost, reference_last_20);
    }

    #[test]
    fn down_link_rejects_and_destroys_frames() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let mut link = Link::p2p(LinkId::from_raw(0), a, b, LinkConfig::lan_100mbps());
        let mut pool = PacketPool::new();
        let mut queue = EventQueue::new();
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);

        // One frame goes in flight, then the link is cut: the in-flight
        // frame is destroyed at tx-complete time.
        link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), &mut pool, &mut queue).unwrap();
        link.set_up(SimTime::ZERO, false, &mut queue);
        assert_eq!(
            link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 100), &mut pool, &mut queue),
            Err(DropReason::LinkDown)
        );
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        assert!(deliveries.is_empty());
        assert_eq!(link.stats().drops_link_down, 2);
        assert_eq!(pool.live(), 0, "destroyed in-flight frame must be released");

        // Restoring the link lets traffic flow again.
        link.set_up(SimTime::from_secs(1), true, &mut queue);
        link.enqueue(SimTime::from_secs(1), a, packet(Addr::new(10, 0, 0, 2), 100), &mut pool, &mut queue).unwrap();
        let deliveries = drain(&mut link, &mut pool, &mut queue, &res);
        assert_eq!(deliveries.len(), 1);
    }

    #[test]
    fn throttle_and_jitter_stretch_delivery() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let cfg = LinkConfig {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_millis(1),
            queue_packets: 10,
            loss_rate: 0.0,
        };
        let res = resolver(vec![(a, Addr::new(10, 0, 0, 1)), (b, Addr::new(10, 0, 0, 2))]);
        let deliver_at = |scale: Option<f64>, extra: Option<SimDuration>| {
            let mut link = Link::p2p(LinkId::from_raw(0), a, b, cfg);
            if let Some(s) = scale {
                link.set_bandwidth_scale(s);
            }
            if let Some(d) = extra {
                link.set_extra_delay(d);
            }
            let mut pool = PacketPool::new();
            let mut queue = EventQueue::new();
            link.enqueue(SimTime::ZERO, a, packet(Addr::new(10, 0, 0, 2), 972), &mut pool, &mut queue).unwrap();
            drain(&mut link, &mut pool, &mut queue, &res)[0].0
        };
        let nominal = deliver_at(None, None);
        // Quartering the bandwidth quadruples the 1000 µs serialisation time.
        assert_eq!(
            deliver_at(Some(0.25), None) - nominal,
            SimDuration::from_micros(3000)
        );
        // Extra delay shifts arrival one-for-one.
        assert_eq!(
            deliver_at(None, Some(SimDuration::from_millis(5))) - nominal,
            SimDuration::from_millis(5)
        );
    }

    #[test]
    #[should_panic(expected = "point-to-point")]
    fn p2p_rejects_extra_members() {
        let mut link = Link::p2p(
            LinkId::from_raw(0),
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            LinkConfig::default(),
        );
        link.add_member(NodeId::from_raw(2));
    }
}
