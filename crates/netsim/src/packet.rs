//! The simulated packet model.
//!
//! Packets carry a simplified IPv4 header plus either a TCP or a UDP
//! header and an opaque payload. The model keeps exactly the attributes
//! the DDoShield-IoT feature extractor consumes (addresses, ports,
//! protocol, flags, sequence numbers, lengths) and omits the rest
//! (checksums, fragmentation, options).
//!
//! Every packet also carries a [`Provenance`] ground-truth tag set by the
//! *sending application*. The tag is invisible to the IDS feature pipeline
//! and exists only so captures can be labelled the way the paper labels
//! them (traffic emitted by Mirai components is malicious, everything else
//! benign).

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A simulated IPv4 address (stored as a `u32` in network order).
///
/// ```
/// use netsim::packet::Addr;
///
/// let a = Addr::new(10, 0, 0, 7);
/// assert_eq!(a.to_string(), "10.0.0.7");
/// assert_eq!(Addr::from_bits(a.to_bits()), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Addr(u32);

impl Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Addr = Addr(0);
    /// Limited-broadcast address `255.255.255.255`.
    pub const BROADCAST: Addr = Addr(u32::MAX);

    /// Creates an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Creates an address from its raw 32-bit representation.
    pub const fn from_bits(bits: u32) -> Self {
        Addr(bits)
    }

    /// The raw 32-bit representation.
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// The four dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        [(self.0 >> 24) as u8, (self.0 >> 16) as u8, (self.0 >> 8) as u8, self.0 as u8]
    }

    /// `true` for `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl From<[u8; 4]> for Addr {
    fn from(o: [u8; 4]) -> Self {
        Addr::new(o[0], o[1], o[2], o[3])
    }
}

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
}

impl Protocol {
    /// The IANA protocol number (6 for TCP, 17 for UDP).
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => f.write_str("TCP"),
            Protocol::Udp => f.write_str("UDP"),
        }
    }
}

/// TCP header flags, as a compact bit set.
///
/// A hand-rolled flag set (rather than the `bitflags` crate) keeps the
/// workspace dependency list to the approved set.
///
/// ```
/// use netsim::packet::TcpFlags;
///
/// let f = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(f.contains(TcpFlags::SYN));
/// assert!(!f.contains(TcpFlags::FIN));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// Final segment from sender.
    pub const FIN: TcpFlags = TcpFlags(0b0000_0001);
    /// Synchronise sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0b0000_0010);
    /// Reset the connection.
    pub const RST: TcpFlags = TcpFlags(0b0000_0100);
    /// Push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0b0000_1000);
    /// Acknowledgement field is significant.
    pub const ACK: TcpFlags = TcpFlags(0b0001_0000);

    /// The raw flag bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs flags from raw bits (unknown bits are kept).
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// `true` if every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` if any flag in `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` if no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (flag, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
        ] {
            if self.contains(flag) {
                if wrote {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                wrote = true;
            }
        }
        if !wrote {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// The TCP-specific portion of a packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgement number (valid when ACK flag set).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u16,
}

/// The UDP-specific portion of a packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// Transport header: TCP or UDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// A TCP segment header.
    Tcp(TcpHeader),
    /// A UDP datagram header.
    Udp(UdpHeader),
}

impl Transport {
    /// The protocol discriminant.
    pub const fn protocol(&self) -> Protocol {
        match self {
            Transport::Tcp(_) => Protocol::Tcp,
            Transport::Udp(_) => Protocol::Udp,
        }
    }

    /// Source port of either header.
    pub const fn src_port(&self) -> u16 {
        match self {
            Transport::Tcp(h) => h.src_port,
            Transport::Udp(h) => h.src_port,
        }
    }

    /// Destination port of either header.
    pub const fn dst_port(&self) -> u16 {
        match self {
            Transport::Tcp(h) => h.dst_port,
            Transport::Udp(h) => h.dst_port,
        }
    }

    /// TCP flags if this is a TCP header, empty otherwise.
    pub fn tcp_flags(&self) -> TcpFlags {
        match self {
            Transport::Tcp(h) => h.flags,
            Transport::Udp(_) => TcpFlags::EMPTY,
        }
    }
}

/// Ground-truth origin class of a packet, for capture labelling only.
///
/// This mirrors how the paper labels its dataset: packets are malicious
/// if they were produced by a Mirai component (scanner, loader, C2, bot
/// floods) and benign otherwise. The tag travels with the packet but is
/// *not* an observable feature — the feature extractor never reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Provenance {
    /// Legitimate application traffic (HTTP, video, FTP, and their ACKs).
    #[default]
    Benign,
    /// Traffic emitted by a botnet component.
    Malicious,
}

/// Size in bytes of the simulated IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;
/// Size in bytes of the simulated TCP header (no options).
pub const TCP_HEADER_LEN: usize = 20;
/// Size in bytes of the simulated UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A simulated network packet: IPv4 header + transport header + payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Source IPv4 address (possibly spoofed by attack traffic).
    pub src: Addr,
    /// Destination IPv4 address.
    pub dst: Addr,
    /// Time-to-live (informational; the flat topologies never expire it).
    pub ttl: u8,
    /// Transport-layer header.
    pub transport: Transport,
    /// Opaque payload bytes.
    #[serde(with = "serde_bytes_compat")]
    pub payload: Bytes,
    /// Ground-truth origin class (capture labelling only).
    pub provenance: Provenance,
}

// With the vendored no-op serde derives nothing generates calls into
// this module; it stays as the documented wire mapping for payloads and
// is exercised by the unit tests below.
#[allow(dead_code)]
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(d)?))
    }
}

impl Packet {
    /// Builds a TCP segment.
    pub fn tcp(src: Addr, dst: Addr, header: TcpHeader, payload: Bytes) -> Self {
        Packet { src, dst, ttl: 64, transport: Transport::Tcp(header), payload, provenance: Provenance::Benign }
    }

    /// Builds a UDP datagram.
    pub fn udp(src: Addr, dst: Addr, src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        Packet {
            src,
            dst,
            ttl: 64,
            transport: Transport::Udp(UdpHeader { src_port, dst_port }),
            payload,
            provenance: Provenance::Benign,
        }
    }

    /// Returns the packet re-tagged with the given provenance.
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// Transport protocol of the packet.
    pub fn protocol(&self) -> Protocol {
        self.transport.protocol()
    }

    /// Total on-the-wire length in bytes (headers + payload).
    pub fn wire_len(&self) -> usize {
        let transport_len = match self.transport {
            Transport::Tcp(_) => TCP_HEADER_LEN,
            Transport::Udp(_) => UDP_HEADER_LEN,
        };
        IPV4_HEADER_LEN + transport_len + self.payload.len()
    }

    /// TCP flags (empty for UDP packets).
    pub fn tcp_flags(&self) -> TcpFlags {
        self.transport.tcp_flags()
    }

    /// TCP sequence number, if this is a TCP segment.
    pub fn tcp_seq(&self) -> Option<u32> {
        match self.transport {
            Transport::Tcp(h) => Some(h.seq),
            Transport::Udp(_) => None,
        }
    }

    /// The (src addr, src port, dst addr, dst port, protocol) 5-tuple.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src: self.src,
            src_port: self.transport.src_port(),
            dst: self.dst,
            dst_port: self.transport.dst_port(),
            protocol: self.protocol(),
        }
    }
}

/// A flow identifier: the classic 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source address.
    pub src: Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination address.
    pub dst: Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// The same flow viewed from the opposite direction.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-independent key identifying the bidirectional flow.
    pub fn canonical(self) -> FiveTuple {
        if (self.src, self.src_port) <= (self.dst, self.dst_port) {
            self
        } else {
            self.reversed()
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{} -> {}:{}", self.protocol, self.src, self.src_port, self.dst, self.dst_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_octet_roundtrip() {
        let a = Addr::new(192, 168, 1, 42);
        assert_eq!(a.octets(), [192, 168, 1, 42]);
        assert_eq!(Addr::from(a.octets()), a);
        assert_eq!(a.to_string(), "192.168.1.42");
        assert!(Addr::UNSPECIFIED.is_unspecified());
    }

    #[test]
    fn flags_set_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::SYN | TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::FIN | TcpFlags::ACK));
        assert!(!f.intersects(TcpFlags::FIN | TcpFlags::RST));
        assert_eq!((f & TcpFlags::SYN), TcpFlags::SYN);
        assert!(TcpFlags::EMPTY.is_empty());
        assert_eq!(TcpFlags::from_bits(f.bits()), f);
    }

    #[test]
    fn flags_display_lists_names() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "-");
    }

    #[test]
    fn wire_len_counts_headers() {
        let udp = Packet::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1000, 53, Bytes::from_static(b"hi"));
        assert_eq!(udp.wire_len(), IPV4_HEADER_LEN + UDP_HEADER_LEN + 2);
        let tcp = Packet::tcp(
            Addr::new(1, 1, 1, 1),
            Addr::new(2, 2, 2, 2),
            TcpHeader { src_port: 1, dst_port: 2, seq: 0, ack: 0, flags: TcpFlags::SYN, window: 65535 },
            Bytes::new(),
        );
        assert_eq!(tcp.wire_len(), IPV4_HEADER_LEN + TCP_HEADER_LEN);
    }

    #[test]
    fn five_tuple_reversal_and_canonical() {
        let p = Packet::udp(Addr::new(9, 0, 0, 1), Addr::new(1, 0, 0, 1), 5000, 80, Bytes::new());
        let t = p.five_tuple();
        assert_eq!(t.reversed().reversed(), t);
        assert_eq!(t.canonical(), t.reversed().canonical());
    }

    #[test]
    fn provenance_defaults_to_benign_and_can_be_overridden() {
        let p = Packet::udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1), 1, 2, Bytes::new());
        assert_eq!(p.provenance, Provenance::Benign);
        let p = p.with_provenance(Provenance::Malicious);
        assert_eq!(p.provenance, Provenance::Malicious);
    }

    #[test]
    fn protocol_numbers_match_iana() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
    }

    #[test]
    fn payload_wire_mapping_roundtrips() {
        use serde::{Deserializer, Serializer};

        struct ByteSink;
        impl Serializer for ByteSink {
            type Ok = Vec<u8>;
            type Error = ();
            fn serialize_bytes(self, v: &[u8]) -> Result<Vec<u8>, ()> {
                Ok(v.to_vec())
            }
        }
        struct ByteSource(Vec<u8>);
        impl<'de> Deserializer<'de> for ByteSource {
            type Error = ();
            fn deserialize_byte_buf(self) -> Result<Vec<u8>, ()> {
                Ok(self.0)
            }
        }

        let payload = Bytes::from(vec![1u8, 2, 3]);
        let wire = super::serde_bytes_compat::serialize(&payload, ByteSink).unwrap();
        let back = super::serde_bytes_compat::deserialize(ByteSource(wire)).unwrap();
        assert_eq!(back, payload);
    }
}
