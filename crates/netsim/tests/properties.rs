//! Property-based tests of the simulator's core invariants.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use netsim::event::{Event, EventQueue};
use netsim::ids::AppId;
use netsim::link::LinkConfig;
use netsim::packet::{Addr, Provenance};
use netsim::rng::SimRng;
use netsim::tcp::TcpEvent;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx, World};

proptest! {
    /// The event queue is a total order: pops are sorted by time, and
    /// ties preserve insertion order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(
                SimTime::from_nanos(t),
                Event::AppStart { app: AppId::from_raw(i as u32) },
            );
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<u32> = None;
        while let Some((t, Event::AppStart { app })) = queue.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(last_seq) = last_seq_at_time {
                    // Equal timestamps pop in insertion order only when the
                    // original times were equal.
                    if times[app.as_raw() as usize] == times[last_seq as usize] {
                        prop_assert!(app.as_raw() > last_seq);
                    }
                }
            }
            last_seq_at_time = if t == last_time { Some(app.as_raw()) } else { None };
            if t > last_time {
                last_seq_at_time = Some(app.as_raw());
            }
            last_time = t;
        }
    }

    /// SimRng distributions stay within their mathematical supports.
    #[test]
    fn rng_supports_hold(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert!(rng.exponential(3.0) >= 0.0);
            let x = rng.bounded_pareto(1.5, 10.0, 100.0);
            prop_assert!((10.0..=100.0).contains(&x));
            let z = rng.zipf(20, 1.2);
            prop_assert!(z < 20);
            let b = rng.below(7);
            prop_assert!(b < 7);
        }
    }

    /// Forked RNG streams never depend on the order of later draws.
    #[test]
    fn rng_fork_is_prefix_stable(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut fork_a = a.fork();
        let mut fork_b = b.fork();
        // Interleave differently; forks still agree.
        let _ = a.uniform();
        let _ = b.next_u64();
        for _ in 0..10 {
            prop_assert_eq!(fork_a.next_u64(), fork_b.next_u64());
        }
    }
}

#[derive(Default)]
struct ReceiverState {
    bytes: Vec<u8>,
}

struct Receiver {
    state: Rc<RefCell<ReceiverState>>,
}

impl App for Receiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(5000, 32);
    }
    fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, event: TcpEvent) {
        if let TcpEvent::Data { data, .. } = event {
            self.state.borrow_mut().bytes.extend_from_slice(&data);
        }
    }
}

struct Sender {
    dst: Addr,
    message: Vec<u8>,
}

impl App for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let conn = ctx.tcp_connect(self.dst, 5000);
        // Queued before the handshake completes; the stack buffers it
        // (like a real socket) and transmits once established.
        ctx.tcp_send(conn, &self.message.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TCP delivers exactly the bytes sent, in order, for arbitrary
    /// message sizes over lossy links. (Loss is capped at 12%: beyond
    /// that, exhausting the retry budget and aborting the connection is
    /// *correct* TCP behaviour, so exact delivery is not guaranteed.)
    #[test]
    fn tcp_delivers_exactly_once_in_order(
        seed in any::<u64>(),
        len in 1usize..60_000,
        loss in 0.0f64..0.12,
    ) {
        let mut world = World::new(seed);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "rx");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "tx");
        let config = LinkConfig { loss_rate: loss, ..LinkConfig::lan_100mbps() };
        world.add_csma_link(&[a, b], config);

        let state = Rc::new(RefCell::new(ReceiverState::default()));
        let message: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let rx = world.add_app(a, Box::new(Receiver { state: Rc::clone(&state) }), Provenance::Benign);
        let tx = world.add_app(
            b,
            Box::new(Sender { dst: Addr::new(10, 0, 0, 1), message: message.clone() }),
            Provenance::Benign,
        );
        world.start_app(rx, SimTime::ZERO);
        world.start_app(tx, SimTime::from_millis(1));
        world.run_for(SimDuration::from_secs(180));

        // All bytes arrive exactly once, in order.
        prop_assert_eq!(&state.borrow().bytes, &message);
    }

    /// Node-level and link-level accounting agree: every packet a node
    /// sends was either serialised by the link or queued/dropped there.
    #[test]
    fn conservation_of_packets(seed in any::<u64>(), len in 1usize..20_000) {
        let mut world = World::new(seed);
        let a = world.add_node(Addr::new(10, 0, 0, 1), "rx");
        let b = world.add_node(Addr::new(10, 0, 0, 2), "tx");
        let link = world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());

        let state = Rc::new(RefCell::new(ReceiverState::default()));
        let message: Vec<u8> = vec![7; len];
        let rx = world.add_app(a, Box::new(Receiver { state }), Provenance::Benign);
        let tx = world.add_app(
            b,
            Box::new(Sender { dst: Addr::new(10, 0, 0, 1), message }),
            Provenance::Benign,
        );
        world.start_app(rx, SimTime::ZERO);
        world.start_app(tx, SimTime::from_millis(1));
        world.run_for(SimDuration::from_secs(60));

        let stats = world.link_stats(link);
        let sent = world.node_stats(a).sent_packets + world.node_stats(b).sent_packets;
        let accounted = stats.tx_packets
            + stats.drops_queue_full
            + world.link_queued_packets(link) as u64;
        prop_assert_eq!(sent, accounted);
        // On a clean link, everything transmitted is delivered or unroutable.
        prop_assert_eq!(stats.tx_packets, stats.delivered_packets + stats.drops_unroutable);
    }
}
