//! Proof that the packet hot path is allocation-free at steady state.
//!
//! A counting global allocator wraps the system allocator; a UDP flood
//! app sends packets at a fixed cadence to an unbound port on a peer
//! node, driving the full pipeline — timer dispatch, `udp_send`, link
//! enqueue (pool insert), transmit scheduling, delivery (pool release),
//! and the `udp.unreachable` drop. After a warmup run that grows every
//! reusable buffer (event heap, lane queues, pool slab, notification
//! scratch) to its working set, a 10 000-packet steady-state run must
//! perform **zero** heap allocations.
//!
//! This is the teeth behind DESIGN.md §10's "floods reuse slots"
//! invariant: any regression that reintroduces a per-packet `Vec`,
//! `Box` or `Packet` clone on the hot path fails this test rather than
//! just showing up as a bench slowdown.
//!
//! (The crate's `#![forbid(unsafe_code)]` covers `src/`; the allocator
//! shim below needs `unsafe` and lives in this integration test only.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use netsim::link::LinkConfig;
use netsim::packet::{Addr, Provenance};
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx, World};

/// Counts every allocation and reallocation (frees are irrelevant: the
/// invariant is "no new memory", not "no memory") — but only on the
/// thread that opted in. The libtest harness's main thread waits on an
/// internal channel whose blocking context is lazily allocated at a
/// wall-clock-dependent moment; without the thread filter that stray
/// allocation lands inside the measured window on unlucky runs.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `true` only on the test thread — const-initialised so reading it
    /// from inside the allocator never itself allocates.
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count_here() {
    if COUNTING.try_with(std::cell::Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Sends one empty UDP datagram per millisecond to an unbound port on
/// the target — the simplest traffic that exercises the entire
/// enqueue → transmit → deliver → drop pipeline.
struct FloodApp {
    target: Addr,
    payload: Bytes,
}

impl App for FloodApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        // `Bytes` clone is a refcount bump, and the empty buffer is a
        // process-wide shared allocation: no per-packet heap traffic.
        ctx.udp_send(5555, self.target, 9, self.payload.clone());
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
}

#[test]
fn steady_state_flood_allocates_nothing() {
    let mut world = World::new(42);
    let sender_addr = Addr::new(10, 0, 0, 1);
    let sink_addr = Addr::new(10, 0, 0, 2);
    let sender = world.add_node(sender_addr, "sender");
    let sink = world.add_node(sink_addr, "sink");
    world.add_p2p_link(sender, sink, LinkConfig::lan_100mbps());

    let app = world.add_app(
        sender,
        Box::new(FloodApp { target: sink_addr, payload: Bytes::new() }),
        Provenance::Benign,
    );
    world.start_app(app, SimTime::ZERO);

    // Warmup: 2 000 packets grow the event heap, the lane queue, the
    // pool slab and the notification scratch to their working set.
    world.run_until(SimTime::from_secs(2));
    let warmed_recv = world.node_stats(sink).recv_packets;
    assert!(warmed_recv > 1_000, "warmup must move packets (got {warmed_recv})");

    // Steady state: 10 s of simulated flood = 10 000 more packets, with
    // the allocator watching.
    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    world.run_until(SimTime::from_secs(12));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(false));

    let delivered = world.node_stats(sink).recv_packets - warmed_recv;
    assert!(delivered >= 10_000, "flood must deliver 10k packets (got {delivered})");
    assert_eq!(
        after - before,
        0,
        "steady-state hot path allocated {} times over {delivered} packets",
        after - before
    );

    // The pool recycled one slot the whole time instead of growing.
    let pool = world.packet_pool();
    assert!(pool.capacity() <= 4, "flood must reuse pool slots (capacity {})", pool.capacity());
    assert!(pool.reused_total() > 10_000);
}
