//! Edge-case integration tests of the TCP stack inside a full world:
//! backlog recycling under SYN pressure, bidirectional transfers,
//! connection storms, churn mid-handshake, and stray-segment handling.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use netsim::link::LinkConfig;
use netsim::packet::{Addr, Packet, Provenance, TcpFlags, TcpHeader};
use netsim::tcp::TcpEvent;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx, World};
use netsim::Datagram;

const SERVER: Addr = Addr::new(10, 0, 0, 1);
const CLIENT: Addr = Addr::new(10, 0, 0, 2);

fn two_node_world(seed: u64) -> World {
    let mut world = World::new(seed);
    let a = world.add_node(SERVER, "server");
    let b = world.add_node(CLIENT, "client");
    world.add_csma_link(&[a, b], LinkConfig::lan_100mbps());
    world
}

/// A listener that never answers, plus a raw-SYN spammer: half-open
/// entries must eventually expire (SYN-ACK retry budget) and free
/// backlog space rather than wedging the listener forever.
#[test]
fn syn_backlog_recycles_after_handshake_timeouts() {
    struct Silent;
    impl App for Silent {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80, 4);
        }
    }
    struct Spammer {
        sent: u32,
    }
    impl App for Spammer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            // Spoofed source: the SYN-ACK goes nowhere, so the entry can
            // only clear via the server's handshake retry budget.
            let header = TcpHeader {
                src_port: 1000 + self.sent as u16,
                dst_port: 80,
                seq: self.sent,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 65_535,
            };
            let packet = Packet::tcp(Addr::new(10, 0, 99, 99), SERVER, header, Bytes::new());
            let _ = ctx.send_raw(packet);
            self.sent += 1;
            if self.sent < 4 {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
    }
    let mut world = two_node_world(1);
    let server = netsim::NodeId::from_raw(0);
    let silent = world.add_app(server, Box::new(Silent), Provenance::Benign);
    let spammer =
        world.add_app(netsim::NodeId::from_raw(1), Box::new(Spammer { sent: 0 }), Provenance::Malicious);
    world.start_app(silent, SimTime::ZERO);
    world.start_app(spammer, SimTime::from_millis(1));

    world.run_for(SimDuration::from_millis(200));
    let (half_open, _) = world.listener_pressure(server, 80).unwrap();
    assert_eq!(half_open, 4, "backlog saturated by spoofed SYNs");

    // SYN-ACK retries exhaust (4 retries with exponential backoff well
    // within a minute) and the half-open entries are reaped.
    world.run_for(SimDuration::from_secs(60));
    let (half_open, _) = world.listener_pressure(server, 80).unwrap();
    assert_eq!(half_open, 0, "backlog recycled after handshake timeouts");
}

/// Both directions of one connection carry independent byte streams.
#[test]
fn bidirectional_transfer_on_one_connection() {
    #[derive(Default)]
    struct Stats {
        server_got: usize,
        client_got: usize,
    }
    struct ServerApp {
        stats: Rc<RefCell<Stats>>,
    }
    impl App for ServerApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80, 8);
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
            match event {
                TcpEvent::Accepted { conn, .. } => ctx.tcp_send(conn, &[1u8; 30_000]),
                TcpEvent::Data { data, .. } => self.stats.borrow_mut().server_got += data.len(),
                _ => {}
            }
        }
    }
    struct ClientApp {
        stats: Rc<RefCell<Stats>>,
    }
    impl App for ClientApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let conn = ctx.tcp_connect(SERVER, 80);
            ctx.tcp_send(conn, &[2u8; 20_000]);
        }
        fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, event: TcpEvent) {
            if let TcpEvent::Data { data, .. } = event {
                self.stats.borrow_mut().client_got += data.len();
            }
        }
    }
    let mut world = two_node_world(2);
    let stats = Rc::new(RefCell::new(Stats::default()));
    let s = world.add_app(
        netsim::NodeId::from_raw(0),
        Box::new(ServerApp { stats: Rc::clone(&stats) }),
        Provenance::Benign,
    );
    let c = world.add_app(
        netsim::NodeId::from_raw(1),
        Box::new(ClientApp { stats: Rc::clone(&stats) }),
        Provenance::Benign,
    );
    world.start_app(s, SimTime::ZERO);
    world.start_app(c, SimTime::from_millis(1));
    world.run_for(SimDuration::from_secs(10));
    assert_eq!(stats.borrow().server_got, 20_000);
    assert_eq!(stats.borrow().client_got, 30_000);
}

/// Dozens of concurrent connections all complete and close cleanly.
#[test]
fn connection_storm_completes() {
    #[derive(Default)]
    struct Stats {
        served: usize,
        completed: usize,
    }
    struct EchoServer {
        stats: Rc<RefCell<Stats>>,
    }
    impl App for EchoServer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80, 64);
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
            match event {
                TcpEvent::Data { conn, data } => {
                    ctx.tcp_send(conn, &data);
                    self.stats.borrow_mut().served += 1;
                }
                TcpEvent::PeerClosed { conn } => ctx.tcp_close(conn),
                _ => {}
            }
        }
    }
    struct Burst {
        stats: Rc<RefCell<Stats>>,
        pending: u32,
    }
    impl App for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..40 {
                ctx.tcp_connect(SERVER, 80);
            }
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
            match event {
                TcpEvent::Connected { conn } => ctx.tcp_send(conn, b"ping"),
                TcpEvent::Data { conn, .. } => {
                    self.stats.borrow_mut().completed += 1;
                    self.pending += 1;
                    ctx.tcp_close(conn);
                }
                _ => {}
            }
        }
    }
    let mut world = two_node_world(3);
    let stats = Rc::new(RefCell::new(Stats::default()));
    let s = world.add_app(
        netsim::NodeId::from_raw(0),
        Box::new(EchoServer { stats: Rc::clone(&stats) }),
        Provenance::Benign,
    );
    let c = world.add_app(
        netsim::NodeId::from_raw(1),
        Box::new(Burst { stats: Rc::clone(&stats), pending: 0 }),
        Provenance::Benign,
    );
    world.start_app(s, SimTime::ZERO);
    world.start_app(c, SimTime::from_millis(1));
    world.run_for(SimDuration::from_secs(20));
    assert_eq!(stats.borrow().completed, 40, "all 40 echoes returned");
    // Both sides end with no live connections.
    world.run_for(SimDuration::from_secs(30));
    assert_eq!(world.tcp_conn_count(netsim::NodeId::from_raw(0)), 0);
    assert_eq!(world.tcp_conn_count(netsim::NodeId::from_raw(1)), 0);
}

/// A node churning out mid-handshake leaves the peer to fail cleanly.
#[test]
fn churn_mid_handshake_fails_cleanly() {
    struct Listener;
    impl App for Listener {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80, 8);
        }
    }
    struct Dialer {
        outcome: Rc<RefCell<Option<&'static str>>>,
    }
    impl App for Dialer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_connect(SERVER, 80);
        }
        fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, event: TcpEvent) {
            let mut outcome = self.outcome.borrow_mut();
            match event {
                TcpEvent::Connected { .. } => *outcome = Some("connected"),
                TcpEvent::ConnectFailed { .. } => *outcome = Some("failed"),
                TcpEvent::Closed { .. } => *outcome = Some("closed"),
                _ => {}
            }
        }
    }
    let mut world = two_node_world(4);
    let server = netsim::NodeId::from_raw(0);
    let outcome = Rc::new(RefCell::new(None));
    let l = world.add_app(server, Box::new(Listener), Provenance::Benign);
    let d = world.add_app(
        netsim::NodeId::from_raw(1),
        Box::new(Dialer { outcome: Rc::clone(&outcome) }),
        Provenance::Benign,
    );
    world.start_app(l, SimTime::ZERO);
    // The server churns out exactly when the dial begins.
    world.schedule_node_up(server, false, SimTime::from_millis(1));
    world.start_app(d, SimTime::from_millis(1));
    world.run_for(SimDuration::from_secs(60));
    assert_eq!(*outcome.borrow(), Some("failed"), "SYN retries exhaust against a dead host");
}

/// A bulk transfer rides out a two-second link outage: RTO backoff
/// spans the down interval, retransmissions are observed, and the
/// full payload still arrives once the link comes back.
#[test]
fn transfer_recovers_across_link_flap() {
    use netsim::faults::FaultPlan;

    const PAYLOAD: usize = 200_000;

    #[derive(Default)]
    struct Progress {
        received: usize,
        retransmitted: Option<u64>,
    }
    struct Receiver {
        progress: Rc<RefCell<Progress>>,
    }
    impl App for Receiver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80, 4);
        }
        fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, event: TcpEvent) {
            if let TcpEvent::Data { data, .. } = event {
                self.progress.borrow_mut().received += data.len();
            }
        }
    }
    struct Sender {
        progress: Rc<RefCell<Progress>>,
        conn: Option<netsim::ConnId>,
    }
    impl App for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let conn = ctx.tcp_connect(SERVER, 80);
            ctx.tcp_send(conn, &vec![7u8; PAYLOAD]);
            self.conn = Some(conn);
            ctx.set_timer(SimDuration::from_secs(55), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.progress.borrow_mut().retransmitted =
                self.conn.and_then(|c| ctx.conn_retransmitted(c));
        }
    }

    let mut world = World::new(11);
    let a = world.add_node(SERVER, "server");
    let b = world.add_node(CLIENT, "client");
    let link = world.add_p2p_link(a, b, LinkConfig::lan_100mbps());

    let progress = Rc::new(RefCell::new(Progress::default()));
    let r = world.add_app(a, Box::new(Receiver { progress: Rc::clone(&progress) }), Provenance::Benign);
    let s = world.add_app(
        b,
        Box::new(Sender { progress: Rc::clone(&progress), conn: None }),
        Provenance::Benign,
    );
    world.start_app(r, SimTime::ZERO);
    world.start_app(s, SimTime::from_millis(1));

    // Cut the link mid-transfer for two full seconds.
    let mut plan = FaultPlan::new();
    plan.link_flap(link, SimDuration::from_millis(5), SimDuration::from_secs(2));
    world.apply_fault_plan(&plan);

    world.run_for(SimDuration::from_secs(60));

    let progress = progress.borrow();
    assert_eq!(progress.received, PAYLOAD, "full payload delivered despite the outage");
    let retransmitted = progress.retransmitted.expect("connection still queryable");
    assert!(retransmitted > 0, "the outage must have forced retransmissions");
    let stats = world.link_stats(link);
    assert!(stats.drops_link_down > 0, "frames hit the downed link");
}

/// Aborting a connection with retransmission timers in flight must not
/// resurrect it: the pending `TcpTimer` events carry a stale generation
/// and are ignored.
#[test]
fn stale_retransmit_timer_after_abort_is_ignored() {
    struct Listener;
    impl App for Listener {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(80, 4);
        }
    }
    struct AbortingSender {
        conn: Option<netsim::ConnId>,
    }
    impl App for AbortingSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let conn = ctx.tcp_connect(SERVER, 80);
            // Queue data so the retransmission timer is armed...
            ctx.tcp_send(conn, &[9u8; 50_000]);
            self.conn = Some(conn);
            // ...then abort while segments (and their timer) are in flight.
            ctx.set_timer(SimDuration::from_millis(3), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(conn) = self.conn.take() {
                ctx.tcp_abort(conn);
            }
        }
    }
    let mut world = two_node_world(12);
    let server = netsim::NodeId::from_raw(0);
    let client = netsim::NodeId::from_raw(1);
    let l = world.add_app(server, Box::new(Listener), Provenance::Benign);
    let s = world.add_app(client, Box::new(AbortingSender { conn: None }), Provenance::Benign);
    world.start_app(l, SimTime::ZERO);
    world.start_app(s, SimTime::from_millis(1));
    // Run long past the largest possible backed-off RTO: stale timers
    // must fire as no-ops rather than panicking or re-opening state.
    world.run_for(SimDuration::from_secs(120));
    assert_eq!(world.tcp_conn_count(client), 0, "aborted connection fully reaped");
}

/// UDP to an unbound port is counted, and bound sockets receive
/// datagrams with the sender's (possibly spoofed) address.
#[test]
fn udp_delivery_and_unreachable_accounting() {
    struct Sink {
        got: Rc<RefCell<Vec<Datagram>>>,
    }
    impl App for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            assert!(ctx.udp_bind(5353));
        }
        fn on_udp(&mut self, _ctx: &mut Ctx<'_>, datagram: Datagram) {
            self.got.borrow_mut().push(datagram);
        }
    }
    struct Blaster;
    impl App for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_send(4000, SERVER, 5353, Bytes::from_static(b"hello"));
            ctx.udp_send(4000, SERVER, 9, Bytes::from_static(b"void")); // unbound
        }
    }
    let mut world = two_node_world(5);
    let got = Rc::new(RefCell::new(Vec::new()));
    let sink = world.add_app(
        netsim::NodeId::from_raw(0),
        Box::new(Sink { got: Rc::clone(&got) }),
        Provenance::Benign,
    );
    let blaster =
        world.add_app(netsim::NodeId::from_raw(1), Box::new(Blaster), Provenance::Benign);
    world.start_app(sink, SimTime::ZERO);
    world.start_app(blaster, SimTime::from_millis(1));
    world.run_for(SimDuration::from_secs(1));
    let got = got.borrow();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].src, CLIENT);
    assert_eq!(got[0].src_port, 4000);
    assert_eq!(&got[0].payload[..], b"hello");
}
