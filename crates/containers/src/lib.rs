//! # containers — a lightweight container runtime over netsim
//!
//! The Docker substitute of the DDoShield-IoT reproduction. DDoSim uses
//! Docker purely as isolation-plus-bridging glue: each container hosts an
//! "IoT binary" and is tapped into the NS-3 network through a ghost node.
//! This crate reproduces that glue natively: a [`runtime::Runtime`] owns
//! the simulated [`netsim::world::World`] and a shared CSMA bridge;
//! deployed [`runtime::Container`]s get nodes, addresses and per-container
//! [`meter::ResourceMeter`]s, and host applications implementing
//! [`netsim::world::App`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod meter;
pub mod runtime;

pub use meter::{CpuSample, ResourceMeter};
pub use runtime::{BridgeMedium, Container, ContainerId, ContainerSpec, Role, Runtime};
