//! Per-container resource accounting.
//!
//! The paper's sustainability evaluation (Table II) measures the IDS
//! container's CPU usage (%), occupied RAM (Kb) and model size (Kb).
//! [`ResourceMeter`] is the container-side accounting primitive those
//! metrics are computed from: components record the CPU work they perform
//! and the memory they hold, and the meter converts that into utilisation
//! over observation windows.
//!
//! CPU work is recorded as *busy time* — either genuinely measured
//! wall-clock time of a computation (the IDS measures its real inference
//! time) or a modelled cost. Utilisation over a window is busy time
//! divided by window length, exactly like a sampled `docker stats` view.

use std::rc::Rc;

use parking_lot::Mutex;
use netsim::time::{SimDuration, SimTime};
use obs::{Counter, Gauge, Scope};

/// Telemetry mirrors of the meter's *deterministic* accounts. Memory is
/// bookkept from model/buffer sizes and window counts follow the sim
/// clock, so both are safe to export byte-identically. CPU busy time may
/// come from genuine wall-clock measurement and is deliberately left out
/// of the deterministic export.
#[derive(Debug)]
struct MeterObs {
    mem_bytes: Gauge,
    mem_peak_bytes: Gauge,
    cpu_windows: Counter,
}

impl MeterObs {
    fn new(scope: &Scope) -> Self {
        MeterObs {
            mem_bytes: scope.gauge("mem_bytes"),
            mem_peak_bytes: scope.gauge("mem_peak_bytes"),
            cpu_windows: scope.counter("cpu_windows"),
        }
    }
}

#[derive(Debug, Default)]
struct MeterInner {
    cpu_busy: f64,
    cpu_busy_window: f64,
    window_started: Option<SimTime>,
    mem_current: u64,
    mem_peak: u64,
    samples: Vec<CpuSample>,
    obs: Option<MeterObs>,
}

impl MeterInner {
    fn mirror_mem(&self) {
        if let Some(obs) = &self.obs {
            obs.mem_bytes.set(self.mem_current as i64);
            obs.mem_peak_bytes.set(self.mem_peak as i64);
        }
    }
}

/// One completed CPU observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSample {
    /// Window start on the virtual clock.
    pub start: SimTime,
    /// Window end on the virtual clock.
    pub end: SimTime,
    /// CPU utilisation over the window, in percent (may exceed 100 when
    /// the recorded work outruns the window, like a saturated core).
    pub cpu_percent: f64,
}

/// A cheaply clonable handle onto one container's resource accounts.
///
/// Handles can be shared between the container runtime and the hosted
/// applications; all clones view the same accounts.
///
/// ```
/// use containers::meter::ResourceMeter;
///
/// let meter = ResourceMeter::new();
/// meter.record_cpu_seconds(0.25);
/// meter.alloc(4096);
/// assert_eq!(meter.memory_bytes(), 4096);
/// assert!((meter.total_cpu_seconds() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceMeter {
    inner: Rc<Mutex<MeterInner>>,
}

impl ResourceMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches telemetry: the deterministic accounts (memory gauges and
    /// the completed-window counter) are mirrored into `scope`. Measured
    /// wall-clock CPU percentages stay out of the export on purpose —
    /// they would break same-seed byte identity.
    pub fn set_obs(&self, scope: &Scope) {
        let mut inner = self.inner.lock();
        inner.obs = Some(MeterObs::new(scope));
        inner.mirror_mem();
    }

    /// Records `seconds` of CPU work.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn record_cpu_seconds(&self, seconds: f64) {
        assert!(seconds.is_finite() && seconds >= 0.0, "invalid cpu seconds: {seconds}");
        let mut inner = self.inner.lock();
        inner.cpu_busy += seconds;
        inner.cpu_busy_window += seconds;
    }

    /// Records a memory allocation of `bytes`.
    pub fn alloc(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.mem_current += bytes;
        inner.mem_peak = inner.mem_peak.max(inner.mem_current);
        inner.mirror_mem();
    }

    /// Records a memory release of `bytes` (saturating).
    pub fn free(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.mem_current = inner.mem_current.saturating_sub(bytes);
        inner.mirror_mem();
    }

    /// Replaces the current memory figure outright (for components that
    /// track their footprint as a whole rather than per-allocation).
    pub fn set_memory_bytes(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.mem_current = bytes;
        inner.mem_peak = inner.mem_peak.max(bytes);
        inner.mirror_mem();
    }

    /// Currently held memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.inner.lock().mem_current
    }

    /// Peak held memory in bytes.
    pub fn memory_peak_bytes(&self) -> u64 {
        self.inner.lock().mem_peak
    }

    /// Total CPU seconds ever recorded.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.inner.lock().cpu_busy
    }

    /// Opens a CPU observation window at virtual time `now`.
    ///
    /// If a window was already open it is closed (and sampled) first.
    pub fn begin_window(&self, now: SimTime) {
        let mut inner = self.inner.lock();
        close_window(&mut inner, now);
        inner.window_started = Some(now);
        inner.cpu_busy_window = 0.0;
    }

    /// Closes the open CPU observation window at `now`, recording a
    /// [`CpuSample`]. Returns the sample, or `None` if no window was open
    /// or the window was empty.
    pub fn end_window(&self, now: SimTime) -> Option<CpuSample> {
        let mut inner = self.inner.lock();
        close_window(&mut inner, now)
    }

    /// All completed CPU samples so far.
    pub fn cpu_samples(&self) -> Vec<CpuSample> {
        self.inner.lock().samples.clone()
    }

    /// Mean CPU utilisation (%) across all completed windows, weighted
    /// by each window's span: total busy time over total observed time,
    /// so a short idle window does not dilute a long busy one (and vice
    /// versa). With equal-length windows this equals the plain average.
    pub fn mean_cpu_percent(&self) -> f64 {
        let inner = self.inner.lock();
        let mut busy = 0.0;
        let mut observed = 0.0;
        for s in &inner.samples {
            let span = s.end.saturating_since(s.start).as_secs_f64();
            busy += s.cpu_percent / 100.0 * span;
            observed += span;
        }
        if observed == 0.0 {
            return 0.0;
        }
        100.0 * busy / observed
    }
}

fn close_window(inner: &mut MeterInner, now: SimTime) -> Option<CpuSample> {
    let start = inner.window_started.take()?;
    let span: SimDuration = now.saturating_since(start);
    if span.is_zero() {
        return None;
    }
    let sample = CpuSample {
        start,
        end: now,
        cpu_percent: 100.0 * inner.cpu_busy_window / span.as_secs_f64(),
    };
    inner.samples.push(sample);
    inner.cpu_busy_window = 0.0;
    if let Some(obs) = &inner.obs {
        obs.cpu_windows.inc();
    }
    Some(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_accounting_tracks_peak() {
        let m = ResourceMeter::new();
        m.alloc(100);
        m.alloc(200);
        assert_eq!(m.memory_bytes(), 300);
        m.free(250);
        assert_eq!(m.memory_bytes(), 50);
        assert_eq!(m.memory_peak_bytes(), 300);
        m.free(1000); // saturates
        assert_eq!(m.memory_bytes(), 0);
    }

    #[test]
    fn set_memory_overrides_and_peaks() {
        let m = ResourceMeter::new();
        m.set_memory_bytes(500);
        m.set_memory_bytes(100);
        assert_eq!(m.memory_bytes(), 100);
        assert_eq!(m.memory_peak_bytes(), 500);
    }

    #[test]
    fn cpu_windows_compute_percent() {
        let m = ResourceMeter::new();
        m.begin_window(SimTime::from_secs(10));
        m.record_cpu_seconds(0.5);
        let sample = m.end_window(SimTime::from_secs(11)).expect("window closes");
        assert!((sample.cpu_percent - 50.0).abs() < 1e-9);
        assert_eq!(m.cpu_samples().len(), 1);
        assert!((m.mean_cpu_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn reopening_a_window_closes_the_previous_one() {
        let m = ResourceMeter::new();
        m.begin_window(SimTime::from_secs(0));
        m.record_cpu_seconds(1.0);
        m.begin_window(SimTime::from_secs(1)); // closes [0, 1)
        m.record_cpu_seconds(0.25);
        m.end_window(SimTime::from_secs(2));
        let samples = m.cpu_samples();
        assert_eq!(samples.len(), 2);
        assert!((samples[0].cpu_percent - 100.0).abs() < 1e-9);
        assert!((samples[1].cpu_percent - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mean_cpu_percent_weights_by_window_span() {
        // 1 s at 100% followed by 3 s idle: 1 busy second out of 4
        // observed = 25%. The unweighted average of the two samples
        // would misreport 50%.
        let m = ResourceMeter::new();
        m.begin_window(SimTime::from_secs(0));
        m.record_cpu_seconds(1.0);
        m.begin_window(SimTime::from_secs(1));
        m.end_window(SimTime::from_secs(4));
        assert!((m.mean_cpu_percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mean_cpu_percent_invariant_total_busy_over_total_observed() {
        // However the observation is sliced into windows, the weighted
        // mean must equal total busy / total observed.
        let slice_at = |cuts: &[u64]| {
            let m = ResourceMeter::new();
            m.begin_window(SimTime::ZERO);
            let mut recorded = 0.0;
            for &c in cuts {
                // Deterministic, uneven busy pattern: 0.1 s per cut index.
                let busy = 0.1 * c as f64;
                m.record_cpu_seconds(busy - recorded);
                recorded = busy;
                m.begin_window(SimTime::from_secs(c));
            }
            m.record_cpu_seconds(2.0 - recorded);
            m.end_window(SimTime::from_secs(10));
            m.mean_cpu_percent()
        };
        let expected = 100.0 * 2.0 / 10.0;
        assert!((slice_at(&[5]) - expected).abs() < 1e-9);
        assert!((slice_at(&[1, 2, 7]) - expected).abs() < 1e-9);
        assert!((slice_at(&[9]) - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_or_zero_length_windows_yield_nothing() {
        let m = ResourceMeter::new();
        assert!(m.end_window(SimTime::from_secs(1)).is_none());
        m.begin_window(SimTime::from_secs(1));
        assert!(m.end_window(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn clones_share_accounts() {
        let a = ResourceMeter::new();
        let b = a.clone();
        b.alloc(42);
        assert_eq!(a.memory_bytes(), 42);
    }

    #[test]
    fn obs_exports_deterministic_accounts_only() {
        let registry = obs::Registry::new();
        let m = ResourceMeter::new();
        m.alloc(1000); // pre-attach state is published on set_obs
        m.set_obs(&registry.scope("containers.ids"));
        m.alloc(500);
        m.free(700);
        m.begin_window(SimTime::from_secs(0));
        m.record_cpu_seconds(0.5);
        m.end_window(SimTime::from_secs(1));
        let telemetry = registry.snapshot();
        assert_eq!(telemetry.gauge("containers.ids.mem_bytes"), Some(800));
        assert_eq!(telemetry.gauge("containers.ids.mem_peak_bytes"), Some(1500));
        assert_eq!(telemetry.counter("containers.ids.cpu_windows"), Some(1));
        // Wall-clock-derived CPU percentages must NOT leak into the
        // deterministic export.
        let text = telemetry.render_text();
        assert!(!text.contains("cpu_percent"), "export leaks cpu_percent:\n{text}");
    }
}
