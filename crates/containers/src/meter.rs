//! Per-container resource accounting.
//!
//! The paper's sustainability evaluation (Table II) measures the IDS
//! container's CPU usage (%), occupied RAM (Kb) and model size (Kb).
//! [`ResourceMeter`] is the container-side accounting primitive those
//! metrics are computed from: components record the CPU work they perform
//! and the memory they hold, and the meter converts that into utilisation
//! over observation windows.
//!
//! CPU work is recorded as *busy time* — either genuinely measured
//! wall-clock time of a computation (the IDS measures its real inference
//! time) or a modelled cost. Utilisation over a window is busy time
//! divided by window length, exactly like a sampled `docker stats` view.

use std::rc::Rc;

use parking_lot::Mutex;
use netsim::time::{SimDuration, SimTime};

#[derive(Debug, Default)]
struct MeterInner {
    cpu_busy: f64,
    cpu_busy_window: f64,
    window_started: Option<SimTime>,
    mem_current: u64,
    mem_peak: u64,
    samples: Vec<CpuSample>,
}

/// One completed CPU observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSample {
    /// Window start on the virtual clock.
    pub start: SimTime,
    /// Window end on the virtual clock.
    pub end: SimTime,
    /// CPU utilisation over the window, in percent (may exceed 100 when
    /// the recorded work outruns the window, like a saturated core).
    pub cpu_percent: f64,
}

/// A cheaply clonable handle onto one container's resource accounts.
///
/// Handles can be shared between the container runtime and the hosted
/// applications; all clones view the same accounts.
///
/// ```
/// use containers::meter::ResourceMeter;
///
/// let meter = ResourceMeter::new();
/// meter.record_cpu_seconds(0.25);
/// meter.alloc(4096);
/// assert_eq!(meter.memory_bytes(), 4096);
/// assert!((meter.total_cpu_seconds() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceMeter {
    inner: Rc<Mutex<MeterInner>>,
}

impl ResourceMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `seconds` of CPU work.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn record_cpu_seconds(&self, seconds: f64) {
        assert!(seconds.is_finite() && seconds >= 0.0, "invalid cpu seconds: {seconds}");
        let mut inner = self.inner.lock();
        inner.cpu_busy += seconds;
        inner.cpu_busy_window += seconds;
    }

    /// Records a memory allocation of `bytes`.
    pub fn alloc(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.mem_current += bytes;
        inner.mem_peak = inner.mem_peak.max(inner.mem_current);
    }

    /// Records a memory release of `bytes` (saturating).
    pub fn free(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.mem_current = inner.mem_current.saturating_sub(bytes);
    }

    /// Replaces the current memory figure outright (for components that
    /// track their footprint as a whole rather than per-allocation).
    pub fn set_memory_bytes(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.mem_current = bytes;
        inner.mem_peak = inner.mem_peak.max(bytes);
    }

    /// Currently held memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.inner.lock().mem_current
    }

    /// Peak held memory in bytes.
    pub fn memory_peak_bytes(&self) -> u64 {
        self.inner.lock().mem_peak
    }

    /// Total CPU seconds ever recorded.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.inner.lock().cpu_busy
    }

    /// Opens a CPU observation window at virtual time `now`.
    ///
    /// If a window was already open it is closed (and sampled) first.
    pub fn begin_window(&self, now: SimTime) {
        let mut inner = self.inner.lock();
        close_window(&mut inner, now);
        inner.window_started = Some(now);
        inner.cpu_busy_window = 0.0;
    }

    /// Closes the open CPU observation window at `now`, recording a
    /// [`CpuSample`]. Returns the sample, or `None` if no window was open
    /// or the window was empty.
    pub fn end_window(&self, now: SimTime) -> Option<CpuSample> {
        let mut inner = self.inner.lock();
        close_window(&mut inner, now)
    }

    /// All completed CPU samples so far.
    pub fn cpu_samples(&self) -> Vec<CpuSample> {
        self.inner.lock().samples.clone()
    }

    /// Mean CPU utilisation (%) across all completed windows.
    pub fn mean_cpu_percent(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.samples.is_empty() {
            return 0.0;
        }
        inner.samples.iter().map(|s| s.cpu_percent).sum::<f64>() / inner.samples.len() as f64
    }
}

fn close_window(inner: &mut MeterInner, now: SimTime) -> Option<CpuSample> {
    let start = inner.window_started.take()?;
    let span: SimDuration = now.saturating_since(start);
    if span.is_zero() {
        return None;
    }
    let sample = CpuSample {
        start,
        end: now,
        cpu_percent: 100.0 * inner.cpu_busy_window / span.as_secs_f64(),
    };
    inner.samples.push(sample);
    inner.cpu_busy_window = 0.0;
    Some(sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_accounting_tracks_peak() {
        let m = ResourceMeter::new();
        m.alloc(100);
        m.alloc(200);
        assert_eq!(m.memory_bytes(), 300);
        m.free(250);
        assert_eq!(m.memory_bytes(), 50);
        assert_eq!(m.memory_peak_bytes(), 300);
        m.free(1000); // saturates
        assert_eq!(m.memory_bytes(), 0);
    }

    #[test]
    fn set_memory_overrides_and_peaks() {
        let m = ResourceMeter::new();
        m.set_memory_bytes(500);
        m.set_memory_bytes(100);
        assert_eq!(m.memory_bytes(), 100);
        assert_eq!(m.memory_peak_bytes(), 500);
    }

    #[test]
    fn cpu_windows_compute_percent() {
        let m = ResourceMeter::new();
        m.begin_window(SimTime::from_secs(10));
        m.record_cpu_seconds(0.5);
        let sample = m.end_window(SimTime::from_secs(11)).expect("window closes");
        assert!((sample.cpu_percent - 50.0).abs() < 1e-9);
        assert_eq!(m.cpu_samples().len(), 1);
        assert!((m.mean_cpu_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn reopening_a_window_closes_the_previous_one() {
        let m = ResourceMeter::new();
        m.begin_window(SimTime::from_secs(0));
        m.record_cpu_seconds(1.0);
        m.begin_window(SimTime::from_secs(1)); // closes [0, 1)
        m.record_cpu_seconds(0.25);
        m.end_window(SimTime::from_secs(2));
        let samples = m.cpu_samples();
        assert_eq!(samples.len(), 2);
        assert!((samples[0].cpu_percent - 100.0).abs() < 1e-9);
        assert!((samples[1].cpu_percent - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_or_zero_length_windows_yield_nothing() {
        let m = ResourceMeter::new();
        assert!(m.end_window(SimTime::from_secs(1)).is_none());
        m.begin_window(SimTime::from_secs(1));
        assert!(m.end_window(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn clones_share_accounts() {
        let a = ResourceMeter::new();
        let b = a.clone();
        b.alloc(42);
        assert_eq!(a.memory_bytes(), 42);
    }
}
