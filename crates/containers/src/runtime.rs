//! The container runtime: deploys named containers onto the simulated
//! network, the way DDoSim bridges Docker containers into NS-3 via ghost
//! nodes and taps.
//!
//! A [`Runtime`] owns the [`World`] plus a shared CSMA "bridge" link.
//! Each deployed [`Container`] gets a node, an address on the bridge, a
//! [`ResourceMeter`], and hosts one or more applications (the "binaries"
//! inside the container image).

use std::collections::HashMap;

use netsim::faults::FaultAction;
use netsim::link::LinkConfig;
use netsim::packet::{Addr, Provenance};
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, World};
use netsim::{AppId, LinkId, NodeId, SimRng};
use serde::{Deserialize, Serialize};

use crate::meter::ResourceMeter;

/// Identifies a deployed container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(u32);

impl ContainerId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContainerId({})", self.0)
    }
}

/// The role a container plays in the testbed; used for summaries and to
/// choose the default provenance of the traffic its apps originate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The attacker / C2 machine.
    Attacker,
    /// A network-facing IoT device (potential bot).
    Device,
    /// The target server (Apache + Nginx + FTP in the paper).
    TServer,
    /// The real-time IDS unit.
    Ids,
    /// Anything else (benign client pools, probes, …).
    Auxiliary,
}

impl Role {
    /// Default provenance for traffic originated by apps in this role.
    ///
    /// Only the attacker originates malicious traffic *by default*;
    /// devices switch to malicious provenance per-app once infected (the
    /// bot app is registered with malicious provenance, the vulnerable
    /// service keeps benign).
    pub fn default_provenance(self) -> Provenance {
        match self {
            Role::Attacker => Provenance::Malicious,
            _ => Provenance::Benign,
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Role::Attacker => "attacker",
            Role::Device => "device",
            Role::TServer => "tserver",
            Role::Ids => "ids",
            Role::Auxiliary => "auxiliary",
        };
        f.write_str(name)
    }
}

/// Deployment-time description of a container.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// Unique container name (like a Docker container name).
    pub name: String,
    /// Image label, cosmetic (`"ddoshield/tserver:latest"`).
    pub image: String,
    /// Role in the testbed.
    pub role: Role,
}

impl ContainerSpec {
    /// A spec with a derived image label.
    pub fn new(name: impl Into<String>, role: Role) -> Self {
        let name = name.into();
        ContainerSpec { image: format!("ddoshield/{role}:latest"), name, role }
    }
}

/// A deployed container.
#[derive(Debug)]
pub struct Container {
    /// Its identifier.
    pub id: ContainerId,
    /// Deployment spec.
    pub spec: ContainerSpec,
    /// Backing simulated node.
    pub node: NodeId,
    /// Address on the testbed bridge.
    pub addr: Addr,
    /// Applications hosted inside the container.
    pub apps: Vec<AppId>,
    /// Resource accounts.
    pub meter: ResourceMeter,
}

/// Lifecycle state of a deployed container.
///
/// The state machine is `Running → Down → Running` for crashes with a
/// manual restart, and `Running → Rebooting → Running` for scheduled
/// reboots: a rebooting container is down on the network exactly like a
/// crashed one, but the runtime knows a boot completion is already
/// scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContainerState {
    /// The node is up and its apps are attached to the bridge.
    Running,
    /// The node is down with no scheduled restore (crash or `stop`).
    Down,
    /// The node is down but a boot completion is pending.
    Rebooting,
}

impl std::fmt::Display for ContainerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ContainerState::Running => "running",
            ContainerState::Down => "down",
            ContainerState::Rebooting => "rebooting",
        })
    }
}

/// The physical medium of the testbed bridge (DDoSim supports "CSMA and
/// Wi-Fi networks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BridgeMedium {
    /// A wired CSMA bus (the default).
    #[default]
    Csma,
    /// An 802.11-style shared medium with DIFS + contention backoff.
    Wifi,
}

/// The container runtime: owns the world and the bridge network.
///
/// ```
/// use containers::runtime::{ContainerSpec, Role, Runtime};
/// use netsim::link::LinkConfig;
///
/// let mut rt = Runtime::new(42, LinkConfig::lan_100mbps());
/// let dev = rt.deploy(ContainerSpec::new("dev-0", Role::Device));
/// assert_eq!(rt.container(dev).spec.name, "dev-0");
/// ```
#[derive(Debug)]
pub struct Runtime {
    world: World,
    bridge: LinkId,
    containers: Vec<Container>,
    by_name: HashMap<String, ContainerId>,
    next_host: u32,
    /// Scheduled boot-completion times per container, so [`Runtime::state`]
    /// can tell a rebooting container from a crashed one.
    pending_boots: Vec<(ContainerId, SimTime)>,
}

impl Runtime {
    /// Creates a runtime with an empty CSMA bridge network.
    pub fn new(seed: u64, bridge_config: LinkConfig) -> Self {
        Runtime::with_medium(seed, bridge_config, BridgeMedium::Csma)
    }

    /// Creates a runtime with the chosen bridge medium.
    pub fn with_medium(seed: u64, bridge_config: LinkConfig, medium: BridgeMedium) -> Self {
        let mut world = World::new(seed);
        let bridge = match medium {
            BridgeMedium::Csma => world.add_csma_link(&[], bridge_config),
            BridgeMedium::Wifi => world.add_wifi_link(&[], bridge_config),
        };
        Runtime {
            world,
            bridge,
            containers: Vec::new(),
            by_name: HashMap::new(),
            next_host: 2,
            pending_boots: Vec::new(),
        }
    }

    /// The bridge link all containers share.
    pub fn bridge(&self) -> LinkId {
        self.bridge
    }

    /// Read access to the underlying world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the underlying world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Installs buggify decision-point perturbation on the underlying
    /// world (swarm testing). Call before any container app starts.
    pub fn set_buggify(&mut self, cfg: netsim::buggify::BuggifyConfig) {
        self.world.set_buggify(cfg);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Deploys a container: allocates an address in `10.0.x.y`, creates
    /// its node and joins it to the bridge.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use.
    pub fn deploy(&mut self, spec: ContainerSpec) -> ContainerId {
        assert!(!self.by_name.contains_key(&spec.name), "duplicate container name {}", spec.name);
        let host = self.next_host;
        self.next_host += 1;
        let addr = Addr::new(10, 0, (host >> 8) as u8, (host & 0xff) as u8);
        let node = self.world.add_node(addr, spec.name.clone());
        self.world.join_csma_link(self.bridge, node);
        let id = ContainerId(self.containers.len() as u32);
        self.by_name.insert(spec.name.clone(), id);
        self.containers.push(Container {
            id,
            spec,
            node,
            addr,
            apps: Vec::new(),
            meter: ResourceMeter::new(),
        });
        id
    }

    /// Installs an application ("binary") into a container, stamping the
    /// traffic it originates with `provenance`, and schedules its start.
    pub fn install(
        &mut self,
        container: ContainerId,
        app: Box<dyn App>,
        provenance: Provenance,
        start_at: SimTime,
    ) -> AppId {
        let node = self.containers[container.index()].node;
        let app_id = self.world.add_app(node, app, provenance);
        self.containers[container.index()].apps.push(app_id);
        self.world.start_app(app_id, start_at);
        app_id
    }

    /// Installs an application with the container role's default
    /// provenance, starting immediately.
    pub fn install_default(&mut self, container: ContainerId, app: Box<dyn App>) -> AppId {
        let provenance = self.containers[container.index()].spec.role.default_provenance();
        let now = self.world.now();
        self.install(container, app, provenance, now)
    }

    /// The container record.
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.index()]
    }

    /// Looks a container up by name.
    pub fn container_by_name(&self, name: &str) -> Option<&Container> {
        self.by_name.get(name).map(|&id| self.container(id))
    }

    /// All deployed containers.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.iter()
    }

    /// A clone of the container's resource meter handle.
    pub fn meter(&self, id: ContainerId) -> ResourceMeter {
        self.containers[id.index()].meter.clone()
    }

    /// The container's address on the bridge.
    pub fn addr(&self, id: ContainerId) -> Addr {
        self.containers[id.index()].addr
    }

    /// The container's backing node.
    pub fn node(&self, id: ContainerId) -> NodeId {
        self.containers[id.index()].node
    }

    /// Stops a container (its node goes down; connections die).
    pub fn stop(&mut self, id: ContainerId) {
        let node = self.containers[id.index()].node;
        self.world.set_node_up(node, false);
    }

    /// Restarts a stopped container.
    pub fn start(&mut self, id: ContainerId) {
        let node = self.containers[id.index()].node;
        self.world.set_node_up(node, true);
    }

    /// Whether the container is currently running.
    pub fn is_running(&self, id: ContainerId) -> bool {
        self.world.node_is_up(self.containers[id.index()].node)
    }

    /// The container's lifecycle state at the current virtual time.
    pub fn state(&self, id: ContainerId) -> ContainerState {
        if self.is_running(id) {
            return ContainerState::Running;
        }
        let now = self.world.now();
        let boot_pending = self.pending_boots.iter().any(|&(c, at)| c == id && at > now);
        if boot_pending {
            ContainerState::Rebooting
        } else {
            ContainerState::Down
        }
    }

    /// Schedules a hard crash of the container at virtual time `at`.
    /// The crash fires as an ordinary fault event (no RNG consumed), so
    /// scheduling it never perturbs any random stream.
    pub fn schedule_crash(&mut self, id: ContainerId, at: SimTime) {
        let node = self.containers[id.index()].node;
        self.world.schedule_fault(at, FaultAction::NodeCrash { node });
    }

    /// Schedules a crash at `at` followed by a boot completion
    /// `boot_delay` later. While booting the container reports
    /// [`ContainerState::Rebooting`].
    pub fn schedule_reboot(&mut self, id: ContainerId, at: SimTime, boot_delay: SimDuration) {
        let node = self.containers[id.index()].node;
        self.world.schedule_fault(at, FaultAction::NodeReboot { node, boot_delay });
        self.pending_boots.push((id, at + boot_delay));
    }

    /// Total time the container has spent down so far (crashes, reboots
    /// and churn all count), including a still-open down interval.
    pub fn downtime(&self, id: ContainerId) -> SimDuration {
        self.world.node_downtime(self.containers[id.index()].node)
    }

    /// Per-container downtime in nanoseconds, sorted by container name —
    /// integer, deterministic output fit for byte-diffed reports.
    pub fn downtime_table(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .containers
            .iter()
            .map(|c| (c.spec.name.clone(), self.downtime(c.id).as_nanos()))
            .collect();
        rows.sort();
        rows
    }

    /// Runs the simulation for a span of virtual time.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.world.run_for(duration);
    }

    /// Runs the simulation until an absolute virtual time.
    pub fn run_until(&mut self, until: SimTime) {
        self.world.run_until(until);
    }

    /// Pre-schedules on/off churn cycles for a set of containers over a
    /// horizon, mimicking devices leaving and rejoining the network.
    ///
    /// `rate_per_min` is the expected number of departures per container
    /// per minute; each departure lasts `mean_down` seconds on average
    /// (exponentially distributed).
    pub fn apply_churn(
        &mut self,
        containers: &[ContainerId],
        rate_per_min: f64,
        mean_down: SimDuration,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) {
        if rate_per_min <= 0.0 {
            return;
        }
        let start = self.world.now();
        let end = start + horizon;
        for &c in containers {
            let node = self.containers[c.index()].node;
            let mut t = start;
            loop {
                let gap = SimDuration::from_secs_f64(rng.exponential(60.0 / rate_per_min));
                t += gap;
                if t >= end {
                    break;
                }
                let down_for = SimDuration::from_secs_f64(rng.exponential(mean_down.as_secs_f64()));
                let back = (t + down_for).min(end);
                self.world.schedule_node_up(node, false, t);
                self.world.schedule_node_up(node, true, back);
                t = back;
            }
        }
    }

    /// One-line-per-container deployment summary (like `docker ps`).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<16} {:<28} {:<10} {:<12} STATUS", "NAME", "IMAGE", "ROLE", "ADDRESS");
        for c in &self.containers {
            let status = if self.is_running(c.id) { "running" } else { "exited" };
            let _ = writeln!(
                out,
                "{:<16} {:<28} {:<10} {:<12} {status}",
                c.spec.name,
                c.spec.image,
                c.spec.role.to_string(),
                c.addr.to_string(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Runtime {
        Runtime::new(1, LinkConfig::lan_100mbps())
    }

    #[test]
    fn deploy_assigns_unique_addresses() {
        let mut rt = runtime();
        let a = rt.deploy(ContainerSpec::new("a", Role::Device));
        let b = rt.deploy(ContainerSpec::new("b", Role::Device));
        assert_ne!(rt.addr(a), rt.addr(b));
        assert_eq!(rt.container_by_name("a").map(|c| c.id), Some(a));
        assert!(rt.container_by_name("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate container name")]
    fn duplicate_names_rejected() {
        let mut rt = runtime();
        rt.deploy(ContainerSpec::new("a", Role::Device));
        rt.deploy(ContainerSpec::new("a", Role::Device));
    }

    #[test]
    fn stop_and_start_toggle_node_state() {
        let mut rt = runtime();
        let a = rt.deploy(ContainerSpec::new("a", Role::Device));
        rt.deploy(ContainerSpec::new("b", Role::Device));
        assert!(rt.is_running(a));
        rt.stop(a);
        assert!(!rt.is_running(a));
        rt.start(a);
        assert!(rt.is_running(a));
    }

    #[test]
    fn scheduled_reboot_walks_the_state_machine() {
        let mut rt = runtime();
        let a = rt.deploy(ContainerSpec::new("a", Role::Device));
        rt.deploy(ContainerSpec::new("b", Role::Device));
        rt.schedule_reboot(a, SimTime::from_secs(2), SimDuration::from_secs(3));

        assert_eq!(rt.state(a), ContainerState::Running);
        rt.run_for(SimDuration::from_secs(3)); // t=3: down, boot pending
        assert_eq!(rt.state(a), ContainerState::Rebooting);
        assert!(!rt.is_running(a));
        rt.run_for(SimDuration::from_secs(3)); // t=6: booted
        assert_eq!(rt.state(a), ContainerState::Running);
        assert_eq!(rt.downtime(a), SimDuration::from_secs(3));
    }

    #[test]
    fn scheduled_crash_stays_down_without_a_boot() {
        let mut rt = runtime();
        let a = rt.deploy(ContainerSpec::new("a", Role::Device));
        rt.deploy(ContainerSpec::new("b", Role::Device));
        rt.schedule_crash(a, SimTime::from_secs(1));
        rt.run_for(SimDuration::from_secs(4));
        assert_eq!(rt.state(a), ContainerState::Down);
        assert_eq!(rt.downtime(a), SimDuration::from_secs(3));
        // A manual restart recovers it, like `docker start`.
        rt.start(a);
        assert_eq!(rt.state(a), ContainerState::Running);
    }

    #[test]
    fn downtime_table_is_sorted_and_integer() {
        let mut rt = runtime();
        let b = rt.deploy(ContainerSpec::new("b", Role::Device));
        rt.deploy(ContainerSpec::new("a", Role::Device));
        rt.schedule_reboot(b, SimTime::from_secs(1), SimDuration::from_secs(2));
        rt.run_for(SimDuration::from_secs(5));
        let table = rt.downtime_table();
        assert_eq!(
            table,
            vec![("a".to_string(), 0), ("b".to_string(), 2_000_000_000)]
        );
    }

    #[test]
    fn role_provenance_defaults() {
        assert_eq!(Role::Attacker.default_provenance(), Provenance::Malicious);
        assert_eq!(Role::Device.default_provenance(), Provenance::Benign);
        assert_eq!(Role::TServer.default_provenance(), Provenance::Benign);
    }

    #[test]
    fn churn_schedules_state_changes() {
        let mut rt = runtime();
        let a = rt.deploy(ContainerSpec::new("a", Role::Device));
        rt.deploy(ContainerSpec::new("b", Role::Device));
        let mut rng = SimRng::seed_from(3);
        rt.apply_churn(
            &[a],
            6.0, // six departures a minute: plenty within the horizon
            SimDuration::from_secs(5),
            SimDuration::from_secs(120),
            &mut rng,
        );
        let mut down_seen = false;
        for _ in 0..240 {
            rt.run_for(SimDuration::from_millis(500));
            if !rt.is_running(a) {
                down_seen = true;
            }
        }
        assert!(down_seen, "churned container went down at least once");
        // At the horizon every scheduled return has fired.
        rt.run_for(SimDuration::from_secs(1));
        assert!(rt.is_running(a));
    }

    #[test]
    fn wifi_medium_deploys_and_carries_traffic() {
        let mut rt = Runtime::with_medium(21, LinkConfig::wifi_54mbps(), BridgeMedium::Wifi);
        let a = rt.deploy(ContainerSpec::new("a", Role::Device));
        let b = rt.deploy(ContainerSpec::new("b", Role::Device));
        // A raw UDP ping from a to b over the Wi-Fi medium.
        struct Ping {
            to: netsim::Addr,
        }
        impl netsim::world::App for Ping {
            fn on_start(&mut self, ctx: &mut netsim::world::Ctx<'_>) {
                ctx.udp_send(1000, self.to, 2000, bytes::Bytes::from_static(b"hi"));
            }
        }
        struct Pong {
            got: std::rc::Rc<std::cell::RefCell<bool>>,
        }
        impl netsim::world::App for Pong {
            fn on_start(&mut self, ctx: &mut netsim::world::Ctx<'_>) {
                ctx.udp_bind(2000);
            }
            fn on_udp(&mut self, _ctx: &mut netsim::world::Ctx<'_>, _d: netsim::Datagram) {
                *self.got.borrow_mut() = true;
            }
        }
        let got = std::rc::Rc::new(std::cell::RefCell::new(false));
        let to = rt.addr(b);
        rt.install(b, Box::new(Pong { got: std::rc::Rc::clone(&got) }), Provenance::Benign, rt.now());
        rt.install(a, Box::new(Ping { to }), Provenance::Benign, rt.now());
        rt.run_for(SimDuration::from_millis(100));
        assert!(*got.borrow(), "datagram crossed the Wi-Fi bridge");
    }

    #[test]
    fn summary_lists_all_containers() {
        let mut rt = runtime();
        rt.deploy(ContainerSpec::new("tserver", Role::TServer));
        rt.deploy(ContainerSpec::new("ids", Role::Ids));
        let s = rt.summary();
        assert!(s.contains("tserver"));
        assert!(s.contains("ids"));
        assert!(s.contains("running"));
    }
}
