//! # traffic — benign IoT traffic generators
//!
//! The benign half of the DDoShield-IoT dataset: an Apache-like HTTP
//! object server ([`http`]), an Nginx-RTMP-like streaming server
//! ([`video`]) and a customized passive-mode FTP server ([`ftp`]) run on
//! the TServer container, while IoT devices run the matching closed-loop
//! client workloads ([`workload::install_device_clients`]). All
//! randomness (think times, object popularity, file sizes, bitrates) is
//! seeded, so workloads are reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ftp;
pub mod http;
pub mod protocol;
pub mod retry;
pub mod stats;
pub mod video;
pub mod workload;

pub use ftp::{FtpClient, FtpServer, FTP_PORT};
pub use http::{Catalogue, HttpClient, HttpServer, HTTP_PORT};
pub use retry::RetryPolicy;
pub use stats::{ClientStats, ServerStats};
pub use video::{VideoClient, VideoServer, VIDEO_PORT};
pub use workload::{install_device_client_mix, install_device_clients, install_tserver, ClientStatsBundle, ServerStatsBundle, WorkloadConfig};
