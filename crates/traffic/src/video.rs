//! Video-streaming traffic: an Nginx-RTMP-like chunked push server and a
//! viewer workload.
//!
//! A viewer connects, names a stream, and the server pushes fixed-rate
//! chunks (bitrate / chunk interval) until the viewer departs. Viewers
//! watch for exponentially distributed durations and re-join after think
//! pauses. This is the paper's "video traffic" benign class.

use std::collections::HashMap;

use bytes::Bytes;
use netsim::packet::Addr;
use netsim::rng::SimRng;
use netsim::time::SimDuration;
use netsim::world::{App, Ctx};
use netsim::{ConnId, TcpEvent, TimerId};

use crate::protocol::LineBuffer;
use crate::retry::RetryPolicy;
use crate::stats::{ClientStats, ServerStats};

/// The TServer's streaming port (RTMP's registered port).
pub const VIDEO_PORT: u16 = 1935;

/// Interval between pushed chunks.
pub const CHUNK_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// Available stream bitrates in kbit/s (SD → HD ladder).
pub const BITRATE_LADDER_KBPS: [u32; 4] = [400, 800, 1500, 3000];

#[derive(Debug)]
struct StreamSession {
    bitrate_bps: u64,
    buffer: LineBuffer,
    playing: bool,
    /// The fixed-rate chunk pushed every tick. Built once per `PLAY`;
    /// each tick hands the connection a refcounted clone, so streaming
    /// never re-allocates (or copies) the chunk body.
    chunk: Bytes,
}

/// The RTMP-like streaming server.
#[derive(Debug, Default)]
pub struct VideoServer {
    stats: ServerStats,
    sessions: HashMap<ConnId, StreamSession>,
}

impl VideoServer {
    /// Creates a streaming server.
    pub fn new(stats: ServerStats) -> Self {
        VideoServer { stats, sessions: HashMap::new() }
    }

    fn chunk_for(bitrate_bps: u64) -> Bytes {
        let bytes_per_chunk = (bitrate_bps as f64 / 8.0 * CHUNK_INTERVAL.as_secs_f64()) as usize;
        Bytes::from(vec![0xabu8; bytes_per_chunk.max(1)])
    }
}

impl App for VideoServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(ctx.tcp_listen(VIDEO_PORT, 64), "video port already bound");
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, .. } => {
                self.stats.add_accepted();
                self.sessions.insert(
                    conn,
                    StreamSession {
                        bitrate_bps: 0,
                        buffer: LineBuffer::new(),
                        playing: false,
                        chunk: Bytes::new(),
                    },
                );
            }
            TcpEvent::Data { conn, data } => {
                let Some(session) = self.sessions.get_mut(&conn) else { return };
                session.buffer.push(&data);
                while let Some(line) = session.buffer.next_line() {
                    if let Some(rest) = line.strip_prefix("PLAY ") {
                        let ladder_idx: usize = rest.trim().parse().unwrap_or(0);
                        let kbps = BITRATE_LADDER_KBPS
                            [ladder_idx.min(BITRATE_LADDER_KBPS.len() - 1)];
                        session.bitrate_bps = kbps as u64 * 1000;
                        session.chunk = Self::chunk_for(session.bitrate_bps);
                        if !session.playing {
                            session.playing = true;
                            self.stats.add_served();
                            // Kick off the chunk clock for this session.
                            ctx.set_timer(CHUNK_INTERVAL, conn.as_raw());
                        }
                    }
                }
            }
            TcpEvent::PeerClosed { conn } => {
                ctx.tcp_close(conn);
                self.sessions.remove(&conn);
            }
            TcpEvent::Closed { conn } => {
                self.sessions.remove(&conn);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let conn = ConnId::from_raw(token);
        let Some(session) = self.sessions.get(&conn) else { return };
        if !session.playing {
            return;
        }
        let chunk = session.chunk.clone();
        self.stats.add_bytes_sent(chunk.len() as u64);
        ctx.tcp_send_bytes(conn, chunk);
        ctx.set_timer(CHUNK_INTERVAL, token);
    }
}

/// A closed-loop video viewer: join, watch, leave, think, repeat. A
/// refused join or a stream reset mid-watch is retried with capped
/// exponential backoff per its [`RetryPolicy`] before counting as a
/// failure.
#[derive(Debug)]
pub struct VideoClient {
    server: Addr,
    think_mean: f64,
    watch_mean: f64,
    retry: RetryPolicy,
    stats: ClientStats,
    rng: SimRng,
    current: Option<ConnId>,
    session_bytes: u64,
    /// `true` from `started` until the session completes or exhausts its
    /// retries — spans the backoff gaps between attempts.
    in_session: bool,
    /// Attempts already burned by the in-progress session.
    attempts: u32,
    connect_timer: Option<TimerId>,
    leave_timer: Option<TimerId>,
}

/// Timer token: start a new viewing session.
const TOKEN_JOIN: u64 = u64::MAX;
/// Timer token: leave the current session.
const TOKEN_LEAVE: u64 = u64::MAX - 1;
/// Timer token: the join attempt hit its connect deadline.
const TOKEN_TIMEOUT: u64 = u64::MAX - 2;
/// Timer token: backoff elapsed, retry the pending session.
const TOKEN_RETRY: u64 = u64::MAX - 3;

impl VideoClient {
    /// Creates a viewer targeting `server` with the given mean think and
    /// watch durations (seconds), retrying dropped sessions per `retry`.
    pub fn new(
        server: Addr,
        think_mean: f64,
        watch_mean: f64,
        retry: RetryPolicy,
        stats: ClientStats,
        rng: SimRng,
    ) -> Self {
        VideoClient {
            server,
            think_mean,
            watch_mean,
            retry,
            stats,
            rng,
            current: None,
            session_bytes: 0,
            in_session: false,
            attempts: 0,
            connect_timer: None,
            leave_timer: None,
        }
    }

    fn schedule_join(&mut self, ctx: &mut Ctx<'_>) {
        let delay = SimDuration::from_secs_f64(self.rng.exponential(self.think_mean));
        ctx.set_timer(delay, TOKEN_JOIN);
    }

    fn cancel_timers(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(timer) = self.connect_timer.take() {
            ctx.cancel_timer(timer);
        }
        if let Some(timer) = self.leave_timer.take() {
            ctx.cancel_timer(timer);
        }
    }

    /// Dials the streaming server for the pending session and arms the
    /// connect deadline.
    fn begin_attempt(&mut self, ctx: &mut Ctx<'_>) {
        self.session_bytes = 0;
        self.current = Some(ctx.tcp_connect(self.server, VIDEO_PORT));
        self.connect_timer = Some(ctx.set_timer(self.retry.timeout, TOKEN_TIMEOUT));
    }

    /// One attempt died (refused, reset, or stalled). Either schedules a
    /// backoff retry of the session or gives up and counts a failure. A
    /// down node never retries: its session died with it.
    fn attempt_failed(&mut self, ctx: &mut Ctx<'_>) {
        self.cancel_timers(ctx);
        if let Some(conn) = self.current.take() {
            ctx.tcp_abort(conn);
        }
        self.attempts += 1;
        if self.retry.allows_retry(self.attempts) && ctx.is_up() {
            self.stats.add_retried();
            ctx.set_timer(self.retry.backoff(self.attempts, &mut self.rng), TOKEN_RETRY);
        } else {
            self.stats.add_failed();
            self.in_session = false;
            self.attempts = 0;
            self.schedule_join(ctx);
        }
    }
}

impl App for VideoClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.schedule_join(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_JOIN => {
                if self.current.is_some() || self.in_session || !ctx.is_up() {
                    self.schedule_join(ctx);
                    return;
                }
                self.stats.add_started();
                self.in_session = true;
                self.attempts = 0;
                self.begin_attempt(ctx);
            }
            TOKEN_LEAVE => {
                self.leave_timer = None;
                if let Some(conn) = self.current.take() {
                    self.cancel_timers(ctx);
                    ctx.tcp_close(conn);
                    if self.session_bytes > 0 {
                        self.stats.add_completed();
                    } else {
                        self.stats.add_failed();
                    }
                    self.in_session = false;
                    self.attempts = 0;
                    self.schedule_join(ctx);
                }
            }
            TOKEN_TIMEOUT => {
                // Cancelled deadlines never fire, so the join is
                // genuinely stuck.
                self.connect_timer = None;
                if self.current.is_some() {
                    self.attempt_failed(ctx);
                }
            }
            TOKEN_RETRY => {
                if !self.in_session {
                    return;
                }
                if ctx.is_up() {
                    self.begin_attempt(ctx);
                } else {
                    self.stats.add_failed();
                    self.in_session = false;
                    self.attempts = 0;
                    self.schedule_join(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        if Some(event.conn()) != self.current {
            return;
        }
        match event {
            TcpEvent::Connected { conn } => {
                if let Some(timer) = self.connect_timer.take() {
                    ctx.cancel_timer(timer);
                }
                let ladder = self.rng.below(BITRATE_LADDER_KBPS.len() as u64);
                let play = format!("PLAY {ladder}\r\n");
                self.stats.add_bytes_sent(play.len() as u64);
                ctx.tcp_send(conn, play.as_bytes());
                let watch = SimDuration::from_secs_f64(self.rng.exponential(self.watch_mean));
                self.leave_timer = Some(ctx.set_timer(watch, TOKEN_LEAVE));
            }
            TcpEvent::Data { data, .. } => {
                self.session_bytes += data.len() as u64;
                self.stats.add_bytes_received(data.len() as u64);
            }
            TcpEvent::ConnectFailed { .. } | TcpEvent::Closed { .. } => {
                self.current = None;
                self.attempt_failed(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_matches_bitrate() {
        // 800 kbit/s at 100 ms chunks = 10 kB/chunk.
        let chunk = VideoServer::chunk_for(800_000);
        assert_eq!(chunk.len(), 10_000);
    }

    #[test]
    fn ladder_indices_clamp() {
        assert_eq!(BITRATE_LADDER_KBPS[3], 3000);
        let idx = 99usize.min(BITRATE_LADDER_KBPS.len() - 1);
        assert_eq!(BITRATE_LADDER_KBPS[idx], 3000);
    }
}
