//! Shared counters for traffic generators.
//!
//! Applications run boxed inside the [`netsim::world::World`], so
//! orchestration code observes them through cheaply clonable shared
//! handles rather than downcasting.

use std::cell::RefCell;
use std::rc::Rc;

/// Counters kept by a client workload (one per protocol per scenario).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Transactions started (requests sent, streams opened, files asked).
    pub started: u64,
    /// Transactions completed successfully.
    pub completed: u64,
    /// Transactions that failed (connect failure, reset, device churn)
    /// after exhausting their retry budget.
    pub failed: u64,
    /// Retry attempts (a transaction that failed twice then succeeded
    /// counts one started, one completed, two retried).
    pub retried: u64,
    /// Application payload bytes received.
    pub bytes_received: u64,
    /// Application payload bytes sent.
    pub bytes_sent: u64,
}

/// A shared handle onto one workload's counters.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    inner: Rc<RefCell<ClientCounters>>,
}

impl ClientStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> ClientCounters {
        *self.inner.borrow()
    }

    /// Records a started transaction.
    pub fn add_started(&self) {
        self.inner.borrow_mut().started += 1;
    }

    /// Records a completed transaction.
    pub fn add_completed(&self) {
        self.inner.borrow_mut().completed += 1;
    }

    /// Records a failed transaction.
    pub fn add_failed(&self) {
        self.inner.borrow_mut().failed += 1;
    }

    /// Records a retry attempt.
    pub fn add_retried(&self) {
        self.inner.borrow_mut().retried += 1;
    }

    /// Records received payload bytes.
    pub fn add_bytes_received(&self, n: u64) {
        self.inner.borrow_mut().bytes_received += n;
    }

    /// Records sent payload bytes.
    pub fn add_bytes_sent(&self, n: u64) {
        self.inner.borrow_mut().bytes_sent += n;
    }
}

/// Counters kept by a server application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Malformed or unserviceable requests.
    pub errors: u64,
    /// Application payload bytes sent.
    pub bytes_sent: u64,
}

/// A shared handle onto one server's counters.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    inner: Rc<RefCell<ServerCounters>>,
}

impl ServerStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> ServerCounters {
        *self.inner.borrow()
    }

    /// Records an accepted connection.
    pub fn add_accepted(&self) {
        self.inner.borrow_mut().accepted += 1;
    }

    /// Records a served request.
    pub fn add_served(&self) {
        self.inner.borrow_mut().served += 1;
    }

    /// Records an error.
    pub fn add_error(&self) {
        self.inner.borrow_mut().errors += 1;
    }

    /// Records sent payload bytes.
    pub fn add_bytes_sent(&self, n: u64) {
        self.inner.borrow_mut().bytes_sent += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_handles_share_state() {
        let a = ClientStats::new();
        let b = a.clone();
        b.add_started();
        b.add_completed();
        b.add_bytes_received(100);
        let snap = a.snapshot();
        assert_eq!(snap.started, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.bytes_received, 100);
    }

    #[test]
    fn server_handles_share_state() {
        let a = ServerStats::new();
        let b = a.clone();
        b.add_accepted();
        b.add_served();
        b.add_bytes_sent(42);
        b.add_error();
        let snap = a.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.served, 1);
        assert_eq!(snap.bytes_sent, 42);
        assert_eq!(snap.errors, 1);
    }
}
