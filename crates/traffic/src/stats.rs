//! Shared counters for traffic generators.
//!
//! Applications run boxed inside the [`netsim::world::World`], so
//! orchestration code observes them through cheaply clonable shared
//! handles rather than downcasting.

use std::cell::RefCell;
use std::rc::Rc;

use obs::{Counter, Scope};

/// Counters kept by a client workload (one per protocol per scenario).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Transactions started (requests sent, streams opened, files asked).
    pub started: u64,
    /// Transactions completed successfully.
    pub completed: u64,
    /// Transactions that failed (connect failure, reset, device churn)
    /// after exhausting their retry budget.
    pub failed: u64,
    /// Retry attempts (a transaction that failed twice then succeeded
    /// counts one started, one completed, two retried).
    pub retried: u64,
    /// Application payload bytes received.
    pub bytes_received: u64,
    /// Application payload bytes sent.
    pub bytes_sent: u64,
}

/// Telemetry mirrors of [`ClientCounters`]. The scope carries the
/// protocol (e.g. `traffic.client.http`), so per-protocol outcome and
/// retry-exhaustion counters come out separately in the export.
#[derive(Debug)]
struct ClientObs {
    started: Counter,
    completed: Counter,
    failed: Counter,
    retried: Counter,
    bytes_received: Counter,
    bytes_sent: Counter,
}

impl ClientObs {
    fn new(scope: &Scope) -> Self {
        ClientObs {
            started: scope.counter("started"),
            completed: scope.counter("completed"),
            // `failed` counts transactions abandoned after the retry
            // budget ran dry — the retry-exhaustion signal.
            failed: scope.counter("failed"),
            retried: scope.counter("retried"),
            bytes_received: scope.counter("bytes_received"),
            bytes_sent: scope.counter("bytes_sent"),
        }
    }
}

#[derive(Debug, Default)]
struct ClientInner {
    counters: ClientCounters,
    obs: Option<ClientObs>,
}

/// A shared handle onto one workload's counters.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    inner: Rc<RefCell<ClientInner>>,
}

impl ClientStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches telemetry: every counter update is mirrored into `scope`
    /// (one scope per protocol workload).
    pub fn set_obs(&self, scope: &Scope) {
        self.inner.borrow_mut().obs = Some(ClientObs::new(scope));
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> ClientCounters {
        self.inner.borrow().counters
    }

    /// Records a started transaction.
    pub fn add_started(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.started += 1;
        if let Some(obs) = &inner.obs {
            obs.started.inc();
        }
    }

    /// Records a completed transaction.
    pub fn add_completed(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.completed += 1;
        if let Some(obs) = &inner.obs {
            obs.completed.inc();
        }
    }

    /// Records a failed transaction (retry budget exhausted).
    pub fn add_failed(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.failed += 1;
        if let Some(obs) = &inner.obs {
            obs.failed.inc();
        }
    }

    /// Records a retry attempt.
    pub fn add_retried(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.retried += 1;
        if let Some(obs) = &inner.obs {
            obs.retried.inc();
        }
    }

    /// Records received payload bytes.
    pub fn add_bytes_received(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.bytes_received += n;
        if let Some(obs) = &inner.obs {
            obs.bytes_received.add(n);
        }
    }

    /// Records sent payload bytes.
    pub fn add_bytes_sent(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.bytes_sent += n;
        if let Some(obs) = &inner.obs {
            obs.bytes_sent.add(n);
        }
    }
}

/// Counters kept by a server application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Malformed or unserviceable requests.
    pub errors: u64,
    /// Application payload bytes sent.
    pub bytes_sent: u64,
}

/// Telemetry mirrors of [`ServerCounters`].
#[derive(Debug)]
struct ServerObs {
    accepted: Counter,
    served: Counter,
    errors: Counter,
    bytes_sent: Counter,
}

impl ServerObs {
    fn new(scope: &Scope) -> Self {
        ServerObs {
            accepted: scope.counter("accepted"),
            served: scope.counter("served"),
            errors: scope.counter("errors"),
            bytes_sent: scope.counter("bytes_sent"),
        }
    }
}

#[derive(Debug, Default)]
struct ServerInner {
    counters: ServerCounters,
    obs: Option<ServerObs>,
}

/// A shared handle onto one server's counters.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    inner: Rc<RefCell<ServerInner>>,
}

impl ServerStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches telemetry: every counter update is mirrored into `scope`
    /// (one scope per protocol server).
    pub fn set_obs(&self, scope: &Scope) {
        self.inner.borrow_mut().obs = Some(ServerObs::new(scope));
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> ServerCounters {
        self.inner.borrow().counters
    }

    /// Records an accepted connection.
    pub fn add_accepted(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.accepted += 1;
        if let Some(obs) = &inner.obs {
            obs.accepted.inc();
        }
    }

    /// Records a served request.
    pub fn add_served(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.served += 1;
        if let Some(obs) = &inner.obs {
            obs.served.inc();
        }
    }

    /// Records an error.
    pub fn add_error(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.errors += 1;
        if let Some(obs) = &inner.obs {
            obs.errors.inc();
        }
    }

    /// Records sent payload bytes.
    pub fn add_bytes_sent(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.bytes_sent += n;
        if let Some(obs) = &inner.obs {
            obs.bytes_sent.add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_handles_share_state() {
        let a = ClientStats::new();
        let b = a.clone();
        b.add_started();
        b.add_completed();
        b.add_bytes_received(100);
        let snap = a.snapshot();
        assert_eq!(snap.started, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.bytes_received, 100);
    }

    #[test]
    fn server_handles_share_state() {
        let a = ServerStats::new();
        let b = a.clone();
        b.add_accepted();
        b.add_served();
        b.add_bytes_sent(42);
        b.add_error();
        let snap = a.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.served, 1);
        assert_eq!(snap.bytes_sent, 42);
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn obs_mirrors_per_protocol_outcomes() {
        let registry = obs::Registry::new();
        let http = ClientStats::new();
        http.set_obs(&registry.scope("traffic.client.http"));
        let ftp = ClientStats::new();
        ftp.set_obs(&registry.scope("traffic.client.ftp"));
        http.add_started();
        http.add_completed();
        ftp.add_started();
        ftp.add_retried();
        ftp.add_failed();
        let server = ServerStats::new();
        server.set_obs(&registry.scope("traffic.server.http"));
        server.add_accepted();
        server.add_bytes_sent(64);
        let telemetry = registry.snapshot();
        assert_eq!(telemetry.counter("traffic.client.http.completed"), Some(1));
        assert_eq!(telemetry.counter("traffic.client.ftp.failed"), Some(1));
        assert_eq!(telemetry.counter("traffic.client.ftp.retried"), Some(1));
        assert_eq!(telemetry.counter("traffic.client.http.failed"), Some(0));
        assert_eq!(telemetry.counter("traffic.server.http.bytes_sent"), Some(64));
    }
}
