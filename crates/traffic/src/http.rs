//! HTTP traffic: an Apache-like object server and a client workload.
//!
//! The server hosts a catalogue of objects with heavy-tailed (bounded
//! Pareto) sizes; clients request objects with Zipf-skewed popularity,
//! one request per connection, separated by exponential think times —
//! the classic closed-loop web workload. This is the paper's "HTTP
//! traffic" benign class.

use std::collections::HashMap;

use netsim::packet::Addr;
use netsim::rng::{BoundedPareto, SimRng, ZipfTable};
use netsim::time::SimDuration;
use netsim::world::{App, Ctx};
use netsim::{ConnId, TcpEvent, TimerId};

use crate::protocol::{http_response, parse_content_length, BodyReader, LineBuffer};
use crate::retry::RetryPolicy;
use crate::stats::{ClientStats, ServerStats};

/// The TServer's HTTP port.
pub const HTTP_PORT: u16 = 80;

/// A generated catalogue of web objects.
#[derive(Debug, Clone)]
pub struct Catalogue {
    sizes: Vec<usize>,
}

impl Catalogue {
    /// Generates `n` objects with bounded-Pareto sizes in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the bounds are invalid.
    pub fn generate(n: usize, min: usize, max: usize, rng: &mut SimRng) -> Self {
        assert!(n > 0, "empty catalogue");
        let pareto = BoundedPareto::new(1.2, min as f64, max as f64);
        let sizes = (0..n).map(|_| pareto.sample(rng).round() as usize).collect();
        Catalogue { sizes }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if the catalogue has no objects (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size in bytes of object `id`, if it exists.
    pub fn size(&self, id: usize) -> Option<usize> {
        self.sizes.get(id).copied()
    }
}

/// An Apache-like HTTP object server.
#[derive(Debug)]
pub struct HttpServer {
    catalogue: Catalogue,
    stats: ServerStats,
    conns: HashMap<ConnId, LineBuffer>,
}

impl HttpServer {
    /// Creates a server over the given catalogue.
    pub fn new(catalogue: Catalogue, stats: ServerStats) -> Self {
        HttpServer { catalogue, stats, conns: HashMap::new() }
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: &str) {
        let Some(path) = line.strip_prefix("GET ").and_then(|r| r.split(' ').next()) else {
            self.stats.add_error();
            let resp = http_response(400, "Bad Request", 0);
            ctx.tcp_send(conn, &resp);
            return;
        };
        let object = path.strip_prefix("/obj/").and_then(|id| id.parse::<usize>().ok());
        match object.and_then(|id| self.catalogue.size(id)) {
            Some(size) => {
                let resp = http_response(200, "OK", size);
                self.stats.add_served();
                self.stats.add_bytes_sent(size as u64);
                ctx.tcp_send(conn, &resp);
            }
            None => {
                self.stats.add_error();
                let resp = http_response(404, "Not Found", 0);
                ctx.tcp_send(conn, &resp);
            }
        }
    }
}

impl App for HttpServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(ctx.tcp_listen(HTTP_PORT, 128), "HTTP port already bound");
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, .. } => {
                self.stats.add_accepted();
                self.conns.insert(conn, LineBuffer::new());
            }
            TcpEvent::Data { conn, data } => {
                let Some(buffer) = self.conns.get_mut(&conn) else { return };
                buffer.push(&data);
                let mut requests = Vec::new();
                while let Some(line) = buffer.next_line() {
                    if line.starts_with("GET ") {
                        requests.push(line);
                    }
                    // Other header lines and the blank separator are skipped.
                }
                for line in requests {
                    self.handle_request(ctx, conn, &line);
                }
            }
            TcpEvent::PeerClosed { conn } => {
                ctx.tcp_close(conn);
            }
            TcpEvent::Closed { conn } => {
                self.conns.remove(&conn);
            }
            _ => {}
        }
    }
}

#[derive(Debug)]
enum FetchPhase {
    Head(LineBuffer),
    Body(BodyReader),
}

/// Timer token: think pause elapsed, start a new transaction.
const TOKEN_THINK: u64 = 0;
/// Timer token: the in-flight attempt hit its deadline.
const TOKEN_TIMEOUT: u64 = 1;
/// Timer token: backoff elapsed, retry the pending transaction.
const TOKEN_RETRY: u64 = 2;

/// A closed-loop HTTP client: think, request, download, repeat. Failed
/// or timed-out requests are retried with capped exponential backoff per
/// its [`RetryPolicy`] before counting as failures.
#[derive(Debug)]
pub struct HttpClient {
    server: Addr,
    think_mean: f64,
    zipf: ZipfTable,
    retry: RetryPolicy,
    stats: ClientStats,
    rng: SimRng,
    current: Option<(ConnId, FetchPhase)>,
    /// The object of the in-progress transaction; retries re-request the
    /// same object. `None` means the client is thinking.
    pending_object: Option<usize>,
    /// Attempts already burned by the in-progress transaction.
    attempts: u32,
    timeout_timer: Option<TimerId>,
}

impl HttpClient {
    /// Creates a client targeting `server`, with mean think time
    /// `think_mean` seconds between requests, choosing among
    /// `catalogue_len` objects with Zipf(1.0) popularity, and retrying
    /// failed requests per `retry`.
    pub fn new(
        server: Addr,
        think_mean: f64,
        catalogue_len: usize,
        retry: RetryPolicy,
        stats: ClientStats,
        rng: SimRng,
    ) -> Self {
        HttpClient {
            server,
            think_mean,
            zipf: ZipfTable::new(catalogue_len, 1.0),
            retry,
            stats,
            rng,
            current: None,
            pending_object: None,
            attempts: 0,
            timeout_timer: None,
        }
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_>) {
        let delay = SimDuration::from_secs_f64(self.rng.exponential(self.think_mean));
        ctx.set_timer(delay, TOKEN_THINK);
    }

    fn cancel_timeout(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(timer) = self.timeout_timer.take() {
            ctx.cancel_timer(timer);
        }
    }

    /// Opens a connection for the pending transaction and arms its
    /// deadline.
    fn begin_attempt(&mut self, ctx: &mut Ctx<'_>) {
        let conn = ctx.tcp_connect(self.server, HTTP_PORT);
        self.current = Some((conn, FetchPhase::Head(LineBuffer::new())));
        self.timeout_timer = Some(ctx.set_timer(self.retry.timeout, TOKEN_TIMEOUT));
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, ok: bool) {
        if ok {
            self.stats.add_completed();
        } else {
            self.stats.add_failed();
        }
        self.cancel_timeout(ctx);
        self.current = None;
        self.pending_object = None;
        self.attempts = 0;
        self.schedule_next(ctx);
    }

    /// One attempt died (refused, reset, or timed out). Either schedules
    /// a backoff retry of the same transaction or gives up and counts a
    /// failure. A down node never retries: its transaction died with it.
    fn attempt_failed(&mut self, ctx: &mut Ctx<'_>) {
        self.cancel_timeout(ctx);
        self.current = None;
        self.attempts += 1;
        if self.retry.allows_retry(self.attempts) && ctx.is_up() {
            self.stats.add_retried();
            ctx.set_timer(self.retry.backoff(self.attempts, &mut self.rng), TOKEN_RETRY);
        } else {
            self.finish(ctx, false);
        }
    }
}

impl App for HttpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_THINK => {
                if self.current.is_some() || self.pending_object.is_some() || !ctx.is_up() {
                    self.schedule_next(ctx);
                    return;
                }
                self.stats.add_started();
                self.attempts = 0;
                self.pending_object = Some(self.zipf.sample(&mut self.rng));
                self.begin_attempt(ctx);
            }
            TOKEN_TIMEOUT => {
                // Cancelled deadlines never fire, so the attempt is
                // genuinely stuck: tear it down (the abort swallows our
                // own Closed event) and go through the retry path.
                self.timeout_timer = None;
                if let Some((conn, _)) = self.current.take() {
                    ctx.tcp_abort(conn);
                    self.attempt_failed(ctx);
                }
            }
            TOKEN_RETRY => {
                if self.pending_object.is_none() {
                    return;
                }
                if ctx.is_up() {
                    self.begin_attempt(ctx);
                } else {
                    self.finish(ctx, false);
                }
            }
            _ => {}
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        let Some((current_conn, _)) = &self.current else { return };
        if event.conn() != *current_conn {
            return;
        }
        match event {
            TcpEvent::Connected { conn } => {
                let object = self.pending_object.unwrap_or(0);
                let request = format!("GET /obj/{object} HTTP/1.1\r\nHost: tserver\r\n\r\n");
                self.stats.add_bytes_sent(request.len() as u64);
                ctx.tcp_send(conn, request.as_bytes());
            }
            TcpEvent::Data { conn, data } => {
                self.stats.add_bytes_received(data.len() as u64);
                let mut done = false;
                if let Some((_, phase)) = &mut self.current {
                    match phase {
                        FetchPhase::Head(buffer) => {
                            buffer.push(&data);
                            let mut content_length = None;
                            let mut body_started = false;
                            while let Some(line) = buffer.next_line() {
                                if let Some(n) = parse_content_length(&line) {
                                    content_length = Some(n);
                                }
                                if line.is_empty() {
                                    body_started = true;
                                    break;
                                }
                            }
                            if body_started {
                                let expected = content_length.unwrap_or(0);
                                let mut body = BodyReader::new(expected);
                                let leftover = buffer.take_rest();
                                if body.push(&leftover) {
                                    done = true;
                                } else {
                                    *phase = FetchPhase::Body(body);
                                }
                            }
                        }
                        FetchPhase::Body(body) => {
                            if body.push(&data) {
                                done = true;
                            }
                        }
                    }
                }
                if done {
                    ctx.tcp_close(conn);
                    self.finish(ctx, true);
                }
            }
            TcpEvent::ConnectFailed { .. } => self.attempt_failed(ctx),
            TcpEvent::Closed { .. } => {
                // Closed before the body completed: a dead attempt
                // (unless we initiated the close, in which case
                // `current` is already None and this event is ignored).
                self.attempt_failed(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_sizes_are_bounded() {
        let mut rng = SimRng::seed_from(1);
        let cat = Catalogue::generate(100, 500, 100_000, &mut rng);
        assert_eq!(cat.len(), 100);
        for id in 0..cat.len() {
            let size = cat.size(id).unwrap();
            assert!((500..=100_000).contains(&size), "{size}");
        }
        assert_eq!(cat.size(100), None);
    }
}
