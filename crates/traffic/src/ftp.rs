//! FTP traffic: a passive-mode file server and a download workload.
//!
//! The server speaks a compact subset of RFC 959: `USER`/`PASS` login,
//! `PASV` (the server opens an ephemeral data listener and announces the
//! port), `RETR` (the file is pushed down the data connection, which is
//! then closed, followed by `226` on the control channel) and `QUIT`.
//! This is the paper's "FTP traffic" benign class, matching its
//! "customized FTP-Server" on the TServer.

use std::collections::HashMap;

use netsim::packet::Addr;
use netsim::rng::SimRng;
use netsim::time::SimDuration;
use netsim::world::{App, Ctx};
use netsim::{ConnId, TcpEvent, TimerId};

use crate::http::Catalogue;
use crate::protocol::{generated_body, LineBuffer};
use crate::retry::RetryPolicy;
use crate::stats::{ClientStats, ServerStats};

/// The FTP control port.
pub const FTP_PORT: u16 = 21;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoginState {
    NeedUser,
    NeedPass,
    LoggedIn,
}

#[derive(Debug)]
struct FtpSession {
    login: LoginState,
    buffer: LineBuffer,
    data_port: Option<u16>,
    data_conn: Option<ConnId>,
    pending_file: Option<usize>,
}

impl FtpSession {
    fn new() -> Self {
        FtpSession {
            login: LoginState::NeedUser,
            buffer: LineBuffer::new(),
            data_port: None,
            data_conn: None,
            pending_file: None,
        }
    }
}

/// The TServer's customized FTP server.
#[derive(Debug)]
pub struct FtpServer {
    files: Catalogue,
    stats: ServerStats,
    sessions: HashMap<ConnId, FtpSession>,
    data_ports: HashMap<u16, ConnId>,
    data_to_control: HashMap<ConnId, ConnId>,
}

impl FtpServer {
    /// Creates a server over the given file catalogue.
    pub fn new(files: Catalogue, stats: ServerStats) -> Self {
        FtpServer {
            files,
            stats,
            sessions: HashMap::new(),
            data_ports: HashMap::new(),
            data_to_control: HashMap::new(),
        }
    }

    fn reply(&self, ctx: &mut Ctx<'_>, conn: ConnId, text: &str) {
        ctx.tcp_send(conn, format!("{text}\r\n").as_bytes());
    }

    /// Pushes the pending file down a ready data connection.
    fn transfer_if_ready(&mut self, ctx: &mut Ctx<'_>, control: ConnId) {
        let Some(session) = self.sessions.get_mut(&control) else { return };
        let (Some(data_conn), Some(file)) = (session.data_conn, session.pending_file) else {
            return;
        };
        session.pending_file = None;
        let size = self.files.size(file).unwrap_or(0);
        self.reply(ctx, control, "150 Opening BINARY mode data connection");
        let body: Vec<u8> = generated_body(size).collect();
        ctx.tcp_send(data_conn, &body);
        ctx.tcp_close(data_conn);
        self.stats.add_served();
        self.stats.add_bytes_sent(size as u64);
        self.reply(ctx, control, "226 Transfer complete");
        // The data listener served its purpose.
        if let Some(session) = self.sessions.get_mut(&control) {
            if let Some(port) = session.data_port.take() {
                self.data_ports.remove(&port);
                ctx.tcp_unlisten(port);
            }
        }
    }

    fn handle_command(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: &str) {
        let mut parts = line.splitn(2, ' ');
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        let arg = parts.next().unwrap_or("").trim().to_owned();
        let Some(session) = self.sessions.get_mut(&conn) else { return };
        match (verb.as_str(), session.login) {
            ("USER", LoginState::NeedUser) => {
                session.login = LoginState::NeedPass;
                self.reply(ctx, conn, "331 Password required");
            }
            ("PASS", LoginState::NeedPass) => {
                session.login = LoginState::LoggedIn;
                self.reply(ctx, conn, "230 Login successful");
            }
            ("PASV", LoginState::LoggedIn) => {
                let port = ctx.tcp_listen_ephemeral(4);
                session.data_port = Some(port);
                self.data_ports.insert(port, conn);
                self.reply(ctx, conn, &format!("227 Entering Passive Mode ({port})"));
            }
            ("RETR", LoginState::LoggedIn) => {
                let file: Option<usize> =
                    arg.strip_prefix("file").and_then(|id| id.parse().ok());
                match file.filter(|&id| id < self.files.len()) {
                    Some(id) => {
                        session.pending_file = Some(id);
                        self.transfer_if_ready(ctx, conn);
                    }
                    None => {
                        self.stats.add_error();
                        self.reply(ctx, conn, "550 No such file");
                    }
                }
            }
            ("QUIT", _) => {
                self.reply(ctx, conn, "221 Goodbye");
                ctx.tcp_close(conn);
            }
            _ => {
                self.stats.add_error();
                self.reply(ctx, conn, "503 Bad sequence of commands");
            }
        }
    }

    fn cleanup_session(&mut self, ctx: &mut Ctx<'_>, control: ConnId) {
        if let Some(session) = self.sessions.remove(&control) {
            if let Some(port) = session.data_port {
                self.data_ports.remove(&port);
                ctx.tcp_unlisten(port);
            }
            if let Some(data) = session.data_conn {
                self.data_to_control.remove(&data);
            }
        }
    }
}

impl App for FtpServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(ctx.tcp_listen(FTP_PORT, 64), "FTP port already bound");
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, local_port, .. } => {
                if local_port == FTP_PORT {
                    self.stats.add_accepted();
                    self.sessions.insert(conn, FtpSession::new());
                    self.reply(ctx, conn, "220 ddoshield FTP ready");
                } else if let Some(&control) = self.data_ports.get(&local_port) {
                    if let Some(session) = self.sessions.get_mut(&control) {
                        session.data_conn = Some(conn);
                        self.data_to_control.insert(conn, control);
                        self.transfer_if_ready(ctx, control);
                    }
                }
            }
            TcpEvent::Data { conn, data } => {
                if !self.sessions.contains_key(&conn) {
                    return; // bytes on a data channel are ignored
                }
                let session = self.sessions.get_mut(&conn).expect("checked above");
                session.buffer.push(&data);
                let mut lines = Vec::new();
                while let Some(line) = session.buffer.next_line() {
                    lines.push(line);
                }
                for line in lines {
                    self.handle_command(ctx, conn, &line);
                }
            }
            TcpEvent::PeerClosed { conn }
                if self.sessions.contains_key(&conn) => {
                    ctx.tcp_close(conn);
                }
            TcpEvent::Closed { conn } => {
                if self.sessions.contains_key(&conn) {
                    self.cleanup_session(ctx, conn);
                } else if let Some(control) = self.data_to_control.remove(&conn) {
                    if let Some(session) = self.sessions.get_mut(&control) {
                        session.data_conn = None;
                    }
                }
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientPhase {
    Idle,
    Connecting,
    WaitWelcome,
    WaitUser,
    WaitPass,
    WaitPasv,
    Downloading,
    WaitComplete,
}

/// Timer token: think pause elapsed, start a new download session.
const TOKEN_THINK: u64 = 0;
/// Timer token: the in-flight session hit its deadline.
const TOKEN_TIMEOUT: u64 = 1;
/// Timer token: backoff elapsed, retry the pending session.
const TOKEN_RETRY: u64 = 2;

/// A closed-loop FTP download client. A session that fails or stalls is
/// retried from scratch (fresh login) with capped exponential backoff
/// per its [`RetryPolicy`] before counting as a failure.
#[derive(Debug)]
pub struct FtpClient {
    server: Addr,
    think_mean: f64,
    catalogue_len: usize,
    retry: RetryPolicy,
    stats: ClientStats,
    rng: SimRng,
    phase: ClientPhase,
    control: Option<ConnId>,
    data: Option<ConnId>,
    buffer: LineBuffer,
    file_bytes: u64,
    data_closed: bool,
    got_226: bool,
    /// `true` from `started` until the transaction completes or exhausts
    /// its retries — spans the backoff gaps between attempts.
    in_transaction: bool,
    /// Attempts already burned by the in-progress transaction.
    attempts: u32,
    timeout_timer: Option<TimerId>,
}

impl FtpClient {
    /// Creates a client targeting `server`, downloading one of
    /// `catalogue_len` files per session with mean think time
    /// `think_mean` seconds between sessions, retrying failed sessions
    /// per `retry`.
    pub fn new(
        server: Addr,
        think_mean: f64,
        catalogue_len: usize,
        retry: RetryPolicy,
        stats: ClientStats,
        rng: SimRng,
    ) -> Self {
        FtpClient {
            server,
            think_mean,
            catalogue_len,
            retry,
            stats,
            rng,
            phase: ClientPhase::Idle,
            control: None,
            data: None,
            buffer: LineBuffer::new(),
            file_bytes: 0,
            data_closed: false,
            got_226: false,
            in_transaction: false,
            attempts: 0,
            timeout_timer: None,
        }
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_>) {
        let delay = SimDuration::from_secs_f64(self.rng.exponential(self.think_mean));
        ctx.set_timer(delay, TOKEN_THINK);
    }

    fn reset(&mut self) {
        self.phase = ClientPhase::Idle;
        self.control = None;
        self.data = None;
        self.buffer = LineBuffer::new();
        self.file_bytes = 0;
        self.data_closed = false;
        self.got_226 = false;
    }

    fn cancel_timeout(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(timer) = self.timeout_timer.take() {
            ctx.cancel_timer(timer);
        }
    }

    /// Dials the control channel for the pending transaction and arms
    /// its deadline.
    fn begin_attempt(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = ClientPhase::Connecting;
        self.control = Some(ctx.tcp_connect(self.server, FTP_PORT));
        self.timeout_timer = Some(ctx.set_timer(self.retry.timeout, TOKEN_TIMEOUT));
    }

    /// One attempt died. Either schedules a backoff retry of the whole
    /// session or gives up and counts a failure. A down node never
    /// retries: its transaction died with it.
    fn fail(&mut self, ctx: &mut Ctx<'_>) {
        self.cancel_timeout(ctx);
        if let Some(conn) = self.control.take() {
            ctx.tcp_abort(conn);
        }
        if let Some(conn) = self.data.take() {
            ctx.tcp_abort(conn);
        }
        self.reset();
        self.attempts += 1;
        if self.retry.allows_retry(self.attempts) && ctx.is_up() {
            self.stats.add_retried();
            ctx.set_timer(self.retry.backoff(self.attempts, &mut self.rng), TOKEN_RETRY);
        } else {
            self.stats.add_failed();
            self.in_transaction = false;
            self.attempts = 0;
            self.schedule_next(ctx);
        }
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, text: String) {
        if let Some(conn) = self.control {
            self.stats.add_bytes_sent(text.len() as u64 + 2);
            ctx.tcp_send(conn, format!("{text}\r\n").as_bytes());
        }
    }

    fn maybe_complete(&mut self, ctx: &mut Ctx<'_>) {
        if self.data_closed && self.got_226 {
            self.cancel_timeout(ctx);
            self.stats.add_completed();
            self.send(ctx, "QUIT".to_owned());
            if let Some(conn) = self.control.take() {
                ctx.tcp_close(conn);
            }
            self.reset();
            self.in_transaction = false;
            self.attempts = 0;
            self.schedule_next(ctx);
        }
    }

    fn handle_reply(&mut self, ctx: &mut Ctx<'_>, line: String) {
        let code = line.split(' ').next().unwrap_or("");
        match (self.phase, code) {
            (ClientPhase::WaitWelcome, "220") => {
                self.phase = ClientPhase::WaitUser;
                self.send(ctx, "USER iot".to_owned());
            }
            (ClientPhase::WaitUser, "331") => {
                self.phase = ClientPhase::WaitPass;
                self.send(ctx, "PASS hunter2".to_owned());
            }
            (ClientPhase::WaitPass, "230") => {
                self.phase = ClientPhase::WaitPasv;
                self.send(ctx, "PASV".to_owned());
            }
            (ClientPhase::WaitPasv, "227") => {
                let port: Option<u16> = line
                    .rsplit_once('(')
                    .and_then(|(_, rest)| rest.strip_suffix(')'))
                    .and_then(|p| p.parse().ok());
                match port {
                    Some(port) => {
                        self.phase = ClientPhase::Downloading;
                        let data = ctx.tcp_connect(self.server, port);
                        self.data = Some(data);
                        let file = self.rng.below(self.catalogue_len as u64);
                        self.send(ctx, format!("RETR file{file}"));
                    }
                    None => self.fail(ctx),
                }
            }
            (ClientPhase::Downloading, "150") => {
                self.phase = ClientPhase::WaitComplete;
            }
            (ClientPhase::Downloading | ClientPhase::WaitComplete, "226") => {
                self.got_226 = true;
                self.maybe_complete(ctx);
            }
            (_, "550") | (_, "503") => self.fail(ctx),
            _ => {}
        }
    }
}

impl App for FtpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_THINK => {
                if self.phase != ClientPhase::Idle || self.in_transaction || !ctx.is_up() {
                    self.schedule_next(ctx);
                    return;
                }
                self.stats.add_started();
                self.in_transaction = true;
                self.attempts = 0;
                self.begin_attempt(ctx);
            }
            TOKEN_TIMEOUT => {
                // Cancelled deadlines never fire, so the session is
                // genuinely stuck mid-protocol.
                self.timeout_timer = None;
                if self.phase != ClientPhase::Idle {
                    self.fail(ctx);
                }
            }
            TOKEN_RETRY => {
                if !self.in_transaction {
                    return;
                }
                if ctx.is_up() {
                    self.begin_attempt(ctx);
                } else {
                    self.stats.add_failed();
                    self.in_transaction = false;
                    self.attempts = 0;
                    self.schedule_next(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        let conn = event.conn();
        let is_control = Some(conn) == self.control;
        let is_data = Some(conn) == self.data;
        if !is_control && !is_data {
            return;
        }
        match event {
            TcpEvent::Connected { .. } if is_control => {
                self.phase = ClientPhase::WaitWelcome;
            }
            TcpEvent::Data { data, .. } => {
                self.stats.add_bytes_received(data.len() as u64);
                if is_control {
                    self.buffer.push(&data);
                    let mut lines = Vec::new();
                    while let Some(line) = self.buffer.next_line() {
                        lines.push(line);
                    }
                    for line in lines {
                        self.handle_reply(ctx, line);
                    }
                } else {
                    self.file_bytes += data.len() as u64;
                }
            }
            TcpEvent::PeerClosed { .. } | TcpEvent::Closed { .. } if is_data => {
                if matches!(event, TcpEvent::PeerClosed { .. }) {
                    ctx.tcp_close(conn);
                }
                self.data_closed = true;
                self.maybe_complete(ctx);
            }
            TcpEvent::ConnectFailed { .. } => self.fail(ctx),
            TcpEvent::Closed { .. } if is_control => {
                // Unexpected control-channel loss mid-session.
                self.control = None;
                self.fail(ctx);
            }
            _ => {}
        }
    }

    fn on_link_state(&mut self, _ctx: &mut Ctx<'_>, up: bool) {
        if !up {
            self.reset();
        }
    }
}

#[cfg(test)]
mod tests {

    #[test]
    fn pasv_reply_port_parses() {
        let line = "227 Entering Passive Mode (23456)";
        let port: Option<u16> = line
            .rsplit_once('(')
            .and_then(|(_, rest)| rest.strip_suffix(')'))
            .and_then(|p| p.parse().ok());
        assert_eq!(port, Some(23456));
    }
}
