//! Benign workload assembly: installs the TServer's three servers and a
//! mix of protocol clients across the IoT devices.

use netsim::packet::{Addr, Provenance};
use netsim::rng::SimRng;
use netsim::time::SimTime;
use serde::{Deserialize, Serialize};

use containers::runtime::{ContainerId, Runtime};

use crate::ftp::{FtpClient, FtpServer};
use crate::http::{Catalogue, HttpClient, HttpServer};
use crate::retry::RetryPolicy;
use crate::stats::{ClientStats, ServerStats};
use crate::video::{VideoClient, VideoServer};

/// Intensity knobs of the benign workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Web objects in the HTTP catalogue.
    pub http_objects: usize,
    /// Smallest HTTP object in bytes.
    pub http_min_bytes: usize,
    /// Largest HTTP object in bytes.
    pub http_max_bytes: usize,
    /// Mean think time between HTTP requests (seconds).
    pub http_think_mean: f64,
    /// Mean think time between video sessions (seconds).
    pub video_think_mean: f64,
    /// Mean video watch duration (seconds).
    pub video_watch_mean: f64,
    /// Files in the FTP catalogue.
    pub ftp_files: usize,
    /// Smallest FTP file in bytes.
    pub ftp_min_bytes: usize,
    /// Largest FTP file in bytes.
    pub ftp_max_bytes: usize,
    /// Mean think time between FTP sessions (seconds).
    pub ftp_think_mean: f64,
    /// Per-attempt deadline for client transactions (seconds).
    pub request_timeout_secs: f64,
    /// Attempts per client transaction, including the first.
    pub retry_max_attempts: u32,
    /// Base retry backoff (seconds); doubles per attempt up to
    /// `retry_cap_secs`.
    pub retry_base_secs: f64,
    /// Upper bound on the un-jittered retry backoff (seconds).
    pub retry_cap_secs: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            http_objects: 200,
            http_min_bytes: 500,
            http_max_bytes: 200_000,
            http_think_mean: 0.8,
            video_think_mean: 4.0,
            video_watch_mean: 15.0,
            ftp_files: 50,
            ftp_min_bytes: 5_000,
            ftp_max_bytes: 500_000,
            ftp_think_mean: 3.0,
            request_timeout_secs: 10.0,
            retry_max_attempts: 3,
            retry_base_secs: 0.5,
            retry_cap_secs: 8.0,
        }
    }
}

impl WorkloadConfig {
    /// The per-transaction timeout/retry policy shared by all clients.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            timeout: netsim::time::SimDuration::from_secs_f64(self.request_timeout_secs),
            max_attempts: self.retry_max_attempts.max(1),
            base: netsim::time::SimDuration::from_secs_f64(self.retry_base_secs),
            cap: netsim::time::SimDuration::from_secs_f64(self.retry_cap_secs),
        }
    }
}

/// Stats handles for the three TServer servers.
#[derive(Debug, Clone, Default)]
pub struct ServerStatsBundle {
    /// Apache-like HTTP server counters.
    pub http: ServerStats,
    /// RTMP-like video server counters.
    pub video: ServerStats,
    /// FTP server counters.
    pub ftp: ServerStats,
}

impl ServerStatsBundle {
    /// Attaches per-protocol telemetry under `scope` (e.g.
    /// `traffic.server.http.*`).
    pub fn set_obs(&self, scope: &obs::Scope) {
        self.http.set_obs(&scope.child("http"));
        self.video.set_obs(&scope.child("video"));
        self.ftp.set_obs(&scope.child("ftp"));
    }
}

/// Stats handles for the device-side client workloads.
#[derive(Debug, Clone, Default)]
pub struct ClientStatsBundle {
    /// HTTP client counters (all devices aggregated).
    pub http: ClientStats,
    /// Video client counters.
    pub video: ClientStats,
    /// FTP client counters.
    pub ftp: ClientStats,
}

impl ClientStatsBundle {
    /// Attaches per-protocol telemetry under `scope` (e.g.
    /// `traffic.client.http.*`).
    pub fn set_obs(&self, scope: &obs::Scope) {
        self.http.set_obs(&scope.child("http"));
        self.video.set_obs(&scope.child("video"));
        self.ftp.set_obs(&scope.child("ftp"));
    }
}

/// Installs Apache-, Nginx/RTMP- and FTP-like servers into the TServer
/// container. Returns the shared stats handles.
pub fn install_tserver(
    rt: &mut Runtime,
    tserver: ContainerId,
    config: &WorkloadConfig,
    rng: &mut SimRng,
) -> ServerStatsBundle {
    let stats = ServerStatsBundle::default();
    let http_catalogue =
        Catalogue::generate(config.http_objects, config.http_min_bytes, config.http_max_bytes, rng);
    let ftp_catalogue =
        Catalogue::generate(config.ftp_files, config.ftp_min_bytes, config.ftp_max_bytes, rng);
    let start = rt.now();
    rt.install(
        tserver,
        Box::new(HttpServer::new(http_catalogue, stats.http.clone())),
        Provenance::Benign,
        start,
    );
    rt.install(
        tserver,
        Box::new(VideoServer::new(stats.video.clone())),
        Provenance::Benign,
        start,
    );
    rt.install(
        tserver,
        Box::new(FtpServer::new(ftp_catalogue, stats.ftp.clone())),
        Provenance::Benign,
        start,
    );
    stats
}

/// Installs a rotating mix of protocol clients over the device
/// containers: device *i* gets an HTTP, video or FTP client depending on
/// `(i + offset) % 3`, so every protocol is always represented. Calling
/// this multiple times with increasing `offset` stacks extra clients
/// onto each device (a busier deployment), accumulating into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn install_device_client_mix(
    rt: &mut Runtime,
    devices: &[ContainerId],
    tserver_addr: Addr,
    config: &WorkloadConfig,
    start_at: SimTime,
    offset: usize,
    stats: &ClientStatsBundle,
    rng: &mut SimRng,
) {
    let retry = config.retry_policy();
    for (i, &device) in devices.iter().enumerate() {
        let client_rng = rng.fork();
        let app: Box<dyn netsim::world::App> = match (i + offset) % 3 {
            0 => Box::new(HttpClient::new(
                tserver_addr,
                config.http_think_mean,
                config.http_objects,
                retry,
                stats.http.clone(),
                client_rng,
            )),
            1 => Box::new(VideoClient::new(
                tserver_addr,
                config.video_think_mean,
                config.video_watch_mean,
                retry,
                stats.video.clone(),
                client_rng,
            )),
            _ => Box::new(FtpClient::new(
                tserver_addr,
                config.ftp_think_mean,
                config.ftp_files,
                retry,
                stats.ftp.clone(),
                client_rng,
            )),
        };
        rt.install(device, app, Provenance::Benign, start_at);
    }
}

/// Installs one client per device (the default mix) and returns the
/// shared stats handles.
pub fn install_device_clients(
    rt: &mut Runtime,
    devices: &[ContainerId],
    tserver_addr: Addr,
    config: &WorkloadConfig,
    start_at: SimTime,
    rng: &mut SimRng,
) -> ClientStatsBundle {
    let stats = ClientStatsBundle::default();
    install_device_client_mix(rt, devices, tserver_addr, config, start_at, 0, &stats, rng);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use containers::runtime::{ContainerSpec, Role};
    use netsim::link::LinkConfig;
    use netsim::time::SimDuration;

    /// End-to-end benign traffic: all three protocols complete
    /// transactions over the shared bus.
    #[test]
    fn benign_mix_flows_end_to_end() {
        let mut rt = Runtime::new(11, LinkConfig::lan_100mbps());
        let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
        let devices: Vec<ContainerId> =
            (0..6).map(|i| rt.deploy(ContainerSpec::new(format!("dev-{i}"), Role::Device))).collect();
        let mut rng = SimRng::seed_from(5);
        let config = WorkloadConfig {
            http_think_mean: 0.3,
            video_think_mean: 1.0,
            video_watch_mean: 2.0,
            ftp_think_mean: 1.0,
            ..WorkloadConfig::default()
        };
        let server_stats = install_tserver(&mut rt, tserver, &config, &mut rng);
        let tserver_addr = rt.addr(tserver);
        let client_stats =
            install_device_clients(&mut rt, &devices, tserver_addr, &config, SimTime::ZERO, &mut rng);

        rt.run_for(SimDuration::from_secs(30));

        let http = client_stats.http.snapshot();
        let video = client_stats.video.snapshot();
        let ftp = client_stats.ftp.snapshot();
        assert!(http.completed >= 10, "http completed {}", http.completed);
        assert!(video.completed >= 2, "video completed {}", video.completed);
        assert!(ftp.completed >= 2, "ftp completed {}", ftp.completed);
        assert!(http.bytes_received > 0);
        assert!(video.bytes_received > 0);
        assert!(ftp.bytes_received > 0);

        let sv = server_stats.http.snapshot();
        assert_eq!(sv.served, sv.served.max(1), "http server served requests");
        assert!(server_stats.video.snapshot().bytes_sent > 0);
        assert!(server_stats.ftp.snapshot().served > 0);
    }

    /// The workload survives device churn: transactions fail during
    /// downtime but resume afterwards.
    #[test]
    fn benign_mix_survives_churn() {
        let mut rt = Runtime::new(12, LinkConfig::lan_100mbps());
        let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
        let devices: Vec<ContainerId> =
            (0..3).map(|i| rt.deploy(ContainerSpec::new(format!("dev-{i}"), Role::Device))).collect();
        let mut rng = SimRng::seed_from(6);
        let config = WorkloadConfig {
            http_think_mean: 0.2,
            video_think_mean: 1.0,
            ftp_think_mean: 1.0,
            ..WorkloadConfig::default()
        };
        install_tserver(&mut rt, tserver, &config, &mut rng);
        let tserver_addr = rt.addr(tserver);
        let client_stats =
            install_device_clients(&mut rt, &devices, tserver_addr, &config, SimTime::ZERO, &mut rng);

        rt.run_for(SimDuration::from_secs(5));
        let before = client_stats.http.snapshot().completed;
        for &d in &devices {
            rt.stop(d);
        }
        rt.run_for(SimDuration::from_secs(5));
        for &d in &devices {
            rt.start(d);
        }
        rt.run_for(SimDuration::from_secs(10));
        let after = client_stats.http.snapshot().completed;
        assert!(after > before, "clients resumed after churn: {before} -> {after}");
    }
}
