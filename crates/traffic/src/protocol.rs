//! Tiny text-protocol framing shared by the application servers.
//!
//! All three benign protocols in the testbed frame their control messages
//! as CRLF-terminated ASCII lines, with bulk payload framed by an explicit
//! length (HTTP `Content-Length`) or by connection close (FTP data
//! channels). [`LineBuffer`] accumulates stream bytes and yields complete
//! lines; [`BodyReader`] accumulates an explicitly sized body.

use bytes::Bytes;

/// Accumulates stream bytes and yields complete CRLF-terminated lines.
///
/// ```
/// use traffic::protocol::LineBuffer;
///
/// let mut buf = LineBuffer::new();
/// buf.push(b"GET /a HTT");
/// assert_eq!(buf.next_line(), None);
/// buf.push(b"P/1.1\r\nHost: x\r\n");
/// assert_eq!(buf.next_line().as_deref(), Some("GET /a HTTP/1.1"));
/// assert_eq!(buf.next_line().as_deref(), Some("Host: x"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct LineBuffer {
    data: Vec<u8>,
}

impl LineBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Pops the next complete line (without its CRLF), if one is buffered.
    /// Non-UTF-8 lines are replaced lossily.
    pub fn next_line(&mut self) -> Option<String> {
        let pos = self.data.windows(2).position(|w| w == b"\r\n")?;
        let line = String::from_utf8_lossy(&self.data[..pos]).into_owned();
        self.data.drain(..pos + 2);
        Some(line)
    }

    /// Takes all remaining buffered bytes (for switching to body mode).
    pub fn take_rest(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.data)
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Accumulates an explicitly sized payload.
#[derive(Debug, Clone)]
pub struct BodyReader {
    expected: usize,
    received: usize,
}

impl BodyReader {
    /// Starts reading a body of `expected` bytes.
    pub fn new(expected: usize) -> Self {
        BodyReader { expected, received: 0 }
    }

    /// Feeds stream bytes; returns `true` once the body is complete.
    pub fn push(&mut self, bytes: &[u8]) -> bool {
        self.received += bytes.len();
        self.is_complete()
    }

    /// `true` once at least `expected` bytes arrived.
    pub fn is_complete(&self) -> bool {
        self.received >= self.expected
    }

    /// Bytes received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Bytes expected in total.
    pub fn expected(&self) -> usize {
        self.expected
    }
}

/// Builds an HTTP/1.1-style response head plus a generated body.
pub fn http_response(status: u16, reason: &str, body_len: usize) -> Bytes {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nServer: ddoshield-tserver\r\nContent-Length: {body_len}\r\n\r\n"
    );
    let mut out = Vec::with_capacity(head.len() + body_len);
    out.extend_from_slice(head.as_bytes());
    out.extend(generated_body(body_len));
    Bytes::from(out)
}

/// Parses a `Content-Length` header value out of a header line.
pub fn parse_content_length(line: &str) -> Option<usize> {
    let (name, value) = line.split_once(':')?;
    if name.trim().eq_ignore_ascii_case("content-length") {
        value.trim().parse().ok()
    } else {
        None
    }
}

/// Deterministic filler payload of the given length (a repeating pattern,
/// so tests can verify integrity cheaply).
pub fn generated_body(len: usize) -> impl Iterator<Item = u8> {
    (0..len).map(|i| (i % 251) as u8)
}

/// Verifies that `bytes` is a prefix of the deterministic filler pattern
/// starting at `offset`.
pub fn body_matches(offset: usize, bytes: &[u8]) -> bool {
    bytes.iter().enumerate().all(|(i, &b)| b == ((offset + i) % 251) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_handles_split_crlf() {
        let mut buf = LineBuffer::new();
        buf.push(b"hello\r");
        assert_eq!(buf.next_line(), None);
        buf.push(b"\nworld\r\n");
        assert_eq!(buf.next_line().as_deref(), Some("hello"));
        assert_eq!(buf.next_line().as_deref(), Some("world"));
        assert_eq!(buf.next_line(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn line_buffer_take_rest_returns_leftover() {
        let mut buf = LineBuffer::new();
        buf.push(b"head\r\nbody-bytes");
        assert_eq!(buf.next_line().as_deref(), Some("head"));
        assert_eq!(buf.take_rest(), b"body-bytes");
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn body_reader_counts_to_completion() {
        let mut body = BodyReader::new(10);
        assert!(!body.push(&[0; 4]));
        assert!(!body.is_complete());
        assert!(body.push(&[0; 6]));
        assert_eq!(body.received(), 10);
        assert_eq!(body.expected(), 10);
    }

    #[test]
    fn http_response_is_parseable() {
        let resp = http_response(200, "OK", 5);
        let mut buf = LineBuffer::new();
        buf.push(&resp);
        assert_eq!(buf.next_line().as_deref(), Some("HTTP/1.1 200 OK"));
        let mut content_length = None;
        while let Some(line) = buf.next_line() {
            if line.is_empty() {
                break;
            }
            if let Some(n) = parse_content_length(&line) {
                content_length = Some(n);
            }
        }
        assert_eq!(content_length, Some(5));
        assert_eq!(buf.take_rest().len(), 5);
    }

    #[test]
    fn parse_content_length_is_case_insensitive() {
        assert_eq!(parse_content_length("CONTENT-LENGTH: 42"), Some(42));
        assert_eq!(parse_content_length("content-length:7"), Some(7));
        assert_eq!(parse_content_length("Host: x"), None);
        assert_eq!(parse_content_length("nonsense"), None);
    }

    #[test]
    fn generated_body_roundtrips_with_matcher() {
        let body: Vec<u8> = generated_body(600).collect();
        assert!(body_matches(0, &body));
        assert!(body_matches(100, &body[100..]));
        assert!(!body_matches(1, &body));
    }

    /// Property: however a CRLF-framed stream is chunked — including
    /// splits that land between the `\r` and the `\n` — the sequence of
    /// parsed lines is identical to feeding the stream in one push.
    #[test]
    fn line_buffer_is_chunking_invariant() {
        use netsim::rng::SimRng;

        let lines = ["GET /obj/1 HTTP/1.1", "Host: tserver", "", "PLAY 2", "x", "226 done"];
        let stream: Vec<u8> =
            lines.iter().flat_map(|l| l.bytes().chain(*b"\r\n")).collect();

        let mut whole = LineBuffer::new();
        whole.push(&stream);
        let mut expected = Vec::new();
        while let Some(line) = whole.next_line() {
            expected.push(line);
        }
        assert_eq!(expected, lines);

        let mut rng = SimRng::seed_from(0xc21f);
        for _ in 0..200 {
            let mut buf = LineBuffer::new();
            let mut got = Vec::new();
            let mut rest = &stream[..];
            while !rest.is_empty() {
                let take = rng.int_range(1, rest.len().min(7) as u64) as usize;
                let (chunk, tail) = rest.split_at(take);
                buf.push(chunk);
                while let Some(line) = buf.next_line() {
                    got.push(line);
                }
                rest = tail;
            }
            assert_eq!(got, expected);
            assert!(buf.is_empty(), "nothing left after the final CRLF");
        }
    }

    /// Property: `parse_content_length` tolerates arbitrary padding and
    /// casing around the header name and value, and rejects garbage.
    #[test]
    fn parse_content_length_survives_padding_and_case() {
        use netsim::rng::SimRng;

        let mut rng = SimRng::seed_from(0xc1e4);
        for _ in 0..200 {
            let n = rng.below(1_000_000);
            let name: String = "Content-Length"
                .chars()
                .map(|c| {
                    if rng.below(2) == 0 {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    }
                })
                .collect();
            let pad = |rng: &mut SimRng| " ".repeat(rng.below(4) as usize);
            let line =
                format!("{}{}{}:{}{}{}", pad(&mut rng), name, pad(&mut rng), pad(&mut rng), n, pad(&mut rng));
            assert_eq!(parse_content_length(&line), Some(n as usize), "{line:?}");
        }
        assert_eq!(parse_content_length("Content-Length: -1"), None);
        assert_eq!(parse_content_length("Content-Length: 12x"), None);
        assert_eq!(parse_content_length("Content-Length 12"), None);
        assert_eq!(parse_content_length("Content-Type: 12"), None);
    }
}
