//! Bounded retry with capped exponential backoff for client workloads.
//!
//! Real IoT firmware does not give up after one refused connection: HTTP
//! libraries, streaming SDKs and FTP clients all retry a few times with
//! growing pauses before reporting failure. [`RetryPolicy`] captures
//! that behaviour for the benign clients so a rebooting TServer produces
//! a dip-and-recover success-rate curve instead of a cliff. All jitter
//! is drawn from the caller's [`SimRng`], keeping runs seed-deterministic.

use netsim::rng::SimRng;
use netsim::time::SimDuration;

/// Per-transaction timeout and bounded-retry parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Deadline for one attempt (connect + transfer). An attempt still
    /// in flight when it expires is aborted and counted against
    /// `max_attempts`.
    pub timeout: SimDuration,
    /// Total attempts per transaction, including the first. `1` means
    /// "no retries".
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `base * 2^(n-1)`, capped at
    /// [`RetryPolicy::cap`], then jittered to 75–125%.
    pub base: SimDuration,
    /// Upper bound on the un-jittered backoff.
    pub cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_secs(10),
            max_attempts: 3,
            base: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(8),
        }
    }
}

impl RetryPolicy {
    /// `true` if a transaction that has already burned `attempts`
    /// attempts has at least one left.
    pub fn allows_retry(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// The jittered pause before the next attempt, where `attempts` is
    /// how many attempts have already failed (so the first retry passes
    /// `1`). Exponent growth is clamped so large attempt counts cannot
    /// overflow; jitter is uniform in ±25%.
    pub fn backoff(&self, attempts: u32, rng: &mut SimRng) -> SimDuration {
        let exp = attempts.saturating_sub(1).min(16);
        let unjittered =
            (self.base.as_secs_f64() * f64::from(2u32.pow(exp))).min(self.cap.as_secs_f64());
        SimDuration::from_secs_f64(unjittered * (0.75 + 0.5 * rng.uniform()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let policy = RetryPolicy {
            timeout: SimDuration::from_secs(5),
            max_attempts: 10,
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(6),
        };
        let mut rng = SimRng::seed_from(9);
        for attempts in 1..10u32 {
            let d = policy.backoff(attempts, &mut rng).as_secs_f64();
            let unjittered = (2f64.powi(attempts as i32 - 1)).min(6.0);
            assert!(d >= unjittered * 0.75 - 1e-9, "attempt {attempts}: {d}");
            assert!(d <= unjittered * 1.25 + 1e-9, "attempt {attempts}: {d}");
        }
        // Extreme attempt counts must not overflow.
        let d = policy.backoff(u32::MAX, &mut rng);
        assert!(d.as_secs_f64() <= 6.0 * 1.25 + 1e-9);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        assert!(policy.allows_retry(0));
        assert!(policy.allows_retry(2));
        assert!(!policy.allows_retry(3));
        assert!(!policy.allows_retry(4));
    }

    #[test]
    fn same_seed_same_backoffs() {
        let policy = RetryPolicy::default();
        let mut a = SimRng::seed_from(77);
        let mut b = SimRng::seed_from(77);
        for attempts in 1..6u32 {
            assert_eq!(policy.backoff(attempts, &mut a), policy.backoff(attempts, &mut b));
        }
    }
}
