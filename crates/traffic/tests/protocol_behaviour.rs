//! Protocol-level behaviour tests of the benign traffic applications,
//! run against the real simulated stack.

use std::cell::RefCell;
use std::rc::Rc;

use containers::runtime::{ContainerSpec, Role, Runtime};
use netsim::link::LinkConfig;
use netsim::packet::Provenance;
use netsim::rng::SimRng;
use netsim::tcp::TcpEvent;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx};
use traffic::http::{Catalogue, HttpServer};
use traffic::stats::{ClientStats, ServerStats};
use traffic::video::{VideoClient, VideoServer};
use traffic::{FtpClient, FtpServer, HttpClient, RetryPolicy};

fn runtime(seed: u64) -> Runtime {
    Runtime::new(seed, LinkConfig::lan_100mbps())
}

/// A hand-rolled client requesting a missing object: the server answers
/// 404 and counts an error; the connection survives.
#[test]
fn http_missing_object_is_a_404_not_a_crash() {
    struct Probe {
        response: Rc<RefCell<String>>,
    }
    impl App for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let server = netsim::Addr::new(10, 0, 0, 2);
            ctx.tcp_connect(server, 80);
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
            match event {
                TcpEvent::Connected { conn } => {
                    ctx.tcp_send(conn, b"GET /obj/999999 HTTP/1.1\r\n\r\n");
                }
                TcpEvent::Data { data, .. } => {
                    self.response.borrow_mut().push_str(&String::from_utf8_lossy(&data));
                }
                _ => {}
            }
        }
    }

    let mut rt = runtime(1);
    let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
    let dev = rt.deploy(ContainerSpec::new("dev", Role::Device));
    let stats = ServerStats::new();
    let mut rng = SimRng::seed_from(2);
    let catalogue = Catalogue::generate(10, 500, 5_000, &mut rng);
    rt.install(
        tserver,
        Box::new(HttpServer::new(catalogue, stats.clone())),
        Provenance::Benign,
        SimTime::ZERO,
    );
    let response = Rc::new(RefCell::new(String::new()));
    rt.install(
        dev,
        Box::new(Probe { response: Rc::clone(&response) }),
        Provenance::Benign,
        SimTime::from_millis(1),
    );
    rt.run_for(SimDuration::from_secs(2));
    assert!(response.borrow().starts_with("HTTP/1.1 404"), "got: {}", response.borrow());
    assert_eq!(stats.snapshot().errors, 1);
    assert_eq!(stats.snapshot().served, 0);
}

/// The closed-loop HTTP client keeps issuing requests and every response
/// body is fully consumed (completed == started once quiesced).
#[test]
fn http_client_loop_completes_every_request() {
    let mut rt = runtime(3);
    let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
    let dev = rt.deploy(ContainerSpec::new("dev", Role::Device));
    let server_stats = ServerStats::new();
    let client_stats = ClientStats::new();
    let mut rng = SimRng::seed_from(4);
    let catalogue = Catalogue::generate(20, 1_000, 50_000, &mut rng);
    rt.install(
        tserver,
        Box::new(HttpServer::new(catalogue, server_stats.clone())),
        Provenance::Benign,
        SimTime::ZERO,
    );
    let tserver_addr = rt.addr(tserver);
    rt.install(
        dev,
        Box::new(HttpClient::new(
            tserver_addr,
            0.1,
            20,
            RetryPolicy::default(),
            client_stats.clone(),
            rng.fork(),
        )),
        Provenance::Benign,
        SimTime::ZERO,
    );
    rt.run_for(SimDuration::from_secs(20));
    let snapshot = client_stats.snapshot();
    assert!(snapshot.completed >= 100, "completed {}", snapshot.completed);
    assert_eq!(snapshot.failed, 0);
    // At most one request can still be in flight.
    assert!(snapshot.started - snapshot.completed <= 1);
    assert_eq!(server_stats.snapshot().served, snapshot.completed);
}

/// FTP: a full login + passive transfer round-trip, then the data
/// listener is torn down (no port leak across sessions).
#[test]
fn ftp_sessions_do_not_leak_data_listeners() {
    let mut rt = runtime(5);
    let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
    let dev = rt.deploy(ContainerSpec::new("dev", Role::Device));
    let server_stats = ServerStats::new();
    let client_stats = ClientStats::new();
    let mut rng = SimRng::seed_from(6);
    let files = Catalogue::generate(5, 10_000, 100_000, &mut rng);
    rt.install(
        tserver,
        Box::new(FtpServer::new(files, server_stats.clone())),
        Provenance::Benign,
        SimTime::ZERO,
    );
    let tserver_addr = rt.addr(tserver);
    rt.install(
        dev,
        Box::new(FtpClient::new(
            tserver_addr,
            0.5,
            5,
            RetryPolicy::default(),
            client_stats.clone(),
            rng.fork(),
        )),
        Provenance::Benign,
        SimTime::ZERO,
    );
    rt.run_for(SimDuration::from_secs(30));
    let snapshot = client_stats.snapshot();
    assert!(snapshot.completed >= 10, "completed {}", snapshot.completed);
    assert_eq!(server_stats.snapshot().served, snapshot.completed);
    assert!(snapshot.bytes_received > 10_000 * snapshot.completed, "full files downloaded");
}

/// Several viewers stream concurrently; bytes received scale with the
/// watch time and the server tracks one session per viewer.
#[test]
fn video_streams_serve_concurrent_viewers() {
    let mut rt = runtime(7);
    let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
    let server_stats = ServerStats::new();
    rt.install(
        tserver,
        Box::new(VideoServer::new(server_stats.clone())),
        Provenance::Benign,
        SimTime::ZERO,
    );
    let tserver_addr = rt.addr(tserver);
    let mut rng = SimRng::seed_from(8);
    let client_stats = ClientStats::new();
    for i in 0..4 {
        let dev = rt.deploy(ContainerSpec::new(format!("dev-{i}"), Role::Device));
        rt.install(
            dev,
            Box::new(VideoClient::new(
                tserver_addr,
                1.0,
                5.0,
                RetryPolicy::default(),
                client_stats.clone(),
                rng.fork(),
            )),
            Provenance::Benign,
            SimTime::ZERO,
        );
    }
    rt.run_for(SimDuration::from_secs(30));
    let snapshot = client_stats.snapshot();
    assert!(snapshot.completed >= 8, "sessions completed {}", snapshot.completed);
    // 400 kbit/s minimum bitrate for ~5 s ≈ 250 kB per session.
    assert!(
        snapshot.bytes_received as f64 > snapshot.completed as f64 * 100_000.0,
        "bytes {} over {} sessions",
        snapshot.bytes_received,
        snapshot.completed
    );
    assert_eq!(server_stats.snapshot().served as usize, snapshot.started as usize);
}

/// The TServer stopping mid-stream fails clients without wedging them:
/// they resume once it returns.
#[test]
fn clients_survive_server_outage() {
    let mut rt = runtime(9);
    let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
    let dev = rt.deploy(ContainerSpec::new("dev", Role::Device));
    let server_stats = ServerStats::new();
    let client_stats = ClientStats::new();
    let mut rng = SimRng::seed_from(10);
    let catalogue = Catalogue::generate(20, 1_000, 20_000, &mut rng);
    rt.install(
        tserver,
        Box::new(HttpServer::new(catalogue, server_stats)),
        Provenance::Benign,
        SimTime::ZERO,
    );
    let tserver_addr = rt.addr(tserver);
    rt.install(
        dev,
        Box::new(HttpClient::new(
            tserver_addr,
            0.2,
            20,
            // Single-attempt policy: this test is about the bare failure
            // path, not retries.
            RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
            client_stats.clone(),
            rng.fork(),
        )),
        Provenance::Benign,
        SimTime::ZERO,
    );
    rt.run_for(SimDuration::from_secs(5));
    let before_outage = client_stats.snapshot().completed;
    rt.stop(tserver);
    // SYN retries back off for ~6 s before a connect fails; give the
    // outage enough time for at least one full failure cycle.
    rt.run_for(SimDuration::from_secs(15));
    let failures_during = client_stats.snapshot().failed;
    assert!(failures_during > 0, "requests failed during the outage");
    rt.start(tserver);
    rt.run_for(SimDuration::from_secs(10));
    let after_recovery = client_stats.snapshot().completed;
    assert!(
        after_recovery > before_outage,
        "requests resumed after recovery: {before_outage} -> {after_recovery}"
    );
}

/// A brief TServer outage is absorbed by the retry budget: attempts are
/// aborted at the request deadline and retried with backoff, so the
/// transactions in flight during the blip still complete.
#[test]
fn clients_retry_through_brief_outage() {
    let mut rt = runtime(11);
    let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
    let dev = rt.deploy(ContainerSpec::new("dev", Role::Device));
    let client_stats = ClientStats::new();
    let mut rng = SimRng::seed_from(12);
    let catalogue = Catalogue::generate(20, 1_000, 20_000, &mut rng);
    rt.install(
        tserver,
        Box::new(HttpServer::new(catalogue, ServerStats::new())),
        Provenance::Benign,
        SimTime::ZERO,
    );
    let tserver_addr = rt.addr(tserver);
    let retry = RetryPolicy {
        timeout: SimDuration::from_secs(2),
        max_attempts: 5,
        base: SimDuration::from_secs(1),
        cap: SimDuration::from_secs(2),
    };
    rt.install(
        dev,
        Box::new(HttpClient::new(tserver_addr, 0.2, 20, retry, client_stats.clone(), rng.fork())),
        Provenance::Benign,
        SimTime::ZERO,
    );
    rt.run_for(SimDuration::from_secs(5));
    let before_outage = client_stats.snapshot().completed;
    rt.stop(tserver);
    rt.run_for(SimDuration::from_secs(3));
    rt.start(tserver);
    rt.run_for(SimDuration::from_secs(12));
    let snapshot = client_stats.snapshot();
    assert!(snapshot.retried > 0, "attempts were retried during the blip");
    assert!(
        snapshot.completed > before_outage,
        "requests resumed after recovery: {before_outage} -> {}",
        snapshot.completed
    );
    assert!(
        snapshot.failed <= 1,
        "the retry budget should absorb a 3 s blip, failed {}",
        snapshot.failed
    );
}
