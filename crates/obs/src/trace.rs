//! Bounded, sim-clock-stamped structured event log.

/// One structured trace event.
///
/// `at_nanos` is nanoseconds on the *simulation* clock — never wall
/// clock — so two same-seed runs stamp identical times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time in nanoseconds since run start.
    pub at_nanos: u64,
    /// The emitting subsystem's scope prefix (e.g. `botnet`).
    pub scope: String,
    /// Event name (e.g. `infection`).
    pub name: String,
    /// Free-form detail, already formatted by the emitter. Must be a
    /// pure function of simulation state (no wall-clock, no addresses
    /// of host objects).
    pub detail: String,
}

/// First-N event log: once `capacity` events are held, further events
/// are counted in `dropped` instead of stored, so the artifact size is
/// bounded and the kept prefix is deterministic.
#[derive(Debug)]
pub(crate) struct TraceLog {
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) capacity: usize,
    pub(crate) dropped: u64,
}

impl TraceLog {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceLog { events: Vec::new(), capacity, dropped: 0 }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }
}
