//! Deterministic observability: an integer metrics registry plus
//! sim-clock-stamped structured tracing.
//!
//! The testbed's determinism contract — two same-seed runs must be
//! byte-identical — extends to its telemetry. That rules out the usual
//! observability stack: wall-clock timestamps, float aggregation whose
//! result depends on summation order, and unbounded logs whose size
//! depends on host speed. This crate provides the substrate every
//! subsystem records into instead:
//!
//! * **Counters** and **gauges** are plain integers.
//! * **Histograms** have fixed integer bucket bounds chosen at creation;
//!   observations are `u64` values (nanoseconds of *modelled* time,
//!   work units, queue depths — never measured wall-clock).
//! * **Trace events** are stamped with the *simulation clock* only and
//!   kept in a bounded, first-N log (overflow is counted, not kept), so
//!   the artifact size is a pure function of the run.
//!
//! Subsystems hold a [`Scope`] — a dotted name prefix onto a shared
//! [`Registry`] — and create instruments on demand. At the end of a run
//! [`Registry::snapshot`] produces a [`RunTelemetry`]: a stable,
//! human-diffable text rendering plus JSON, with every section emitted
//! in sorted order. CI byte-diffs this artifact across same-seed runs.
//!
//! The registry is deliberately single-threaded (`Rc<RefCell>`): it
//! lives on the simulator thread, next to the event loop it observes.

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{HistogramSnapshot, RunTelemetry};
pub use metrics::{linear_bounds, pow2_bounds, Counter, Gauge, Histogram, Registry, Scope};
pub use trace::TraceEvent;
