//! The metrics registry: counters, gauges and fixed-bucket histograms,
//! addressed through dotted-name [`Scope`]s.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::export::{HistogramSnapshot, RunTelemetry};
use crate::trace::{TraceEvent, TraceLog};

/// Default cap on stored trace events (overflow is counted, not kept).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug)]
pub(crate) struct HistData {
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow slot.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistData {
    fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    fn add_batch(&mut self, bucket_counts: &[u64], count: u64, sum: u64) {
        assert_eq!(
            bucket_counts.len(),
            self.counts.len(),
            "batch bucket layout must match the histogram (bounds + overflow)"
        );
        for (slot, add) in self.counts.iter_mut().zip(bucket_counts) {
            *slot += add;
        }
        self.count += count;
        self.sum = self.sum.saturating_add(sum);
    }
}

/// Instrument names resolve through hash maps (creation-time cost is on
/// the testbed-deploy path); the export sorts once at snapshot time, so
/// rendered telemetry stays in the same lexicographic order a `BTreeMap`
/// would give.
#[derive(Debug)]
pub(crate) struct RegistryInner {
    counters: Vec<u64>,
    counter_names: HashMap<String, usize>,
    gauges: Vec<i64>,
    gauge_names: HashMap<String, usize>,
    hists: Vec<HistData>,
    hist_names: HashMap<String, usize>,
    trace: TraceLog,
}

impl RegistryInner {
    fn new(trace_capacity: usize) -> Self {
        RegistryInner {
            counters: Vec::new(),
            counter_names: HashMap::new(),
            gauges: Vec::new(),
            gauge_names: HashMap::new(),
            hists: Vec::new(),
            hist_names: HashMap::new(),
            trace: TraceLog::new(trace_capacity),
        }
    }
}

/// The shared metrics store. Cloning is cheap; all clones view the same
/// instruments.
///
/// ```
/// use obs::Registry;
///
/// let registry = Registry::new();
/// let scope = registry.scope("netsim");
/// scope.counter("events").add(3);
/// let telemetry = registry.snapshot();
/// assert!(telemetry.render_text().contains("counter netsim.events 3"));
/// ```
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an empty registry keeping at most `capacity` trace events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Registry { inner: Rc::new(RefCell::new(RegistryInner::new(capacity))) }
    }

    /// A scope with the given dotted prefix.
    pub fn scope(&self, prefix: impl Into<String>) -> Scope {
        Scope { registry: self.clone(), prefix: prefix.into() }
    }

    /// Snapshots every instrument and the trace log into an exportable
    /// [`RunTelemetry`]. Metric sections come out sorted by full name;
    /// trace events in emission order.
    pub fn snapshot(&self) -> RunTelemetry {
        let inner = self.inner.borrow();
        let mut counters: Vec<(String, u64)> = inner
            .counter_names
            .iter()
            .map(|(name, &slot)| (name.clone(), inner.counters[slot]))
            .collect();
        counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, i64)> = inner
            .gauge_names
            .iter()
            .map(|(name, &slot)| (name.clone(), inner.gauges[slot]))
            .collect();
        gauges.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = inner
            .hist_names
            .iter()
            .map(|(name, &slot)| {
                let h = &inner.hists[slot];
                (
                    name.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: h.sum,
                    },
                )
            })
            .collect();
        histograms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        RunTelemetry {
            counters,
            gauges,
            histograms,
            events: inner.trace.events.clone(),
            events_dropped: inner.trace.dropped,
        }
    }
}

/// A dotted-name prefix onto a [`Registry`]. Subsystems receive a scope
/// and create their instruments under it; `child` derives nested scopes.
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A nested scope: `scope("ids").child("window")` names instruments
    /// `ids.window.*`.
    pub fn child(&self, name: &str) -> Scope {
        Scope { registry: self.registry.clone(), prefix: self.full_name(name) }
    }

    fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            let mut full = String::with_capacity(self.prefix.len() + 1 + name.len());
            full.push_str(&self.prefix);
            full.push('.');
            full.push_str(name);
            full
        }
    }

    /// Gets or creates the counter `prefix.name`.
    pub fn counter(&self, name: &str) -> Counter {
        let full = self.full_name(name);
        let mut inner = self.registry.inner.borrow_mut();
        let next = inner.counters.len();
        let slot = *inner.counter_names.entry(full).or_insert(next);
        if slot == next {
            inner.counters.push(0);
        }
        Counter { inner: Rc::clone(&self.registry.inner), slot }
    }

    /// Gets or creates the gauge `prefix.name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let full = self.full_name(name);
        let mut inner = self.registry.inner.borrow_mut();
        let next = inner.gauges.len();
        let slot = *inner.gauge_names.entry(full).or_insert(next);
        if slot == next {
            inner.gauges.push(0);
        }
        Gauge { inner: Rc::clone(&self.registry.inner), slot }
    }

    /// Gets or creates the histogram `prefix.name` with the given
    /// ascending integer bucket upper bounds (values above the last
    /// bound land in an implicit overflow bucket). If the histogram
    /// already exists its original bounds are kept.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        let full = self.full_name(name);
        let mut inner = self.registry.inner.borrow_mut();
        let next = inner.hists.len();
        let slot = *inner.hist_names.entry(full).or_insert(next);
        if slot == next {
            inner.hists.push(HistData {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                count: 0,
                sum: 0,
            });
        }
        Histogram { inner: Rc::clone(&self.registry.inner), slot }
    }

    /// Emits a trace event stamped `at_nanos` on the simulation clock.
    /// Once the registry's trace capacity is reached the event is
    /// counted as dropped instead of stored.
    pub fn event(&self, at_nanos: u64, name: &str, detail: impl Into<String>) {
        self.registry.inner.borrow_mut().trace.push(TraceEvent {
            at_nanos,
            scope: self.prefix.clone(),
            name: name.to_string(),
            detail: detail.into(),
        });
    }
}

/// A monotone `u64` counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Rc<RefCell<RegistryInner>>,
    slot: usize,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        let v = &mut inner.counters[self.slot];
        *v = v.saturating_add(n);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.inner.borrow().counters[self.slot]
    }
}

/// A signed gauge handle (set/add semantics).
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Rc<RefCell<RegistryInner>>,
    slot: usize,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: i64) {
        self.inner.borrow_mut().gauges[self.slot] = value;
    }

    /// Adjusts the value (saturating).
    pub fn add(&self, delta: i64) {
        let mut inner = self.inner.borrow_mut();
        let v = &mut inner.gauges[self.slot];
        *v = v.saturating_add(delta);
    }

    /// Raises the value to `value` if it is higher (peak tracking).
    pub fn set_max(&self, value: i64) {
        let mut inner = self.inner.borrow_mut();
        let v = &mut inner.gauges[self.slot];
        *v = (*v).max(value);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.inner.borrow().gauges[self.slot]
    }
}

/// A fixed-bucket integer histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Rc<RefCell<RegistryInner>>,
    slot: usize,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.inner.borrow_mut().hists[self.slot].observe(value);
    }

    /// Folds a pre-bucketed batch of observations into the histogram in
    /// one registry access. `bucket_counts` must hold one slot per bound
    /// plus the final overflow slot, bucketed against this histogram's
    /// own bounds (`partition_point(|b| b < value)`); `count`/`sum` are
    /// the batch's observation count and value sum. Hot loops that
    /// observe per event accumulate locally and flush through this
    /// before the registry is snapshotted — the merged result is
    /// indistinguishable from having called [`Histogram::observe`] per
    /// value.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_counts` does not match the histogram's bucket
    /// layout.
    pub fn add_batch(&self, bucket_counts: &[u64], count: u64, sum: u64) {
        self.inner.borrow_mut().hists[self.slot].add_batch(bucket_counts, count, sum);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.inner.borrow().hists[self.slot].count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.inner.borrow().hists[self.slot].sum
    }
}

/// Powers-of-two bucket bounds: `[2^min_pow, 2^(min_pow+1), …, 2^max_pow]`.
///
/// The workhorse for nanosecond and work-unit histograms — exponential
/// coverage with exactly reproducible integer bounds.
///
/// # Panics
///
/// Panics if `min_pow > max_pow` or `max_pow >= 64`.
pub fn pow2_bounds(min_pow: u32, max_pow: u32) -> Vec<u64> {
    assert!(min_pow <= max_pow && max_pow < 64, "invalid pow2 bucket range");
    (min_pow..=max_pow).map(|p| 1u64 << p).collect()
}

/// Evenly spaced bucket bounds: `[step, 2*step, …, n*step]`.
///
/// # Panics
///
/// Panics if `step` is zero or `n` is zero.
pub fn linear_bounds(step: u64, n: usize) -> Vec<u64> {
    assert!(step > 0 && n > 0, "invalid linear bucket spec");
    (1..=n as u64).map(|i| i * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let registry = Registry::new();
        let scope = registry.scope("sub");
        let c = scope.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Same name resolves to the same slot.
        assert_eq!(scope.counter("hits").value(), 5);

        let g = scope.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.value(), 5);
        g.set_max(3);
        assert_eq!(g.value(), 5, "set_max never lowers");
        g.set_max(9);
        assert_eq!(g.value(), 9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let registry = Registry::new();
        let h = registry.scope("x").histogram("lat", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        let snap = registry.snapshot();
        let (_, hist) = &snap.histograms[0];
        // le10=2 (5,10), le100=2 (11,100), le1000=0, overflow=1 (5000).
        assert_eq!(hist.counts, vec![2, 2, 0, 1]);
    }

    #[test]
    fn add_batch_matches_per_value_observes() {
        let bounds = [10u64, 100, 1000];
        let values = [5u64, 10, 11, 100, 5000];

        let registry = Registry::new();
        let direct = registry.scope("x").histogram("direct", &bounds);
        for v in values {
            direct.observe(v);
        }

        // Pre-bucket the same values locally, exactly as a hot loop
        // would, then fold them in with one call.
        let batched = registry.scope("x").histogram("batched", &bounds);
        let mut buckets = vec![0u64; bounds.len() + 1];
        let mut sum = 0u64;
        for v in values {
            buckets[bounds.partition_point(|b| *b < v)] += 1;
            sum += v;
        }
        batched.add_batch(&buckets, values.len() as u64, sum);

        let snap = registry.snapshot();
        let by_name = |n: &str| &snap.histograms.iter().find(|(name, _)| name == n).unwrap().1;
        let direct_hist = by_name("x.direct");
        let batched_hist = by_name("x.batched");
        assert_eq!(direct_hist.counts, batched_hist.counts);
        assert_eq!(direct_hist.count, batched_hist.count);
        assert_eq!(direct_hist.sum, batched_hist.sum);
    }

    #[test]
    #[should_panic(expected = "batch bucket layout")]
    fn add_batch_rejects_mismatched_layout() {
        let registry = Registry::new();
        let h = registry.scope("x").histogram("lat", &[10, 100]);
        h.add_batch(&[1, 2], 3, 6); // needs bounds + overflow = 3 slots
    }

    #[test]
    fn child_scopes_compose_names() {
        let registry = Registry::new();
        let scope = registry.scope("a").child("b");
        scope.counter("c").inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counters, vec![("a.b.c".to_string(), 1)]);
    }

    #[test]
    fn trace_is_bounded_and_counts_overflow() {
        let registry = Registry::with_trace_capacity(2);
        let scope = registry.scope("s");
        scope.event(1, "e", "first");
        scope.event(2, "e", "second");
        scope.event(3, "e", "third");
        let snap = registry.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events_dropped, 1);
        assert_eq!(snap.events[0].detail, "first");
    }

    #[test]
    fn bucket_helpers_produce_ascending_bounds() {
        assert_eq!(pow2_bounds(0, 3), vec![1, 2, 4, 8]);
        assert_eq!(linear_bounds(5, 3), vec![5, 10, 15]);
    }

    #[test]
    #[should_panic]
    fn unsorted_bounds_panic() {
        let registry = Registry::new();
        let _ = registry.scope("x").histogram("bad", &[10, 10]);
    }
}
