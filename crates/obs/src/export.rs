//! The exportable telemetry artifact: stable text and JSON renderings.

use std::fmt::Write as _;

use crate::trace::TraceEvent;

/// A histogram's frozen state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (inclusive).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the final slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
}

/// Everything one run recorded, ready to serialise.
///
/// Every field is integer-valued and every section is emitted in a
/// deterministic order (metrics sorted by name, trace events in
/// emission order), so two same-seed runs render byte-identically —
/// CI enforces exactly that on this artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunTelemetry {
    /// `(full_name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(full_name, value)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(full_name, snapshot)`, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Kept trace events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Events dropped once the trace capacity was reached.
    pub events_dropped: u64,
}

impl RunTelemetry {
    /// Renders the human-diffable text form: one line per instrument,
    /// empty histogram buckets elided.
    ///
    /// ```text
    /// # telemetry v1
    /// counter botnet.infections 9
    /// gauge netsim.link.0.drops_lost 41
    /// hist ids.window.classify_ns count=70 sum=13440000 le[1048576]=70
    /// trace t=96000000000 botnet infection dev=10.0.0.5
    /// events_dropped 0
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# telemetry v1\n");
        for (name, value) in &self.counters {
            writeln!(out, "counter {name} {value}").expect("writing to String cannot fail");
        }
        for (name, value) in &self.gauges {
            writeln!(out, "gauge {name} {value}").expect("writing to String cannot fail");
        }
        for (name, h) in &self.histograms {
            write!(out, "hist {name} count={} sum={}", h.count, h.sum)
                .expect("writing to String cannot fail");
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(bound) => write!(out, " le[{bound}]={c}"),
                    None => write!(out, " le[inf]={c}"),
                }
                .expect("writing to String cannot fail");
            }
            out.push('\n');
        }
        for e in &self.events {
            writeln!(out, "trace t={} {} {} {}", e.at_nanos, e.scope, e.name, e.detail)
                .expect("writing to String cannot fail");
        }
        writeln!(out, "events_dropped {}", self.events_dropped)
            .expect("writing to String cannot fail");
        out
    }

    /// Renders the machine-readable JSON form (same content and ordering
    /// as [`RunTelemetry::render_text`], hand-serialised so it stays
    /// byte-deterministic).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"counters\":{");
        push_entries(&mut out, self.counters.iter().map(|(n, v)| (n.as_str(), v.to_string())));
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter().map(|(n, v)| (n.as_str(), v.to_string())));
        out.push_str("},\"histograms\":{");
        let hists = self.histograms.iter().map(|(n, h)| {
            let mut v = format!("{{\"count\":{},\"sum\":{},\"buckets\":{{", h.count, h.sum);
            let buckets = h.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, c)| {
                let label = h.bounds.get(i).map_or("inf".to_string(), |b| b.to_string());
                (label, c.to_string())
            });
            let mut first = true;
            for (label, count) in buckets {
                if !first {
                    v.push(',');
                }
                first = false;
                write!(v, "{}:{count}", json_string(&label)).expect("writing to String cannot fail");
            }
            v.push_str("}}");
            (n.as_str(), v)
        });
        push_entries(&mut out, hists);
        out.push_str("},\"trace\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"t\":{},\"scope\":{},\"name\":{},\"detail\":{}}}",
                e.at_nanos,
                json_string(&e.scope),
                json_string(&e.name),
                json_string(&e.detail)
            )
            .expect("writing to String cannot fail");
        }
        write!(out, "],\"events_dropped\":{}}}", self.events_dropped)
            .expect("writing to String cannot fail");
        out
    }

    /// Looks up a counter by full name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge by full name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Every counter whose full name starts with `prefix`, in snapshot
    /// (sorted-name) order. Useful for scooping up a whole scope, e.g.
    /// all `ids.serving.<tenant>.` accounting at once.
    pub fn counters_with_prefix<'a>(&'a self, prefix: &'a str) -> Vec<(&'a str, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
            .collect()
    }

    /// Looks up a histogram by full name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (name, raw_value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        write!(out, "{}:{raw_value}", json_string(name)).expect("writing to String cannot fail");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        let scope = registry.scope("demo");
        scope.counter("hits").add(3);
        scope.gauge("depth").set(-2);
        let h = scope.histogram("lat", &[10, 100]);
        h.observe(7);
        h.observe(500);
        scope.event(42, "phase", "k=v");
        registry
    }

    #[test]
    fn text_rendering_is_stable_and_sorted() {
        let registry = sample_registry();
        let text = registry.snapshot().render_text();
        assert_eq!(
            text,
            "# telemetry v1\n\
             counter demo.hits 3\n\
             gauge demo.depth -2\n\
             hist demo.lat count=2 sum=507 le[10]=1 le[inf]=1\n\
             trace t=42 demo phase k=v\n\
             events_dropped 0\n"
        );
        // Re-snapshotting renders byte-identically.
        assert_eq!(text, registry.snapshot().render_text());
    }

    #[test]
    fn json_rendering_is_stable() {
        let registry = sample_registry();
        let json = registry.snapshot().render_json();
        assert_eq!(
            json,
            "{\"version\":1,\"counters\":{\"demo.hits\":3},\
             \"gauges\":{\"demo.depth\":-2},\
             \"histograms\":{\"demo.lat\":{\"count\":2,\"sum\":507,\"buckets\":{\"10\":1,\"inf\":1}}},\
             \"trace\":[{\"t\":42,\"scope\":\"demo\",\"name\":\"phase\",\"detail\":\"k=v\"}],\
             \"events_dropped\":0}"
        );
        assert_eq!(json, registry.snapshot().render_json());
    }

    #[test]
    fn lookup_helpers_find_instruments() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.counter("demo.hits"), Some(3));
        assert_eq!(snap.gauge("demo.depth"), Some(-2));
        assert_eq!(snap.histogram("demo.lat").map(|h| h.count), Some(2));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn prefix_scan_scoops_a_scope() {
        let registry = sample_registry();
        let scope = registry.scope("demo").child("sub");
        scope.counter("hits").add(7);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters_with_prefix("demo."),
            vec![("demo.hits", 3), ("demo.sub.hits", 7)]
        );
        assert_eq!(snap.counters_with_prefix("demo.sub."), vec![("demo.sub.hits", 7)]);
        assert!(snap.counters_with_prefix("nope.").is_empty());
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_telemetry_renders() {
        let snap = RunTelemetry::default();
        assert_eq!(snap.render_text(), "# telemetry v1\nevents_dropped 0\n");
        assert!(snap.render_json().starts_with("{\"version\":1"));
    }
}
