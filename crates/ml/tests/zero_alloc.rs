//! Proof that steady-state batch prediction is allocation-free.
//!
//! A counting global allocator wraps the system allocator (the same
//! harness as `netsim`'s flood test; the crate-level
//! `#![forbid(unsafe_code)]` covers `src/`, the shim lives in this
//! integration test only). After one warm-up pass grows every reusable
//! buffer — the caller's prediction `Vec`, the CNN's thread-local
//! im2col scratch — repeated `predict_batch_into` sweeps over a random
//! forest and repeated single-row CNN predictions must perform **zero**
//! heap allocations.
//!
//! This is the teeth behind ISSUE 6's inference memory model: the SoA
//! node pool walks flat slices, the im2col path reuses one scratch per
//! thread, and any regression that reintroduces a per-row or per-layer
//! `Vec` fails here rather than showing up only as a bench slowdown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ml::classifier::Classifier;
use ml::cnn::{Cnn, CnnConfig};
use ml::matrix::FeatureMatrix;
use ml::rf::{ForestConfig, RandomForest};
use netsim::rng::SimRng;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `true` only on the test thread (both measured paths are serial) —
    /// the libtest main thread lazily allocates channel-wait state at a
    /// wall-clock-dependent moment, which must not count against us.
    /// Const-initialised so the allocator's read never itself allocates.
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count_here() {
    if COUNTING.try_with(std::cell::Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const DIMS: usize = 23;

fn synth(n: usize, seed: u64) -> (FeatureMatrix, Vec<usize>) {
    let mut rng = SimRng::seed_from(seed);
    let mut matrix = FeatureMatrix::new(DIMS);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.chance(0.5);
        let shift = if class { 0.8 } else { 0.0 };
        let row: Vec<f64> = (0..DIMS).map(|_| rng.standard_normal() + shift).collect();
        matrix.push_row(&row);
        labels.push(usize::from(class));
    }
    (matrix, labels)
}

#[test]
fn steady_state_prediction_allocates_nothing() {
    let (matrix, labels) = synth(400, 99);
    let mut rng = SimRng::seed_from(7);
    let forest = RandomForest::fit_view(
        matrix.view(),
        &labels,
        &ForestConfig { n_trees: 9, ..ForestConfig::default() },
        &mut rng,
    )
    .unwrap();
    let cnn_config = CnnConfig { input_len: DIMS, epochs: 1, ..CnnConfig::default() };
    let cnn = Cnn::fit_view(matrix.view(), &labels, &cnn_config, &mut rng).unwrap();

    // Warm-up: grow the caller's output buffer and the CNN's
    // thread-local im2col scratch to their working set.
    let mut predictions = Vec::new();
    let warm_work = forest.predict_batch_into(matrix.view(), &mut predictions);
    assert!(warm_work > 0);
    assert_eq!(predictions.len(), matrix.n_rows());
    let warm_class = cnn.predict(matrix.row(0));

    // Steady state: full-dataset forest sweeps and per-row CNN calls,
    // with the allocator watching.
    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0usize;
    for _ in 0..5 {
        forest.predict_batch_into(matrix.view(), &mut predictions);
        checksum += predictions.iter().sum::<usize>();
    }
    for i in 0..matrix.n_rows() {
        checksum += cnn.predict(matrix.row(i));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(false));

    assert_eq!(
        after - before,
        0,
        "steady-state prediction allocated {} times (checksum {checksum})",
        after - before
    );
    assert_eq!(cnn.predict(matrix.row(0)), warm_class);
}
