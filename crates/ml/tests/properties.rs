//! Property-based tests of the ML substrate's invariants.

use ml::classifier::Classifier;
use ml::codec::{Decoder, Encoder};
use ml::kmeans::{KMeans, KMeansConfig, KMeansDetector};
use ml::metrics::ConfusionMatrix;
use ml::rf::{DecisionTree, ForestConfig, RandomForest, TreeConfig};
use netsim::rng::SimRng;
use proptest::prelude::*;

proptest! {
    /// The binary codec round-trips arbitrary scalar/slice sequences.
    #[test]
    fn codec_roundtrips(
        u8s in proptest::collection::vec(any::<u8>(), 0..20),
        u64s in proptest::collection::vec(any::<u64>(), 0..20),
        f64s in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 0..50),
    ) {
        let mut e = Encoder::new();
        for &v in &u8s {
            e.put_u8(v);
        }
        for &v in &u64s {
            e.put_u64(v);
        }
        e.put_f64_slice(&f64s);
        let blob = e.finish();
        let mut d = Decoder::new(&blob);
        for &v in &u8s {
            prop_assert_eq!(d.get_u8().unwrap(), v);
        }
        for &v in &u64s {
            prop_assert_eq!(d.get_u64().unwrap(), v);
        }
        prop_assert_eq!(d.get_f64_slice().unwrap(), f64s);
        prop_assert!(d.is_exhausted());
    }

    /// Decoding arbitrary garbage never panics: it returns an error or
    /// (harmlessly) a structurally valid model.
    #[test]
    fn decoders_never_panic_on_garbage(blob in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = RandomForest::decode(&blob);
        let _ = KMeansDetector::decode(&blob);
        let _ = ml::cnn::Cnn::decode(&blob);
    }

    /// Confusion-matrix identities: counts partition the total; accuracy
    /// in [0,1]; merging equals concatenating.
    #[test]
    fn confusion_matrix_identities(
        pairs in proptest::collection::vec((0usize..2, 0usize..2), 1..200),
    ) {
        let (truth, pred): (Vec<usize>, Vec<usize>) = pairs.iter().copied().unzip();
        let m = ConfusionMatrix::from_predictions(&truth, &pred);
        prop_assert_eq!(m.total(), truth.len() as u64);
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        if let Some(p) = m.precision() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        if let Some(r) = m.recall() {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        // Split/merge agrees with whole-set construction.
        let half = truth.len() / 2;
        let mut merged = ConfusionMatrix::from_predictions(&truth[..half], &pred[..half]);
        merged.merge(&ConfusionMatrix::from_predictions(&truth[half..], &pred[half..]));
        prop_assert_eq!(merged, m);
    }
}

fn two_blobs(n: usize, gap: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = SimRng::seed_from(seed);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..n {
        let class = i % 2;
        let center = if class == 0 { -gap } else { gap };
        x.push(vec![center + rng.standard_normal(), rng.standard_normal()]);
        y.push(class);
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K-Means inertia is non-increasing in the cluster budget (plain
    /// Lloyd, no pruning).
    #[test]
    fn kmeans_inertia_monotone_in_k(seed in any::<u64>()) {
        let (x, _) = two_blobs(200, 4.0, seed);
        let mut inertias = Vec::new();
        for k in [1usize, 2, 4, 8] {
            let mut rng = SimRng::seed_from(seed ^ 1);
            let config = KMeansConfig { k_max: k, beta: 0.0, ..KMeansConfig::default() };
            inertias.push(KMeans::fit(&x, &config, &mut rng).unwrap().inertia());
        }
        for pair in inertias.windows(2) {
            // k-means++ with a fixed seed: larger budgets never fit worse
            // by more than numerical noise.
            prop_assert!(pair[1] <= pair[0] * 1.001, "{} -> {}", pair[0], pair[1]);
        }
    }

    /// A trained tree fits its own training data at least as well as the
    /// majority-class baseline.
    #[test]
    fn tree_beats_majority_baseline(seed in any::<u64>(), gap in 0.5f64..4.0) {
        let (x, y) = two_blobs(150, gap, seed);
        let mut rng = SimRng::seed_from(seed ^ 2);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        let majority = y.iter().filter(|&&l| l == 1).count().max(y.len() / 2);
        prop_assert!(correct >= majority, "correct {correct} vs majority {majority}");
    }

    /// Forest predictions are invariant under codec round-trip for
    /// arbitrary training seeds and shapes.
    #[test]
    fn forest_roundtrip_predictions(seed in any::<u64>(), n_trees in 1usize..12) {
        let (x, y) = two_blobs(80, 2.0, seed);
        let mut rng = SimRng::seed_from(seed ^ 3);
        let config = ForestConfig { n_trees, ..ForestConfig::default() };
        let forest = RandomForest::fit(&x, &y, &config, &mut rng).unwrap();
        let blob = forest.encode();
        let back = RandomForest::decode(&blob).unwrap();
        for xi in &x {
            prop_assert_eq!(forest.predict(xi), back.predict(xi));
        }
        // Size metric equals blob length by definition.
        prop_assert_eq!(back.encode().len(), blob.len());
    }

    /// The U-K-Means cluster count never exceeds its budget and its
    /// proportions form a distribution.
    #[test]
    fn ukmeans_proportions_are_a_distribution(seed in any::<u64>(), k_max in 2usize..20) {
        let (x, _) = two_blobs(150, 3.0, seed);
        let mut rng = SimRng::seed_from(seed ^ 4);
        let config = KMeansConfig { k_max, ..KMeansConfig::default() };
        let model = KMeans::fit(&x, &config, &mut rng).unwrap();
        prop_assert!(model.k() >= 1);
        prop_assert!(model.k() <= k_max);
        let total: f64 = model.proportions().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "proportions sum {total}");
        prop_assert!(model.proportions().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Thread-count invariance: the serialized bytes of every parallel
    /// trainer are a pure function of the seed, whether the data-parallel
    /// helpers run on one thread or many. This is the repo's determinism
    /// contract for the rayon-based hot path — `DDOSHIELD_SEED` must mean
    /// the same model on a laptop and a 64-core runner.
    #[test]
    fn parallel_training_is_thread_count_invariant(seed in any::<u64>()) {
        let (x, y) = two_blobs(90, 2.0, seed);
        let m = ml::matrix::FeatureMatrix::from_rows(&x).unwrap();

        let forest_config = ForestConfig { n_trees: 6, ..ForestConfig::default() };
        let rf = |threads: usize| {
            ml::par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(seed ^ 5);
                RandomForest::fit_view(m.view(), &y, &forest_config, &mut rng).unwrap().encode()
            })
        };
        prop_assert_eq!(rf(1), rf(4));

        let kmeans_config = KMeansConfig { k_max: 6, ..KMeansConfig::default() };
        let km = |threads: usize| {
            ml::par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(seed ^ 6);
                KMeansDetector::fit_view(m.view(), &y, &kmeans_config, &mut rng)
                    .unwrap()
                    .encode()
            })
        };
        prop_assert_eq!(km(1), km(4));

        // The CNN needs a few pooling stages of width, so tile the two
        // blob coordinates out to eight features.
        let wide: Vec<Vec<f64>> =
            x.iter().map(|row| row.iter().cycle().copied().take(8).collect()).collect();
        let mw = ml::matrix::FeatureMatrix::from_rows(&wide).unwrap();
        let cnn_config = ml::cnn::CnnConfig {
            input_len: 8,
            conv1_filters: 2,
            conv2_filters: 2,
            kernel: 3,
            dilation2: 1,
            hidden: 4,
            epochs: 1,
            batch_size: 32,
            learning_rate: 1e-3,
        };
        let cnn = |threads: usize| {
            ml::par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(seed ^ 7);
                ml::cnn::Cnn::fit_view(mw.view(), &y, &cnn_config, &mut rng).unwrap().encode()
            })
        };
        prop_assert_eq!(cnn(1), cnn(4));
    }

    /// CNN probabilities are a distribution for arbitrary finite inputs.
    #[test]
    fn cnn_probabilities_are_distributions(
        seed in any::<u64>(),
        input in proptest::collection::vec(-1e3f64..1e3, 8),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let config = ml::cnn::CnnConfig {
            input_len: 8,
            conv1_filters: 2,
            conv2_filters: 2,
            kernel: 3,
            dilation2: 1,
            hidden: 4,
            epochs: 0,
            batch_size: 8,
            learning_rate: 1e-3,
        };
        let net = ml::cnn::Cnn::init(config, &mut rng);
        let probs = net.predict_proba(&input);
        prop_assert_eq!(probs.len(), 2);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert!(net.predict(&input) < 2);
    }
}
