//! Deterministic data-parallel helpers on top of `rayon::join`.
//!
//! Every helper here guarantees **thread-count independence**: the value
//! it returns is a pure function of its inputs, no matter how many
//! threads actually ran. Two mechanisms make that true:
//!
//! * [`par_map_indexed`] evaluates an independent closure per index and
//!   concatenates results *in index order* — there is no cross-item
//!   floating-point reduction to reorder.
//! * [`par_chunks`] splits `0..n` into **fixed-size** chunks (the chunk
//!   size is a caller-supplied constant, never derived from the thread
//!   count) so that per-chunk partial sums, folded in chunk order by the
//!   caller, always add in the same sequence.
//!
//! [`with_threads`] scopes a thread-budget override to a closure, which
//! is how the determinism property tests compare a 1-thread run against
//! a many-thread run inside one process.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// 0 = no override; otherwise the forced thread budget.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The parallelism budget the helpers will split work into: the
/// [`with_threads`] override when one is active, otherwise rayon's
/// global thread count (`RAYON_NUM_THREADS` or the machine's cores).
pub fn effective_threads() -> usize {
    let forced = THREAD_OVERRIDE.with(Cell::get);
    if forced > 0 {
        forced
    } else {
        rayon::current_num_threads()
    }
}

/// Runs `f` with the thread budget pinned to `n` (restored afterwards,
/// also on panic). `n = 0` clears any override.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Maps `f` over `0..n` potentially in parallel, returning results in
/// index order. The output is identical at any thread count because each
/// index is computed independently and concatenation order is fixed.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    split_run(0, n, effective_threads(), &f)
}

fn split_run<U, F>(lo: usize, hi: usize, tasks: usize, f: &F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if tasks <= 1 || hi - lo <= 1 {
        return (lo..hi).map(f).collect();
    }
    let mid = lo + (hi - lo) / 2;
    let left_tasks = tasks / 2;
    let (mut left, right) = rayon::join(
        || split_run(lo, mid, left_tasks, f),
        || split_run(mid, hi, tasks - left_tasks, f),
    );
    left.extend(right);
    left
}

/// Maps `f` over the fixed-size chunks of `0..n` (the last chunk may be
/// short), returning one result per chunk in chunk order. Because the
/// chunk boundaries depend only on `n` and `chunk` — never on the thread
/// count — folding the returned partials in order reproduces the same
/// floating-point sequence on every run.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunks<U, F>(n: usize, chunk: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n_chunks = n.div_ceil(chunk);
    par_map_indexed(n_chunks, |c| {
        let lo = c * chunk;
        f(lo..(lo + chunk).min(n))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let out = par_map_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn results_identical_across_thread_budgets() {
        let serial = with_threads(1, || par_map_indexed(333, |i| (i as f64).sqrt()));
        let parallel = with_threads(8, || par_map_indexed(333, |i| (i as f64).sqrt()));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        let ranges = |threads| {
            with_threads(threads, || par_chunks(10, 4, |r| (r.start, r.end)))
        };
        assert_eq!(ranges(1), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(ranges(1), ranges(6));
    }

    #[test]
    fn chunked_sums_fold_identically() {
        let data: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum = |threads: usize| {
            with_threads(threads, || {
                par_chunks(data.len(), 128, |r| data[r].iter().sum::<f64>())
                    .into_iter()
                    .fold(0.0, |acc, s| acc + s)
            })
        };
        assert_eq!(sum(1).to_bits(), sum(7).to_bits());
    }

    #[test]
    fn override_is_scoped_and_restored() {
        assert_eq!(with_threads(3, effective_threads), 3);
        let ambient = effective_threads();
        assert!(ambient >= 1);
        let nested = with_threads(5, || with_threads(2, effective_threads));
        assert_eq!(nested, 2);
    }
}
