//! Isolation Forest — the second of the paper's §V extension models.
//!
//! Anomalies are easier to isolate: random axis-aligned splits separate
//! them from the bulk in fewer steps, so short average path lengths mean
//! high anomaly scores (Liu, Ting & Zhou 2008). For IDS use the anomaly
//! score is thresholded; the threshold is fitted on the labelled
//! training capture to maximise accuracy (the supervised calibration
//! step any deployed anomaly detector needs).

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{Classifier, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};

const IFOREST_MAGIC: u32 = 0x69666f31; // "ifo1"

/// Isolation Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsolationForestConfig {
    /// Number of isolation trees.
    pub n_trees: usize,
    /// Sub-sample size per tree (the classic ψ = 256).
    pub sample_size: usize,
}

impl Default for IsolationForestConfig {
    fn default() -> Self {
        IsolationForestConfig { n_trees: 50, sample_size: 256 }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// External node: `size` training points ended here.
    Leaf { size: u32 },
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

#[derive(Debug, Clone, PartialEq)]
struct IsolationTree {
    nodes: Vec<Node>,
}

impl IsolationTree {
    fn fit(x: &[Vec<f64>], sample: &[usize], max_depth: usize, rng: &mut SimRng) -> Self {
        let mut tree = IsolationTree { nodes: Vec::new() };
        tree.grow(x, sample.to_vec(), 0, max_depth, rng);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        indices: Vec<usize>,
        depth: usize,
        max_depth: usize,
        rng: &mut SimRng,
    ) -> u32 {
        let id = self.nodes.len() as u32;
        if depth >= max_depth || indices.len() <= 1 {
            self.nodes.push(Node::Leaf { size: indices.len() as u32 });
            return id;
        }
        let dims = x[0].len();
        // Pick a random feature with spread; give up after a few tries.
        let mut chosen = None;
        for _ in 0..8 {
            let feature = rng.below(dims as u64) as usize;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in &indices {
                lo = lo.min(x[i][feature]);
                hi = hi.max(x[i][feature]);
            }
            if hi - lo > 1e-12 {
                chosen = Some((feature, rng.uniform_range(lo, hi)));
                break;
            }
        }
        let Some((feature, threshold)) = chosen else {
            self.nodes.push(Node::Leaf { size: indices.len() as u32 });
            return id;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] < threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { size: indices.len() as u32 });
            return id;
        }
        self.nodes.push(Node::Leaf { size: 0 }); // placeholder
        let left = self.grow(x, left_idx, depth + 1, max_depth, rng);
        let right = self.grow(x, right_idx, depth + 1, max_depth, rng);
        self.nodes[id as usize] =
            Node::Split { feature: feature as u32, threshold, left, right };
        id
    }

    /// Path length of a point, with the standard `c(size)` adjustment at
    /// external nodes.
    fn path_length(&self, features: &[f64]) -> f64 {
        let mut node = 0u32;
        let mut depth = 0.0;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { size } => return depth + c_factor(*size as usize),
                Node::Split { feature, threshold, left, right } => {
                    depth += 1.0;
                    node = if features[*feature as usize] < *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Average unsuccessful-search path length of a BST with `n` nodes.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (n - 1.0) / n
}

/// A fitted Isolation Forest with a calibrated decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationForest {
    trees: Vec<IsolationTree>,
    sample_size: usize,
    /// Scores above this are classified malicious.
    threshold: f64,
}

impl IsolationForest {
    /// Fits on the rows of a matrix view (materialises the rows; tree
    /// sampling draws from one shared rng stream, so the build stays
    /// sequential).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: crate::matrix::MatrixView<'_>,
        y: &[usize],
        config: &IsolationForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        IsolationForest::fit(&view.to_rows(), y, config, rng)
    }

    /// Fits the forest on all samples and calibrates the score threshold
    /// on the labels.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &IsolationForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        crate::classifier::validate_training_set(x, y)?;
        let sample_size = config.sample_size.clamp(2, x.len());
        let max_depth = (sample_size as f64).log2().ceil() as usize;
        let trees: Vec<IsolationTree> = (0..config.n_trees.max(1))
            .map(|_| {
                let sample: Vec<usize> =
                    (0..sample_size).map(|_| rng.below(x.len() as u64) as usize).collect();
                IsolationTree::fit(x, &sample, max_depth, rng)
            })
            .collect();
        let mut forest = IsolationForest { trees, sample_size, threshold: 0.5 };

        // Calibrate the threshold: scan candidate quantiles of the
        // training scores for the best accuracy.
        let scores: Vec<f64> = x.iter().map(|xi| forest.score(xi)).collect();
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let mut best = (0usize, forest.threshold);
        for q in 1..40 {
            let threshold = sorted[(q * sorted.len() / 40).min(sorted.len() - 1)];
            let correct = scores
                .iter()
                .zip(y)
                .filter(|(&s, &label)| usize::from(s > threshold) == label)
                .count();
            if correct > best.0 {
                best = (correct, threshold);
            }
        }
        forest.threshold = best.1;
        Ok(forest)
    }

    /// The anomaly score in `(0, 1)`: ~0.5 is average, near 1 anomalous.
    pub fn score(&self, features: &[f64]) -> f64 {
        let mean_path: f64 = self.trees.iter().map(|t| t.path_length(features)).sum::<f64>()
            / self.trees.len() as f64;
        let c = c_factor(self.sample_size).max(1e-12);
        2f64.powf(-mean_path / c)
    }

    /// The calibrated decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decodes a model from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(IFOREST_MAGIC)?;
        let sample_size = d.get_usize()?;
        let threshold = d.get_f64()?;
        let n_trees = d.get_usize()?;
        if n_trees > 1 << 16 {
            return Err(DecodeError::Corrupt("tree count"));
        }
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let count = d.get_usize()?;
            if count > 1 << 24 {
                return Err(DecodeError::Corrupt("node count"));
            }
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                let node = match d.get_u8()? {
                    0 => Node::Leaf { size: d.get_u32()? },
                    1 => Node::Split {
                        feature: d.get_u32()?,
                        threshold: d.get_f64()?,
                        left: d.get_u32()?,
                        right: d.get_u32()?,
                    },
                    _ => return Err(DecodeError::Corrupt("node tag")),
                };
                nodes.push(node);
            }
            trees.push(IsolationTree { nodes });
        }
        Ok(IsolationForest { trees, sample_size, threshold })
    }
}

impl Classifier for IsolationForest {
    fn name(&self) -> &'static str {
        "IF"
    }

    fn predict(&self, features: &[f64]) -> usize {
        usize::from(self.score(features) > self.threshold)
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(IFOREST_MAGIC);
        e.put_usize(self.sample_size);
        e.put_f64(self.threshold);
        e.put_usize(self.trees.len());
        for tree in &self.trees {
            e.put_usize(tree.nodes.len());
            for node in &tree.nodes {
                match node {
                    Node::Leaf { size } => {
                        e.put_u8(0);
                        e.put_u32(*size);
                    }
                    Node::Split { feature, threshold, left, right } => {
                        e.put_u8(1);
                        e.put_u32(*feature);
                        e.put_f64(*threshold);
                        e.put_u32(*left);
                        e.put_u32(*right);
                    }
                }
            }
        }
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        let nodes: usize = self.trees.iter().map(|t| t.nodes.len()).sum();
        (nodes * std::mem::size_of::<Node>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dense benign cluster plus scattered anomalies.
    fn anomaly_data(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            if i % 10 == 0 {
                // Anomaly: far from the cluster.
                x.push(vec![rng.uniform_range(5.0, 15.0), rng.uniform_range(5.0, 15.0)]);
                y.push(1);
            } else {
                x.push(vec![rng.standard_normal() * 0.5, rng.standard_normal() * 0.5]);
                y.push(0);
            }
        }
        (x, y)
    }

    #[test]
    fn anomalies_score_higher() {
        let mut rng = SimRng::seed_from(1);
        let (x, y) = anomaly_data(500, &mut rng);
        let forest =
            IsolationForest::fit(&x, &y, &IsolationForestConfig::default(), &mut rng).unwrap();
        let benign_mean: f64 = x
            .iter()
            .zip(&y)
            .filter(|(_, &l)| l == 0)
            .map(|(xi, _)| forest.score(xi))
            .sum::<f64>()
            / y.iter().filter(|&&l| l == 0).count() as f64;
        let anomaly_mean: f64 = x
            .iter()
            .zip(&y)
            .filter(|(_, &l)| l == 1)
            .map(|(xi, _)| forest.score(xi))
            .sum::<f64>()
            / y.iter().filter(|&&l| l == 1).count() as f64;
        assert!(anomaly_mean > benign_mean + 0.1, "{anomaly_mean} vs {benign_mean}");
    }

    #[test]
    fn calibrated_forest_classifies_well() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = anomaly_data(600, &mut rng);
        let forest =
            IsolationForest::fit(&x, &y, &IsolationForestConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| forest.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.93, "acc {correct}/600");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        let (x, y) = anomaly_data(200, &mut rng);
        let forest =
            IsolationForest::fit(&x, &y, &IsolationForestConfig::default(), &mut rng).unwrap();
        for xi in &x {
            let s = forest.score(xi);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut rng = SimRng::seed_from(4);
        let (x, y) = anomaly_data(200, &mut rng);
        let config = IsolationForestConfig { n_trees: 10, sample_size: 64 };
        let forest = IsolationForest::fit(&x, &y, &config, &mut rng).unwrap();
        let back = IsolationForest::decode(&forest.encode()).unwrap();
        assert_eq!(back.threshold(), forest.threshold());
        for xi in &x {
            assert_eq!(forest.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn c_factor_grows_logarithmically() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(256) > c_factor(16));
        assert!(c_factor(256) < 2.0 * (256f64).ln());
    }
}
