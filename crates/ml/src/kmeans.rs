//! K-Means clustering: classic Lloyd's algorithm plus the unsupervised
//! entropy-penalised variant (U-K-Means, Sinaga & Yang 2020) the paper's
//! K-Means IDS is built on.
//!
//! U-K-Means starts from a generous cluster budget and *learns the number
//! of clusters*: each iteration re-estimates mixing proportions with an
//! entropy penalty, discards clusters whose proportion collapses, and
//! biases assignment towards popular clusters — "dynamically determines
//! the optimal number of clusters by incorporating entropy-based penalty
//! terms into its objective function" (§III-B).
//!
//! For IDS use the learned clusters are mapped to classes post-hoc by
//! majority ground-truth label ([`KMeansDetector`]), the standard recipe
//! for unsupervised intrusion detection.
//!
//! The Lloyd iterations are chunk-parallel: assignment and centroid
//! accumulation run over fixed-size row chunks ([`CHUNK`] rows) whose
//! partial results fold in chunk order — same input, same seed, same
//! model at any thread count.

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{Classifier, RowSpan, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};
use crate::matrix::{FeatureMatrix, MatrixView};
use crate::par;

const KMEANS_MAGIC: u32 = 0x6b6d_6e73; // "kmns"

/// Rows per parallel work unit. Fixed (never derived from the thread
/// count) so floating-point partial sums always fold in the same order.
const CHUNK: usize = 1024;

/// Hyper-parameters for Lloyd / U-K-Means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Initial cluster budget (U-K-Means prunes down from here).
    pub k_max: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on centroid movement.
    pub tol: f64,
    /// Initial entropy-penalty weight (0 disables pruning → plain Lloyd).
    pub beta: f64,
    /// Multiplicative decay of the penalty per iteration.
    pub beta_decay: f64,
    /// Minimum mixing proportion a cluster needs to survive.
    pub min_proportion: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k_max: 16,
            max_iters: 60,
            tol: 1e-6,
            beta: 1.0,
            beta_decay: 0.9,
            min_proportion: 0.01,
        }
    }
}

/// A fitted K-Means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    proportions: Vec<f64>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits on a matrix view with k-means++ initialisation and
    /// entropy-penalised Lloyd iterations (set `beta = 0` for the classic
    /// algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] on an empty view.
    pub fn fit_view(
        view: MatrixView<'_>,
        config: &KMeansConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let n = view.n_rows();
        if n == 0 {
            return Err(TrainError::EmptyDataset);
        }
        let dims = view.n_cols();
        let k0 = config.k_max.clamp(1, n);
        let mut centroids = kmeans_plus_plus(view, k0, rng);
        let mut proportions = vec![1.0 / k0 as f64; k0];
        let mut beta = config.beta;
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;

        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // Assignment step: distance biased by -beta * ln(alpha_k).
            assign_all(view, &centroids, &proportions, beta, &mut assignments);
            // Update proportions and prune collapsed clusters.
            let k = centroids.len();
            let mut counts = vec![0usize; k];
            for &a in &assignments {
                counts[a] += 1;
            }
            proportions = counts.iter().map(|&c| c as f64 / n as f64).collect();
            if beta > 0.0 && k > 1 {
                let keep: Vec<usize> =
                    (0..k).filter(|&j| proportions[j] >= config.min_proportion).collect();
                if keep.len() < k && !keep.is_empty() {
                    centroids = keep.iter().map(|&j| centroids[j].clone()).collect();
                    let total: f64 = keep.iter().map(|&j| proportions[j]).sum();
                    proportions = keep.iter().map(|&j| proportions[j] / total).collect();
                    assign_all(view, &centroids, &proportions, beta, &mut assignments);
                }
            }
            // Centroid update: per-chunk partial (sums, counts) folded in
            // chunk order.
            let k = centroids.len();
            let partials = par::par_chunks(n, CHUNK, |range| {
                let mut sums = vec![vec![0.0; dims]; k];
                let mut counts = vec![0usize; k];
                for i in range {
                    let a = assignments[i];
                    counts[a] += 1;
                    for (s, v) in sums[a].iter_mut().zip(view.row(i)) {
                        *s += v;
                    }
                }
                (sums, counts)
            });
            let mut sums = vec![vec![0.0; dims]; k];
            let mut counts = vec![0usize; k];
            for (part_sums, part_counts) in partials {
                for (acc, part) in sums.iter_mut().zip(&part_sums) {
                    for (a, p) in acc.iter_mut().zip(part) {
                        *a += p;
                    }
                }
                for (a, p) in counts.iter_mut().zip(&part_counts) {
                    *a += p;
                }
            }
            let mut movement: f64 = 0.0;
            for j in 0..k {
                if counts[j] == 0 {
                    continue; // keep the old centroid; it may be pruned next round
                }
                for d in 0..dims {
                    let new = sums[j][d] / counts[j] as f64;
                    movement += (new - centroids[j][d]).abs();
                    centroids[j][d] = new;
                }
            }
            beta *= config.beta_decay;
            if movement < config.tol {
                break;
            }
        }

        let inertia = par::par_chunks(n, CHUNK, |range| {
            range
                .map(|i| {
                    let xi = view.row(i);
                    centroids
                        .iter()
                        .map(|c| squared_distance(xi, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
        })
        .into_iter()
        .fold(0.0, |acc, s| acc + s);
        let k = centroids.len();
        let counts = par::par_chunks(n, CHUNK, |range| {
            let mut counts = vec![0usize; k];
            for i in range {
                counts[nearest(view.row(i), &centroids)] += 1;
            }
            counts
        })
        .into_iter()
        .fold(vec![0usize; k], |mut acc, part| {
            for (a, p) in acc.iter_mut().zip(&part) {
                *a += p;
            }
            acc
        });
        let proportions = counts.iter().map(|&c| c as f64 / n as f64).collect();
        Ok(KMeans { centroids, proportions, inertia, iterations })
    }

    /// Fits on row-of-`Vec`s data (copies once into a flat matrix, then
    /// delegates to [`KMeans::fit_view`]).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] / [`TrainError::RaggedFeatures`]
    /// on unusable input.
    pub fn fit(x: &[Vec<f64>], config: &KMeansConfig, rng: &mut SimRng) -> Result<Self, TrainError> {
        let m = FeatureMatrix::from_rows(x)?;
        KMeans::fit_view(m.view(), config, rng)
    }

    /// The surviving cluster count.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Final mixing proportions.
    pub fn proportions(&self) -> &[f64] {
        &self.proportions
    }

    /// Sum of squared distances of samples to their nearest centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Iterations run before convergence.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Index of the nearest centroid.
    pub fn assign(&self, x: &[f64]) -> usize {
        nearest(x, &self.centroids)
    }
}

/// Chunk-parallel assignment of every row to its best cluster, written
/// into `out` in row order.
fn assign_all(
    view: MatrixView<'_>,
    centroids: &[Vec<f64>],
    proportions: &[f64],
    beta: f64,
    out: &mut Vec<usize>,
) {
    let n = view.n_rows();
    let parts = par::par_chunks(n, CHUNK, |range| {
        range
            .map(|i| best_cluster(view.row(i), centroids, proportions, beta))
            .collect::<Vec<usize>>()
    });
    out.clear();
    for part in parts {
        out.extend(part);
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest(x: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.iter().enumerate() {
        let d = squared_distance(x, c);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    best
}

fn best_cluster(x: &[f64], centroids: &[Vec<f64>], proportions: &[f64], beta: f64) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for (j, c) in centroids.iter().enumerate() {
        let penalty = if beta > 0.0 { -beta * proportions[j].max(1e-12).ln() } else { 0.0 };
        let score = squared_distance(x, c) + penalty;
        if score < best_score {
            best_score = score;
            best = j;
        }
    }
    best
}

/// k-means++ seeding (serial: each draw conditions on the previous one).
fn kmeans_plus_plus(view: MatrixView<'_>, k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
    let n = view.n_rows();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(view.row(rng.below(n as u64) as usize).to_vec());
    let mut dist: Vec<f64> =
        (0..n).map(|i| squared_distance(view.row(i), &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist.iter().sum();
        let next = if total <= 0.0 {
            rng.below(n as u64) as usize
        } else {
            let mut draw = rng.uniform() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist.iter().enumerate() {
                draw -= d;
                if draw <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(view.row(next).to_vec());
        let newest = centroids.last().expect("just pushed");
        for (i, d) in dist.iter_mut().enumerate() {
            *d = d.min(squared_distance(view.row(i), newest));
        }
    }
    centroids
}

/// The K-Means IDS: U-K-Means clusters mapped to classes by majority
/// ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansDetector {
    model: KMeans,
    cluster_labels: Vec<usize>,
}

impl KMeansDetector {
    /// Clusters the view's rows unsupervised, then labels each cluster
    /// with the majority class of its members.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: MatrixView<'_>,
        y: &[usize],
        config: &KMeansConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        if view.n_rows() != y.len() {
            return Err(TrainError::LabelMismatch);
        }
        let model = KMeans::fit_view(view, config, rng)?;
        let k = model.k();
        let mut positives = vec![0usize; k];
        let mut totals = vec![0usize; k];
        for (i, &yi) in y.iter().enumerate() {
            let c = model.assign(view.row(i));
            totals[c] += 1;
            positives[c] += usize::from(yi == 1);
        }
        let cluster_labels =
            (0..k).map(|j| usize::from(positives[j] * 2 > totals[j].max(1))).collect();
        Ok(KMeansDetector { model, cluster_labels })
    }

    /// Clusters `x` unsupervised, then labels each cluster with the
    /// majority class of its members (row-of-`Vec`s adapter).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &KMeansConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        if x.len() != y.len() {
            return Err(TrainError::LabelMismatch);
        }
        let m = FeatureMatrix::from_rows(x)?;
        KMeansDetector::fit_view(m.view(), y, config, rng)
    }

    /// The underlying clustering.
    pub fn model(&self) -> &KMeans {
        &self.model
    }

    /// Per-cluster class labels.
    pub fn cluster_labels(&self) -> &[usize] {
        &self.cluster_labels
    }

    /// Flattens the centroids into one contiguous buffer for the batch
    /// predict path: `k × dims` values, centroid-major, so the per-row
    /// centroid sweep walks a single cache-friendly slice instead of
    /// chasing one heap pointer per centroid. Returns the buffer and
    /// `dims`.
    fn flat_centroids(&self) -> (Vec<f64>, usize) {
        let dims = self.model.centroids().first().map_or(0, Vec::len);
        let mut flat = Vec::with_capacity(self.model.k() * dims);
        for c in self.model.centroids() {
            flat.extend_from_slice(c);
        }
        (flat, dims)
    }

    /// Classifies `rows` of `view` against the flattened centroids,
    /// appending one class per row to `out`. Same arithmetic (a
    /// sequential squared-distance sweep per centroid) and the same
    /// strict-`<` tie-breaking as [`KMeans::assign`], so batch
    /// predictions are bit-identical to the per-row path.
    fn assign_rows_flat(
        &self,
        view: MatrixView<'_>,
        rows: std::ops::Range<usize>,
        flat: &[f64],
        dims: usize,
        out: &mut Vec<usize>,
    ) {
        // Four rows share each pass over the centroid buffer. A single
        // row's distance is a sequential dims-long add chain — latency
        // bound — but different rows' chains are independent, so
        // interleaving four hides that latency without touching any
        // row's operation order: each accumulator still sums its
        // squared differences in dimension order, bit-identical to the
        // one-row sweep below.
        let mut i = rows.start;
        while i + 4 <= rows.end {
            let x0 = &view.row(i)[..dims];
            let x1 = &view.row(i + 1)[..dims];
            let x2 = &view.row(i + 2)[..dims];
            let x3 = &view.row(i + 3)[..dims];
            let mut best = [0usize; 4];
            let mut best_d = [f64::INFINITY; 4];
            for (j, c) in flat.chunks_exact(dims).enumerate() {
                let mut d = [0.0f64; 4];
                for (jd, &cv) in c.iter().enumerate() {
                    d[0] += (x0[jd] - cv).powi(2);
                    d[1] += (x1[jd] - cv).powi(2);
                    d[2] += (x2[jd] - cv).powi(2);
                    d[3] += (x3[jd] - cv).powi(2);
                }
                for (lane, &dist) in d.iter().enumerate() {
                    if dist < best_d[lane] {
                        best_d[lane] = dist;
                        best[lane] = j;
                    }
                }
            }
            for lane in best {
                out.push(self.cluster_labels[lane]);
            }
            i += 4;
        }
        for i in i..rows.end {
            let x = view.row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (j, c) in flat.chunks_exact(dims).enumerate() {
                let d: f64 = x.iter().zip(c).map(|(a, b)| (a - b).powi(2)).sum();
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            out.push(self.cluster_labels[best]);
        }
    }

    /// Decodes a detector from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(KMEANS_MAGIC)?;
        let k = d.get_usize()?;
        if k > 1 << 16 {
            return Err(DecodeError::Corrupt("cluster count"));
        }
        let mut centroids = Vec::with_capacity(k);
        for _ in 0..k {
            centroids.push(d.get_f64_slice()?);
        }
        let proportions = d.get_f64_slice()?;
        let cluster_labels = d.get_usize_slice()?;
        if cluster_labels.len() != k || proportions.len() != k {
            return Err(DecodeError::Corrupt("label/proportion arity"));
        }
        Ok(KMeansDetector {
            model: KMeans { centroids, proportions, inertia: 0.0, iterations: 0 },
            cluster_labels,
        })
    }
}

impl Classifier for KMeansDetector {
    fn name(&self) -> &'static str {
        "K-Means"
    }

    fn predict(&self, features: &[f64]) -> usize {
        self.cluster_labels[self.model.assign(features)]
    }

    fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
        // Assignment computes one squared distance per centroid, each a
        // dims-long multiply-add sweep.
        let dims = self.model.centroids().first().map_or(0, Vec::len) as u64;
        (self.predict(features), self.model.k() as u64 * dims)
    }

    fn predict_batch_into(&self, view: MatrixView<'_>, out: &mut Vec<usize>) -> u64 {
        out.clear();
        out.reserve(view.n_rows());
        let (flat, dims) = self.flat_centroids();
        if dims == 0 {
            // Degenerate dimensionless model: keep the per-row path.
            let mut work = 0u64;
            for i in 0..view.n_rows() {
                let (class, w) = self.predict_with_work(view.row(i));
                out.push(class);
                work += w;
            }
            return work;
        }
        self.assign_rows_flat(view, 0..view.n_rows(), &flat, dims, out);
        (view.n_rows() * self.model.k() * dims) as u64
    }

    fn predict_batch_spans_into(
        &self,
        view: MatrixView<'_>,
        spans: &[RowSpan],
        out: &mut Vec<usize>,
        span_work: &mut Vec<u64>,
    ) -> u64 {
        out.clear();
        out.reserve(spans.iter().map(|s| s.len).sum());
        span_work.clear();
        span_work.reserve(spans.len());
        let (flat, dims) = self.flat_centroids();
        let per_row = (self.model.k() * dims) as u64;
        let mut total = 0u64;
        for span in spans {
            if dims == 0 {
                let mut work = 0u64;
                for i in span.range() {
                    let (class, w) = self.predict_with_work(view.row(i));
                    out.push(class);
                    work += w;
                }
                span_work.push(work);
                total += work;
                continue;
            }
            self.assign_rows_flat(view, span.range(), &flat, dims, out);
            let work = span.len as u64 * per_row;
            span_work.push(work);
            total += work;
        }
        total
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(KMEANS_MAGIC);
        e.put_usize(self.model.k());
        for c in self.model.centroids() {
            e.put_f64_slice(c);
        }
        e.put_f64_slice(self.model.proportions());
        e.put_usize_slice(&self.cluster_labels);
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        let dims = self.model.centroids().first().map_or(0, Vec::len);
        ((self.model.k() * dims + self.model.k()) * std::mem::size_of::<f64>()
            + self.cluster_labels.len() * std::mem::size_of::<usize>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, centers: &[(f64, f64)], rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % centers.len();
            let (cx, cy) = centers[class];
            x.push(vec![cx + 0.3 * rng.standard_normal(), cy + 0.3 * rng.standard_normal()]);
            y.push(usize::from(class >= centers.len() / 2));
        }
        (x, y)
    }

    #[test]
    fn flat_batch_predict_is_bit_identical_to_per_row() {
        let mut rng = SimRng::seed_from(7);
        let (x, y) = blobs(240, &[(-5.0, 0.0), (0.0, 5.0), (5.0, 0.0), (0.0, -5.0)], &mut rng);
        let detector = KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap();
        let mut m = FeatureMatrix::new(2);
        for row in &x {
            m.push_row(row);
        }
        // Batch vs per-row.
        let mut batch = Vec::new();
        let work = detector.predict_batch_into(m.view(), &mut batch);
        let mut per_row_work = 0u64;
        for (i, row) in x.iter().enumerate() {
            let (class, w) = detector.predict_with_work(row);
            assert_eq!(batch[i], class, "row {i}");
            per_row_work += w;
        }
        assert_eq!(work, per_row_work);
        // Span-batched vs batch, across ragged tilings.
        let spans = [
            RowSpan { start: 0, len: 100 },
            RowSpan { start: 100, len: 0 },
            RowSpan { start: 100, len: 140 },
        ];
        let mut spanned = Vec::new();
        let mut span_work = Vec::new();
        let total = detector.predict_batch_spans_into(m.view(), &spans, &mut spanned, &mut span_work);
        assert_eq!(spanned, batch);
        assert_eq!(total, work);
        assert_eq!(span_work.iter().sum::<u64>(), total);
        assert_eq!(span_work[1], 0);
    }

    #[test]
    fn ukmeans_discovers_the_true_cluster_count() {
        let mut rng = SimRng::seed_from(1);
        let (x, _) = blobs(600, &[(-5.0, 0.0), (0.0, 5.0), (5.0, 0.0)], &mut rng);
        let model = KMeans::fit(&x, &KMeansConfig::default(), &mut rng).unwrap();
        assert_eq!(model.k(), 3, "entropy pruning collapses 16 -> 3 clusters");
    }

    #[test]
    fn plain_lloyd_keeps_all_clusters() {
        let mut rng = SimRng::seed_from(2);
        let (x, _) = blobs(300, &[(-5.0, 0.0), (5.0, 0.0)], &mut rng);
        let config = KMeansConfig { k_max: 4, beta: 0.0, ..KMeansConfig::default() };
        let model = KMeans::fit(&x, &config, &mut rng).unwrap();
        assert_eq!(model.k(), 4, "beta=0 disables pruning");
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut rng = SimRng::seed_from(3);
        let (x, _) = blobs(400, &[(-5.0, 0.0), (0.0, 5.0), (5.0, 0.0), (0.0, -5.0)], &mut rng);
        let fit_k = |k: usize, rng: &mut SimRng| {
            let config = KMeansConfig { k_max: k, beta: 0.0, ..KMeansConfig::default() };
            KMeans::fit(&x, &config, rng).unwrap().inertia()
        };
        let i1 = fit_k(1, &mut rng);
        let i2 = fit_k(2, &mut rng);
        let i4 = fit_k(4, &mut rng);
        assert!(i1 > i2, "{i1} > {i2}");
        assert!(i2 > i4, "{i2} > {i4}");
    }

    #[test]
    fn detector_classifies_separated_classes() {
        let mut rng = SimRng::seed_from(4);
        let (x, y) = blobs(500, &[(-4.0, -4.0), (4.0, 4.0)], &mut rng);
        let detector = KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| detector.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "acc {correct}/500");
    }

    #[test]
    fn predict_with_work_counts_distance_multiply_adds() {
        let mut rng = SimRng::seed_from(14);
        let (x, y) = blobs(200, &[(-4.0, 0.0), (4.0, 0.0)], &mut rng);
        let detector = KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap();
        let (class, work) = detector.predict_with_work(&x[0]);
        assert_eq!(class, detector.predict(&x[0]));
        // k centroids × 2 feature dims.
        assert_eq!(work, detector.model().k() as u64 * 2);
    }

    #[test]
    fn detector_codec_roundtrip() {
        let mut rng = SimRng::seed_from(5);
        let (x, y) = blobs(200, &[(-4.0, 0.0), (4.0, 0.0)], &mut rng);
        let detector = KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap();
        let blob = detector.encode();
        let back = KMeansDetector::decode(&blob).unwrap();
        for xi in &x {
            assert_eq!(detector.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn kmeans_model_is_tiny() {
        // Table II: the paper's K-Means model is ~11 Kb vs ~712 Kb for RF.
        let mut rng = SimRng::seed_from(6);
        let (x, y) = blobs(300, &[(-4.0, 0.0), (4.0, 0.0)], &mut rng);
        let detector = KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap();
        assert!(detector.encode().len() < 4_096, "encoded {} bytes", detector.encode().len());
    }

    #[test]
    fn empty_and_ragged_inputs_error() {
        let mut rng = SimRng::seed_from(7);
        assert_eq!(
            KMeans::fit(&[], &KMeansConfig::default(), &mut rng),
            Err(TrainError::EmptyDataset)
        );
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert_eq!(
            KMeans::fit(&ragged, &KMeansConfig::default(), &mut rng),
            Err(TrainError::RaggedFeatures)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SimRng::seed_from(8);
            let (x, y) = blobs(200, &[(-4.0, 0.0), (4.0, 0.0)], &mut rng);
            KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap().encode()
        };
        assert_eq!(run(), run());
    }

    /// Chunked reductions must make the fit independent of the thread
    /// budget, even with several chunks in play (n > CHUNK).
    #[test]
    fn fit_is_thread_count_invariant() {
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(9);
                let (x, y) =
                    blobs(CHUNK + 600, &[(-5.0, 0.0), (0.0, 5.0), (5.0, 0.0)], &mut rng);
                KMeansDetector::fit(&x, &y, &KMeansConfig::default(), &mut rng).unwrap().encode()
            })
        };
        assert_eq!(run(1), run(4));
    }
}
