//! # ml — from-scratch machine learning for the DDoShield-IoT IDS
//!
//! Pure-Rust reimplementations of the three models the paper evaluates
//! (scikit-learn / TensorFlow in the original):
//!
//! * [`rf`] — Random Forest: CART trees (Gini), bootstrap bagging,
//!   per-split feature subsampling, majority voting.
//! * [`kmeans`] — classic Lloyd plus the unsupervised entropy-penalised
//!   **U-K-Means** (Sinaga & Yang 2020) the paper cites, with automatic
//!   cluster-count selection and post-hoc cluster labelling.
//! * [`cnn`] — a trainable 1-D CNN (conv / dilated conv / ReLU / maxpool
//!   / dense / softmax) with hand-written backprop and Adam.
//!
//! Extension models from the paper's §V future-work list: [`svm`]
//! (linear SVM via Pegasos), [`iforest`] (Isolation Forest) and
//! [`autoencoder`] (a dense autoencoder anomaly detector standing in
//! for the VAE).
//!
//! Supporting modules: [`metrics`] (accuracy/precision/recall/F1 with
//! the paper's division-by-zero caveat made explicit), [`codec`] (the
//! PKL-file analogue used for the Model-Size metric), [`classifier`]
//! (the object-safe interface the IDS drives), [`matrix`] (the flat
//! row-major [`FeatureMatrix`] the training/inference hot paths run on)
//! and [`par`] (deterministic, thread-count-invariant data-parallel
//! helpers the trainers fan work out with).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autoencoder;
pub mod classifier;
pub mod cnn;
pub mod codec;
pub mod handle;
pub mod iforest;
pub mod kmeans;
pub mod matrix;
pub mod metrics;
pub mod nn;
pub mod par;
pub mod rf;
pub mod svm;

pub use classifier::{evaluate_view, Classifier, RowSpan, TrainError};
pub use handle::{ModelHandle, SwapHandle, Versioned};
pub use matrix::{gather, FeatureMatrix, MatrixView};
pub use cnn::{Cnn, CnnConfig};
pub use codec::{DecodeError, Decoder, Encoder};
pub use kmeans::{KMeans, KMeansConfig, KMeansDetector};
pub use metrics::{ConfusionMatrix, MetricsReport};
pub use rf::{DecisionTree, ForestConfig, RandomForest, TreeConfig};
pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use iforest::{IsolationForest, IsolationForestConfig};
pub use svm::{LinearSvm, SvmConfig};
