//! Binary-classification evaluation metrics.
//!
//! The paper evaluates its models with Accuracy, Precision, Recall and
//! F1-Score at training time, and accuracy alone during real-time
//! detection (single-class windows make precision/recall undefined —
//! division by zero — so the paper restricts itself to accuracy there;
//! see §IV-D).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The positive class index (malicious).
pub const POSITIVE: usize = 1;

/// A binary confusion matrix (positive = malicious).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Malicious predicted malicious.
    pub tp: u64,
    /// Benign predicted malicious.
    pub fp: u64,
    /// Benign predicted benign.
    pub tn: u64,
    /// Malicious predicted benign.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds the matrix from aligned truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(y_true: &[usize], y_pred: &[usize]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "prediction arity mismatch");
        let mut m = ConfusionMatrix::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            m.record(t, p);
        }
        m
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        match (truth == POSITIVE, prediction == POSITIVE) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions, or 0 on an empty matrix.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// `tp / (tp + fp)`; `None` when nothing was predicted positive
    /// (the division-by-zero case the paper sidesteps in real time).
    pub fn precision(&self) -> Option<f64> {
        checked_ratio(self.tp, self.tp + self.fp)
    }

    /// `tp / (tp + fn)`; `None` when no positives exist in the truth.
    pub fn recall(&self) -> Option<f64> {
        checked_ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; `None` if either is
    /// undefined or both are zero.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            return None;
        }
        Some(2.0 * p * r / (p + r))
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} acc={:.4}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.accuracy()
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn checked_ratio(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

/// The paper's train-time metric row: accuracy, precision, recall, F1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Fraction correct.
    pub accuracy: f64,
    /// Positive predictive value (0 when undefined).
    pub precision: f64,
    /// True positive rate (0 when undefined).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when undefined).
    pub f1: f64,
}

impl MetricsReport {
    /// Summarises a confusion matrix, mapping undefined metrics to 0.
    pub fn from_confusion(m: &ConfusionMatrix) -> Self {
        MetricsReport {
            accuracy: m.accuracy(),
            precision: m.precision().unwrap_or(0.0),
            recall: m.recall().unwrap_or(0.0),
            f1: m.f1().unwrap_or(0.0),
        }
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc={:.4} prec={:.4} rec={:.4} f1={:.4}",
            self.accuracy, self.precision, self.recall, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 0, 1], &[0, 1, 0, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), Some(1.0));
        assert_eq!(m.recall(), Some(1.0));
        assert_eq!(m.f1(), Some(1.0));
    }

    #[test]
    fn known_counts() {
        // 3 tp, 1 fp, 4 tn, 2 fn
        let truth = [1, 1, 1, 0, 0, 0, 0, 0, 1, 1];
        let pred_ = [1, 1, 1, 1, 0, 0, 0, 0, 0, 0];
        let m = ConfusionMatrix::from_predictions(&truth, &pred_);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (3, 1, 4, 2));
        assert!((m.accuracy() - 0.7).abs() < 1e-12);
        assert!((m.precision().unwrap() - 0.75).abs() < 1e-12);
        assert!((m.recall().unwrap() - 0.6).abs() < 1e-12);
        let f1 = m.f1().unwrap();
        assert!((f1 - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn single_class_windows_make_precision_undefined() {
        // All benign, all predicted benign: the division-by-zero case the
        // paper cites for using accuracy only during real-time detection.
        let m = ConfusionMatrix::from_predictions(&[0, 0, 0], &[0, 0, 0]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), None);
        assert_eq!(m.recall(), None);
        assert_eq!(m.f1(), None);
        let report = MetricsReport::from_confusion(&m);
        assert_eq!(report.precision, 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::from_predictions(&[1], &[1]);
        let b = ConfusionMatrix::from_predictions(&[0], &[1]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fp, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), None);
        assert!(!format!("{m}").is_empty());
    }
}
