#![allow(clippy::needless_range_loop)] // index arithmetic mirrors the math
//! A trainable 1-D convolutional neural network.
//!
//! The paper's CNN IDS (TensorFlow in the original) is reproduced from
//! scratch: two 1-D convolution layers (the second dilated, per the
//! paper's §III-B discussion of dilated convolution), ReLU activations,
//! max-pooling for down-sampling, and two dense layers ending in a
//! softmax over {benign, malicious}. Training is mini-batch SGD with the
//! Adam optimiser on the cross-entropy loss, with full backpropagation
//! implemented by hand (verified against numerical gradients in the
//! tests).
//!
//! A feature vector is treated as a 1-channel signal of length
//! `input_len`, so convolution mixes neighbouring features — local
//! connections and weight sharing, as the paper describes.
//!
//! Mini-batch gradients are computed in parallel: each batch is cut into
//! fixed [`MICRO_BATCH`]-example chunks, one partial [`Grads`] per chunk,
//! folded in chunk order before the Adam step — so the fitted network is
//! identical at any thread count.

use std::cell::RefCell;

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{validate_matrix, validate_training_set, Classifier, TrainError};
use crate::matrix::{matmul_nt, FeatureMatrix, MatrixView};
use crate::nn::{relu, relu_grad, softmax, softmax_into, Adam, Dense};
use crate::codec::{DecodeError, Decoder, Encoder};
use crate::par;

const CNN_MAGIC: u32 = 0x636e_6e31; // "cnn1"

/// Examples per parallel gradient work unit. Fixed (never derived from
/// the thread count) so partial-gradient sums always fold in the same
/// order.
const MICRO_BATCH: usize = 16;

/// Architecture and training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Input feature count (signal length).
    pub input_len: usize,
    /// Filters in the first convolution.
    pub conv1_filters: usize,
    /// Filters in the second convolution.
    pub conv2_filters: usize,
    /// Kernel width (odd, for symmetric same-padding).
    pub kernel: usize,
    /// Dilation of the second convolution.
    pub dilation2: usize,
    /// Hidden units in the first dense layer.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            input_len: 23,
            conv1_filters: 8,
            conv2_filters: 16,
            kernel: 3,
            dilation2: 2,
            hidden: 32,
            epochs: 8,
            batch_size: 64,
            learning_rate: 1e-3,
        }
    }
}

const CLASSES: usize = 2;

/// A 1-D convolution layer with same-padding.
#[derive(Debug, Clone, PartialEq)]
struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    dilation: usize,
    /// `[out_ch][in_ch][kernel]` flattened.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Conv1d {
    fn new(in_ch: usize, out_ch: usize, kernel: usize, dilation: usize, rng: &mut SimRng) -> Self {
        let fan_in = (in_ch * kernel) as f64;
        let scale = (2.0 / fan_in).sqrt(); // He init for ReLU nets
        let w = (0..out_ch * in_ch * kernel).map(|_| scale * rng.standard_normal()).collect();
        Conv1d { in_ch, out_ch, kernel, dilation, w, b: vec![0.0; out_ch] }
    }

    #[inline]
    fn widx(&self, o: usize, i: usize, k: usize) -> usize {
        (o * self.in_ch + i) * self.kernel + k
    }

    /// `input` is `[in_ch][len]`; output is `[out_ch][len]` (same pad).
    fn forward(&self, input: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let len = input[0].len();
        let half = (self.kernel / 2) as isize;
        let mut out = vec![vec![0.0; len]; self.out_ch];
        for o in 0..self.out_ch {
            for p in 0..len {
                let mut acc = self.b[o];
                for i in 0..self.in_ch {
                    for k in 0..self.kernel {
                        let offset = (k as isize - half) * self.dilation as isize;
                        let src = p as isize + offset;
                        if src >= 0 && (src as usize) < len {
                            acc += self.w[self.widx(o, i, k)] * input[i][src as usize];
                        }
                    }
                }
                out[o][p] = acc;
            }
        }
        out
    }

    /// Writes the zero-padded im2col patch matrix for `input` (flat
    /// channel-major `[in_ch][len]`): row `p` is the receptive field of
    /// output position `p`, laid out `[i * kernel + k]` — exactly the
    /// index order of one weight row, so `matmul_nt(w, patches, ..)`
    /// accumulates in the same order as the scalar [`Conv1d::forward`].
    fn im2col(&self, input: &[f64], len: usize, patches: &mut Vec<f64>) {
        let half = (self.kernel / 2) as isize;
        let k_total = self.in_ch * self.kernel;
        patches.resize(len * k_total, 0.0);
        for p in 0..len {
            let row = &mut patches[p * k_total..(p + 1) * k_total];
            for i in 0..self.in_ch {
                let channel = &input[i * len..(i + 1) * len];
                for k in 0..self.kernel {
                    let src = p as isize + (k as isize - half) * self.dilation as isize;
                    row[i * self.kernel + k] = if src >= 0 && (src as usize) < len {
                        channel[src as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
    }

    /// Backward pass: returns gradient wrt input; accumulates parameter
    /// gradients into `gw`/`gb`.
    fn backward(
        &self,
        input: &[Vec<f64>],
        grad_out: &[Vec<f64>],
        gw: &mut [f64],
        gb: &mut [f64],
    ) -> Vec<Vec<f64>> {
        let len = input[0].len();
        let half = (self.kernel / 2) as isize;
        let mut grad_in = vec![vec![0.0; len]; self.in_ch];
        for o in 0..self.out_ch {
            for p in 0..len {
                let g = grad_out[o][p];
                if g == 0.0 {
                    continue;
                }
                gb[o] += g;
                for i in 0..self.in_ch {
                    for k in 0..self.kernel {
                        let offset = (k as isize - half) * self.dilation as isize;
                        let src = p as isize + offset;
                        if src >= 0 && (src as usize) < len {
                            gw[self.widx(o, i, k)] += g * input[i][src as usize];
                            grad_in[i][src as usize] += g * self.w[self.widx(o, i, k)];
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Max pool with window 2, stride 2. Returns (pooled, argmax positions).
fn maxpool2(x: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
    let out_len = x[0].len() / 2;
    let mut out = vec![vec![0.0; out_len]; x.len()];
    let mut arg = vec![vec![0usize; out_len]; x.len()];
    for (c, channel) in x.iter().enumerate() {
        for p in 0..out_len {
            let (a, b) = (channel[2 * p], channel[2 * p + 1]);
            if a >= b {
                out[c][p] = a;
                arg[c][p] = 2 * p;
            } else {
                out[c][p] = b;
                arg[c][p] = 2 * p + 1;
            }
        }
    }
    (out, arg)
}

/// Max pool (window 2, stride 2) over a flat channel-major `[channels][len]`
/// buffer, refilling `out` as `[channels][len / 2]`. Ties prefer the left
/// element, matching [`maxpool2`]. No argmax: the flat path is
/// inference-only.
fn maxpool2_flat(x: &[f64], channels: usize, len: usize, out: &mut Vec<f64>) {
    let out_len = len / 2;
    out.clear();
    out.reserve(channels * out_len);
    for c in 0..channels {
        let channel = &x[c * len..(c + 1) * len];
        for p in 0..out_len {
            let (a, b) = (channel[2 * p], channel[2 * p + 1]);
            out.push(if a >= b { a } else { b });
        }
    }
}

fn maxpool2_backward(grad_out: &[Vec<f64>], arg: &[Vec<usize>], in_len: usize) -> Vec<Vec<f64>> {
    let mut grad_in = vec![vec![0.0; in_len]; grad_out.len()];
    for c in 0..grad_out.len() {
        for p in 0..grad_out[c].len() {
            grad_in[c][arg[c][p]] += grad_out[c][p];
        }
    }
    grad_in
}

/// Reusable buffers for the flat im2col inference path
/// ([`Cnn::forward_scratch`]). All `Vec`s are cleared and refilled on
/// each call, so a warmed-up scratch makes repeated prediction
/// allocation-free.
#[derive(Debug, Default)]
pub struct CnnScratch {
    /// im2col patch matrix (shared by both conv layers).
    patches: Vec<f64>,
    /// Conv1 pre/post-activation, flat `[out_ch][len]`.
    z1: Vec<f64>,
    /// Pooled conv1 activations, flat `[out_ch][len / 2]`.
    p1: Vec<f64>,
    /// Conv2 pre/post-activation, flat `[out_ch][len / 2]`.
    z2: Vec<f64>,
    /// Pooled conv2 activations — already the dense layer's flat input.
    p2: Vec<f64>,
    /// Hidden dense pre/post-activation.
    z3: Vec<f64>,
    /// Output logits.
    logits: Vec<f64>,
    /// Softmax class probabilities — the forward pass result.
    probs: Vec<f64>,
}

thread_local! {
    /// Per-thread scratch backing [`Cnn::predict`] / [`Cnn::predict_proba`],
    /// so steady-state inference allocates nothing without threading a
    /// buffer through the [`Classifier`] trait.
    static PREDICT_SCRATCH: RefCell<CnnScratch> = RefCell::new(CnnScratch::default());
}

struct ForwardCache {
    x0: Vec<Vec<f64>>,
    z1: Vec<Vec<f64>>,
    a1: Vec<Vec<f64>>,
    p1: Vec<Vec<f64>>,
    arg1: Vec<Vec<usize>>,
    z2: Vec<Vec<f64>>,
    a2: Vec<Vec<f64>>,
    arg2: Vec<Vec<usize>>,
    flat: Vec<f64>,
    z3: Vec<f64>,
    a3: Vec<f64>,
    probs: Vec<f64>,
}

struct Grads {
    c1w: Vec<f64>,
    c1b: Vec<f64>,
    c2w: Vec<f64>,
    c2b: Vec<f64>,
    f1w: Vec<f64>,
    f1b: Vec<f64>,
    f2w: Vec<f64>,
    f2b: Vec<f64>,
}

impl Grads {
    fn zero_like(net: &Cnn) -> Self {
        Grads {
            c1w: vec![0.0; net.conv1.w.len()],
            c1b: vec![0.0; net.conv1.b.len()],
            c2w: vec![0.0; net.conv2.w.len()],
            c2b: vec![0.0; net.conv2.b.len()],
            f1w: vec![0.0; net.fc1.w.len()],
            f1b: vec![0.0; net.fc1.b.len()],
            f2w: vec![0.0; net.fc2.w.len()],
            f2b: vec![0.0; net.fc2.b.len()],
        }
    }

    /// Element-wise accumulation of another gradient set (folding the
    /// per-micro-batch partials).
    fn add(&mut self, other: &Grads) {
        let pairs: [(&mut Vec<f64>, &Vec<f64>); 8] = [
            (&mut self.c1w, &other.c1w),
            (&mut self.c1b, &other.c1b),
            (&mut self.c2w, &other.c2w),
            (&mut self.c2b, &other.c2b),
            (&mut self.f1w, &other.f1w),
            (&mut self.f1b, &other.f1b),
            (&mut self.f2w, &other.f2w),
            (&mut self.f2b, &other.f2b),
        ];
        for (dst, src) in pairs {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    fn scale(&mut self, factor: f64) {
        for g in [
            &mut self.c1w,
            &mut self.c1b,
            &mut self.c2w,
            &mut self.c2b,
            &mut self.f1w,
            &mut self.f1b,
            &mut self.f2w,
            &mut self.f2b,
        ] {
            for v in g.iter_mut() {
                *v *= factor;
            }
        }
    }
}

/// The trained CNN classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Cnn {
    config: CnnConfig,
    conv1: Conv1d,
    conv2: Conv1d,
    fc1: Dense,
    fc2: Dense,
}

impl Cnn {
    /// Randomly initialised network (exposed for training experiments).
    pub fn init(config: CnnConfig, rng: &mut SimRng) -> Self {
        let pooled1 = config.input_len / 2;
        let pooled2 = pooled1 / 2;
        let flat = config.conv2_filters * pooled2;
        Cnn {
            config,
            conv1: Conv1d::new(1, config.conv1_filters, config.kernel, 1, rng),
            conv2: Conv1d::new(config.conv1_filters, config.conv2_filters, config.kernel, config.dilation2, rng),
            fc1: Dense::new(flat, config.hidden, rng),
            fc2: Dense::new(config.hidden, CLASSES, rng),
        }
    }

    /// Trains a CNN on the rows of a matrix view.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: MatrixView<'_>,
        y: &[usize],
        config: &CnnConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let dims = validate_matrix(view, y)?;
        let mut config = *config;
        config.input_len = dims;
        let mut net = Cnn::init(config, rng);
        net.train_view(view, y, rng);
        Ok(net)
    }

    /// Trains a CNN on labelled feature vectors.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &CnnConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        validate_training_set(x, y)?;
        let m = FeatureMatrix::from_rows(x)?;
        Cnn::fit_view(m.view(), y, config, rng)
    }

    /// Runs additional training epochs on the given data.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn train(&mut self, x: &[Vec<f64>], y: &[usize], rng: &mut SimRng) {
        if x.is_empty() {
            return;
        }
        let m = FeatureMatrix::from_rows(x).expect("rectangular training data");
        self.train_view(m.view(), y, rng);
    }

    /// Runs additional training epochs on the rows of a matrix view.
    pub fn train_view(&mut self, view: MatrixView<'_>, y: &[usize], rng: &mut SimRng) {
        let mut adam = (
            Adam::new(self.conv1.w.len()),
            Adam::new(self.conv1.b.len()),
            Adam::new(self.conv2.w.len()),
            Adam::new(self.conv2.b.len()),
            Adam::new(self.fc1.w.len()),
            Adam::new(self.fc1.b.len()),
            Adam::new(self.fc2.w.len()),
            Adam::new(self.fc2.b.len()),
        );
        let mut t = 0usize;
        let mut indices: Vec<usize> = (0..view.n_rows()).collect();
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut indices);
            for batch in indices.chunks(self.config.batch_size.max(1)) {
                let mut grads = self.batch_grads(view, y, batch);
                grads.scale(1.0 / batch.len() as f64);
                t += 1;
                let lr = self.config.learning_rate;
                adam.0.step(&mut self.conv1.w, &grads.c1w, lr, t);
                adam.1.step(&mut self.conv1.b, &grads.c1b, lr, t);
                adam.2.step(&mut self.conv2.w, &grads.c2w, lr, t);
                adam.3.step(&mut self.conv2.b, &grads.c2b, lr, t);
                adam.4.step(&mut self.fc1.w, &grads.f1w, lr, t);
                adam.5.step(&mut self.fc1.b, &grads.f1b, lr, t);
                adam.6.step(&mut self.fc2.w, &grads.f2w, lr, t);
                adam.7.step(&mut self.fc2.b, &grads.f2b, lr, t);
            }
        }
    }

    /// Summed (unscaled) gradients over one mini-batch: fixed
    /// [`MICRO_BATCH`]-example chunks in parallel, partials folded in
    /// chunk order.
    fn batch_grads(&self, view: MatrixView<'_>, y: &[usize], batch: &[usize]) -> Grads {
        let n_micro = batch.len().div_ceil(MICRO_BATCH);
        let partials = par::par_map_indexed(n_micro, |m| {
            let lo = m * MICRO_BATCH;
            let hi = (lo + MICRO_BATCH).min(batch.len());
            let mut g = Grads::zero_like(self);
            for &i in &batch[lo..hi] {
                let cache = self.forward(view.row(i));
                self.backward(&cache, y[i], &mut g);
            }
            g
        });
        let mut parts = partials.into_iter();
        let mut grads = parts.next().unwrap_or_else(|| Grads::zero_like(self));
        for p in parts {
            grads.add(&p);
        }
        grads
    }

    fn forward(&self, features: &[f64]) -> ForwardCache {
        let x0 = vec![features.to_vec()];
        let z1 = self.conv1.forward(&x0);
        let mut a1 = z1.clone();
        for c in &mut a1 {
            relu(c);
        }
        let (p1, arg1) = maxpool2(&a1);
        let z2 = self.conv2.forward(&p1);
        let mut a2 = z2.clone();
        for c in &mut a2 {
            relu(c);
        }
        let (p2, arg2) = maxpool2(&a2);
        let flat: Vec<f64> = p2.iter().flatten().copied().collect();
        let z3 = self.fc1.forward(&flat);
        let mut a3 = z3.clone();
        relu(&mut a3);
        let z4 = self.fc2.forward(&a3);
        let probs = softmax(&z4);
        ForwardCache { x0, z1, a1, p1, arg1, z2, a2, arg2, flat, z3, a3, probs }
    }

    fn backward(&self, cache: &ForwardCache, label: usize, grads: &mut Grads) {
        // Softmax + cross-entropy gradient.
        let mut dlogits = cache.probs.clone();
        dlogits[label] -= 1.0;
        let mut da3 = self.fc2.backward(&cache.a3, &dlogits, &mut grads.f2w, &mut grads.f2b);
        relu_grad(&cache.z3, &mut da3);
        let dflat = self.fc1.backward(&cache.flat, &da3, &mut grads.f1w, &mut grads.f1b);
        // Un-flatten into [C2][pooled2].
        let pooled2 = cache.flat.len() / self.conv2.out_ch;
        let dp2: Vec<Vec<f64>> =
            dflat.chunks(pooled2).map(<[f64]>::to_vec).collect();
        let mut da2 = maxpool2_backward(&dp2, &cache.arg2, cache.a2[0].len());
        for (channel, pre) in da2.iter_mut().zip(&cache.z2) {
            relu_grad(pre, channel);
        }
        let dp1 = self.conv2.backward(&cache.p1, &da2, &mut grads.c2w, &mut grads.c2b);
        let mut da1 = maxpool2_backward(&dp1, &cache.arg1, cache.a1[0].len());
        for (channel, pre) in da1.iter_mut().zip(&cache.z1) {
            relu_grad(pre, channel);
        }
        let _ = self.conv1.backward(&cache.x0, &da1, &mut grads.c1w, &mut grads.c1b);
    }

    /// The flat inference pass: im2col + [`matmul_nt`] per conv layer,
    /// flat max-pooling, then the dense head, all into `scratch`'s
    /// reused buffers (`scratch.probs` holds the result). Every
    /// floating-point accumulation happens in the same order as the
    /// nested-`Vec` [`Cnn::forward`], so the two produce bit-identical
    /// probabilities; `forward` stays as the golden reference (and the
    /// training path, which needs the cached activations).
    pub fn forward_scratch(&self, features: &[f64], scratch: &mut CnnScratch) {
        let len = features.len();
        self.conv1.im2col(features, len, &mut scratch.patches);
        let k1 = self.conv1.in_ch * self.conv1.kernel;
        matmul_nt(&self.conv1.w, &scratch.patches, k1, &self.conv1.b, &mut scratch.z1);
        relu(&mut scratch.z1);
        maxpool2_flat(&scratch.z1, self.conv1.out_ch, len, &mut scratch.p1);

        let pooled1 = len / 2;
        self.conv2.im2col(&scratch.p1, pooled1, &mut scratch.patches);
        let k2 = self.conv2.in_ch * self.conv2.kernel;
        matmul_nt(&self.conv2.w, &scratch.patches, k2, &self.conv2.b, &mut scratch.z2);
        relu(&mut scratch.z2);
        // The pooled channel-major buffer *is* the reference's flatten
        // order, so it feeds the dense head directly.
        maxpool2_flat(&scratch.z2, self.conv2.out_ch, pooled1, &mut scratch.p2);

        self.fc1.forward_into(&scratch.p2, &mut scratch.z3);
        relu(&mut scratch.z3);
        self.fc2.forward_into(&scratch.z3, &mut scratch.logits);
        softmax_into(&scratch.logits, &mut scratch.probs);
    }

    /// Cross-entropy loss on one sample (used by the gradient check).
    pub fn loss(&self, features: &[f64], label: usize) -> f64 {
        let cache = self.forward(features);
        -cache.probs[label].max(1e-12).ln()
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        PREDICT_SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            self.forward_scratch(features, &mut s);
            s.probs.clone()
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Federated averaging (McMahan et al.'s FedAvg aggregation step):
    /// the element-wise mean of the networks' parameters, weighted by
    /// `weights` (typically each client's sample count).
    ///
    /// Returns `None` if the slice is empty, lengths mismatch, or
    /// architectures differ.
    pub fn federated_average(nets: &[Cnn], weights: &[f64]) -> Option<Cnn> {
        let first = nets.first()?;
        if nets.len() != weights.len() || nets.iter().any(|n| n.config != first.config) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut out = first.clone();
        let zero = |v: &mut Vec<f64>| v.iter_mut().for_each(|x| *x = 0.0);
        zero(&mut out.conv1.w);
        zero(&mut out.conv1.b);
        zero(&mut out.conv2.w);
        zero(&mut out.conv2.b);
        zero(&mut out.fc1.w);
        zero(&mut out.fc1.b);
        zero(&mut out.fc2.w);
        zero(&mut out.fc2.b);
        for (net, &weight) in nets.iter().zip(weights) {
            let share = weight / total;
            let acc = |dst: &mut [f64], src: &[f64]| {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += share * s;
                }
            };
            acc(&mut out.conv1.w, &net.conv1.w);
            acc(&mut out.conv1.b, &net.conv1.b);
            acc(&mut out.conv2.w, &net.conv2.w);
            acc(&mut out.conv2.b, &net.conv2.b);
            acc(&mut out.fc1.w, &net.fc1.w);
            acc(&mut out.fc1.b, &net.fc1.b);
            acc(&mut out.fc2.w, &net.fc2.w);
            acc(&mut out.fc2.b, &net.fc2.b);
        }
        Some(out)
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.conv1.w.len()
            + self.conv1.b.len()
            + self.conv2.w.len()
            + self.conv2.b.len()
            + self.fc1.w.len()
            + self.fc1.b.len()
            + self.fc2.w.len()
            + self.fc2.b.len()
    }

    /// Decodes a CNN from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(CNN_MAGIC)?;
        let config = CnnConfig {
            input_len: d.get_usize()?,
            conv1_filters: d.get_usize()?,
            conv2_filters: d.get_usize()?,
            kernel: d.get_usize()?,
            dilation2: d.get_usize()?,
            hidden: d.get_usize()?,
            epochs: d.get_usize()?,
            batch_size: d.get_usize()?,
            learning_rate: d.get_f64()?,
        };
        let mut read_layer = |in_ch: usize, out_ch: usize, kernel: usize, dilation: usize| {
            Ok::<Conv1d, DecodeError>(Conv1d {
                in_ch,
                out_ch,
                kernel,
                dilation,
                w: d.get_f64_slice()?,
                b: d.get_f64_slice()?,
            })
        };
        let conv1 = read_layer(1, config.conv1_filters, config.kernel, 1)?;
        let conv2 = read_layer(config.conv1_filters, config.conv2_filters, config.kernel, config.dilation2)?;
        let pooled2 = (config.input_len / 2) / 2;
        let flat = config.conv2_filters * pooled2;
        let fc1 = Dense { input: flat, output: config.hidden, w: d.get_f64_slice()?, b: d.get_f64_slice()? };
        let fc2 = Dense { input: config.hidden, output: CLASSES, w: d.get_f64_slice()?, b: d.get_f64_slice()? };
        if fc1.w.len() != flat * config.hidden || fc2.w.len() != config.hidden * CLASSES {
            return Err(DecodeError::Corrupt("dense layer arity"));
        }
        Ok(Cnn { config, conv1, conv2, fc1, fc2 })
    }
}

impl Classifier for Cnn {
    fn name(&self) -> &'static str {
        "CNN"
    }

    fn predict(&self, features: &[f64]) -> usize {
        PREDICT_SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            self.forward_scratch(features, &mut s);
            usize::from(s.probs[1] > s.probs[0])
        })
    }

    fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
        // Multiply-accumulates of one forward pass: each conv layer slides
        // its full weight tensor across its (unclipped) output positions,
        // and each dense layer touches every weight once. A deterministic
        // function of the architecture — boundary clipping is ignored.
        let pooled1 = self.config.input_len / 2;
        let macs = (self.conv1.w.len() * self.config.input_len
            + self.conv2.w.len() * pooled1
            + self.fc1.w.len()
            + self.fc2.w.len()) as u64;
        (self.predict(features), macs)
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(CNN_MAGIC);
        e.put_usize(self.config.input_len);
        e.put_usize(self.config.conv1_filters);
        e.put_usize(self.config.conv2_filters);
        e.put_usize(self.config.kernel);
        e.put_usize(self.config.dilation2);
        e.put_usize(self.config.hidden);
        e.put_usize(self.config.epochs);
        e.put_usize(self.config.batch_size);
        e.put_f64(self.config.learning_rate);
        for layer in [&self.conv1, &self.conv2] {
            e.put_f64_slice(&layer.w);
            e.put_f64_slice(&layer.b);
        }
        for layer in [&self.fc1, &self.fc2] {
            e.put_f64_slice(&layer.w);
            e.put_f64_slice(&layer.b);
        }
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        // Parameters plus the activation buffers a forward pass holds.
        let activations = self.config.input_len * (1 + self.config.conv1_filters * 2)
            + (self.config.input_len / 2) * self.config.conv2_filters * 2
            + self.config.hidden * 2
            + CLASSES * 2;
        ((self.parameter_count() + activations) * std::mem::size_of::<f64>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CnnConfig {
        CnnConfig {
            input_len: 8,
            conv1_filters: 2,
            conv2_filters: 3,
            kernel: 3,
            dilation2: 2,
            hidden: 4,
            epochs: 30,
            batch_size: 16,
            learning_rate: 5e-3,
        }
    }

    /// The profiling hook agrees with `predict` and reports a fixed,
    /// input-independent MAC count (the architecture is static).
    #[test]
    fn predict_with_work_reports_architecture_macs() {
        let mut rng = SimRng::seed_from(42);
        let config = tiny_config();
        let net = Cnn::init(config, &mut rng);
        let a: Vec<f64> = (0..config.input_len).map(|_| rng.standard_normal()).collect();
        let b: Vec<f64> = (0..config.input_len).map(|_| rng.standard_normal()).collect();
        let (class_a, work_a) = net.predict_with_work(&a);
        let (class_b, work_b) = net.predict_with_work(&b);
        assert_eq!(class_a, net.predict(&a));
        assert_eq!(class_b, net.predict(&b));
        assert!(work_a > 0);
        assert_eq!(work_a, work_b, "MACs depend only on the architecture");
    }

    /// Numerical gradient check on a tiny network: analytic backprop
    /// must match central finite differences.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SimRng::seed_from(1);
        let config = tiny_config();
        let mut net = Cnn::init(config, &mut rng);
        let x: Vec<f64> = (0..config.input_len).map(|_| rng.standard_normal()).collect();
        let label = 1usize;

        let mut grads = Grads::zero_like(&net);
        let cache = net.forward(&x);
        net.backward(&cache, label, &mut grads);

        let eps = 1e-5;
        // Check a sample of parameters in every group.
        let checks: Vec<(&str, usize)> = vec![
            ("c1w", 0),
            ("c1w", 3),
            ("c1b", 1),
            ("c2w", 5),
            ("c2b", 2),
            ("f1w", 7),
            ("f1b", 0),
            ("f2w", 3),
            ("f2b", 1),
        ];
        for (group, idx) in checks {
            let analytic = match group {
                "c1w" => grads.c1w[idx],
                "c1b" => grads.c1b[idx],
                "c2w" => grads.c2w[idx],
                "c2b" => grads.c2b[idx],
                "f1w" => grads.f1w[idx],
                "f1b" => grads.f1b[idx],
                "f2w" => grads.f2w[idx],
                _ => grads.f2b[idx],
            };
            let param: &mut f64 = match group {
                "c1w" => &mut net.conv1.w[idx],
                "c1b" => &mut net.conv1.b[idx],
                "c2w" => &mut net.conv2.w[idx],
                "c2b" => &mut net.conv2.b[idx],
                "f1w" => &mut net.fc1.w[idx],
                "f1b" => &mut net.fc1.b[idx],
                "f2w" => &mut net.fc2.w[idx],
                _ => &mut net.fc2.b[idx],
            };
            let original = *param;
            *param = original + eps;
            let plus = net.loss(&x, label);
            let param: &mut f64 = match group {
                "c1w" => &mut net.conv1.w[idx],
                "c1b" => &mut net.conv1.b[idx],
                "c2w" => &mut net.conv2.w[idx],
                "c2b" => &mut net.conv2.b[idx],
                "f1w" => &mut net.fc1.w[idx],
                "f1b" => &mut net.fc1.b[idx],
                "f2w" => &mut net.fc2.w[idx],
                _ => &mut net.fc2.b[idx],
            };
            *param = original - eps;
            let minus = net.loss(&x, label);
            let param: &mut f64 = match group {
                "c1w" => &mut net.conv1.w[idx],
                "c1b" => &mut net.conv1.b[idx],
                "c2w" => &mut net.conv2.w[idx],
                "c2b" => &mut net.conv2.b[idx],
                "f1w" => &mut net.fc1.w[idx],
                "f1b" => &mut net.fc1.b[idx],
                "f2w" => &mut net.fc2.w[idx],
                _ => &mut net.fc2.b[idx],
            };
            *param = original;
            let numeric = (plus - minus) / (2.0 * eps);
            let denom = analytic.abs().max(numeric.abs()).max(1e-8);
            assert!(
                (analytic - numeric).abs() / denom < 1e-4,
                "{group}[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    fn separable_data(n: usize, dims: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { -1.0 } else { 1.0 };
            x.push((0..dims).map(|_| base + 0.5 * rng.standard_normal()).collect());
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn cnn_learns_a_separable_problem() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = separable_data(300, 8, &mut rng);
        let net = Cnn::fit(&x, &y, &tiny_config(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| net.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "train acc {correct}/300");
    }

    /// The im2col scratch path must reproduce the nested-`Vec` reference
    /// forward pass bit for bit — on freshly initialised and on trained
    /// networks, across seeds, including the zero-padded borders.
    #[test]
    fn forward_scratch_matches_reference_bits_across_seeds() {
        let bits = |probs: &[f64]| probs.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        for seed in 31..36 {
            let mut rng = SimRng::seed_from(seed);
            let config = tiny_config();
            let init = Cnn::init(config, &mut rng);
            let (x, y) = separable_data(80, config.input_len, &mut rng);
            let trained =
                Cnn::fit(&x, &y, &CnnConfig { epochs: 3, ..config }, &mut rng).unwrap();
            let mut scratch = CnnScratch::default();
            for net in [&init, &trained] {
                for xi in &x {
                    let reference = net.forward(xi).probs;
                    net.forward_scratch(xi, &mut scratch);
                    assert_eq!(
                        bits(&reference),
                        bits(&scratch.probs),
                        "seed {seed}: scratch path diverged from reference"
                    );
                    assert_eq!(net.predict(xi), usize::from(reference[1] > reference[0]));
                }
            }
        }
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let mut rng = SimRng::seed_from(3);
        let net = Cnn::init(tiny_config(), &mut rng);
        let x: Vec<f64> = (0..8).map(|_| rng.standard_normal()).collect();
        let probs = net.predict_proba(&x);
        assert_eq!(probs.len(), 2);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut rng = SimRng::seed_from(4);
        let (x, y) = separable_data(100, 8, &mut rng);
        let config = CnnConfig { epochs: 3, ..tiny_config() };
        let net = Cnn::fit(&x, &y, &config, &mut rng).unwrap();
        let back = Cnn::decode(&net.encode()).unwrap();
        for xi in &x {
            assert_eq!(net.predict(xi), back.predict(xi));
            let a = net.predict_proba(xi);
            let b = back.predict_proba(xi);
            assert!((a[0] - b[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let mut rng = SimRng::seed_from(5);
        let net = Cnn::init(tiny_config(), &mut rng);
        // conv1: 2*1*3 + 2; conv2: 3*2*3 + 3; fc1: (3*2)*4 + 4; fc2: 4*2 + 2
        assert_eq!(net.parameter_count(), (6 + 2) + (18 + 3) + (24 + 4) + (8 + 2));
    }

    #[test]
    fn training_rejects_bad_input() {
        let mut rng = SimRng::seed_from(6);
        assert_eq!(
            Cnn::fit(&[], &[], &tiny_config(), &mut rng),
            Err(TrainError::EmptyDataset)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SimRng::seed_from(7);
            let (x, y) = separable_data(60, 8, &mut rng);
            let config = CnnConfig { epochs: 2, ..tiny_config() };
            Cnn::fit(&x, &y, &config, &mut rng).unwrap().encode()
        };
        assert_eq!(run(), run());
    }

    /// Batches larger than one micro-batch must fold their partial
    /// gradients identically at any thread budget.
    #[test]
    fn training_is_thread_count_invariant() {
        let run = |threads: usize| {
            crate::par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(8);
                let (x, y) = separable_data(200, 8, &mut rng);
                let config = CnnConfig { epochs: 2, batch_size: 64, ..tiny_config() };
                Cnn::fit(&x, &y, &config, &mut rng).unwrap().encode()
            })
        };
        assert_eq!(run(1), run(4));
    }
}
