//! Shared neural-network primitives: dense layers, activations and the
//! Adam optimiser, used by the CNN ([`crate::cnn`]) and the autoencoder
//! ([`crate::autoencoder`]).

use netsim::rng::SimRng;

/// A fully connected layer with He-initialised weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Input arity.
    pub input: usize,
    /// Output arity.
    pub output: usize,
    /// `[output][input]` flattened weights.
    pub w: Vec<f64>,
    /// Per-output biases.
    pub b: Vec<f64>,
}

impl Dense {
    /// Randomly initialised layer.
    pub fn new(input: usize, output: usize, rng: &mut SimRng) -> Self {
        let scale = (2.0 / input as f64).sqrt();
        let w = (0..input * output).map(|_| scale * rng.standard_normal()).collect();
        Dense { input, output, w, b: vec![0.0; output] }
    }

    /// `y = W x + b`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.output);
        self.forward_into(x, &mut out);
        out
    }

    /// `y = W x + b` into a caller-owned buffer (cleared and refilled,
    /// reusing capacity). Accumulation order is identical to
    /// [`Dense::forward`] — the two produce bit-identical outputs.
    pub fn forward_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.output).map(|o| {
            self.b[o]
                + self.w[o * self.input..(o + 1) * self.input]
                    .iter()
                    .zip(x)
                    .map(|(w, v)| w * v)
                    .sum::<f64>()
        }));
    }

    /// Backpropagates `grad_out`, accumulating parameter gradients into
    /// `gw`/`gb` and returning the gradient w.r.t. the input.
    pub fn backward(&self, x: &[f64], grad_out: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.input];
        for o in 0..self.output {
            let g = grad_out[o];
            gb[o] += g;
            for i in 0..self.input {
                gw[o * self.input + i] += g * x[i];
                grad_in[i] += g * self.w[o * self.input + i];
            }
        }
        grad_in
    }
}

/// In-place ReLU.
pub fn relu(x: &mut [f64]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Zeroes gradient entries whose pre-activation was non-positive.
pub fn relu_grad(pre: &[f64], grad: &mut [f64]) {
    for (g, &z) in grad.iter_mut().zip(pre) {
        if z <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(logits.len());
    softmax_into(logits, &mut out);
    out
}

/// Numerically stable softmax into a caller-owned buffer (cleared and
/// refilled, reusing capacity). Operation order matches [`softmax`]
/// exactly, so the two produce bit-identical distributions.
pub fn softmax_into(logits: &[f64], out: &mut Vec<f64>) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(logits.iter().map(|&l| (l - max).exp()));
    let sum: f64 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= sum;
    }
}

/// Per-parameter-group Adam state.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Zeroed state for `len` parameters.
    pub fn new(len: usize) -> Self {
        Adam { m: vec![0.0; len], v: vec![0.0; len] }
    }

    /// One Adam update (`t` is the 1-based step count).
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let t = t as i32;
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let m_hat = self.m[i] / (1.0 - B1.powi(t));
            let v_hat = self.v[i] / (1.0 - B2.powi(t));
            params[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_is_affine() {
        let layer = Dense { input: 2, output: 1, w: vec![2.0, -1.0], b: vec![0.5] };
        assert_eq!(layer.forward(&[3.0, 4.0]), vec![2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn dense_backward_matches_finite_difference() {
        let mut rng = SimRng::seed_from(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = [0.5, -1.0, 2.0];
        // Loss = sum of outputs; grad_out = 1s.
        let mut gw = vec![0.0; layer.w.len()];
        let mut gb = vec![0.0; layer.b.len()];
        let grad_in = layer.backward(&x, &[1.0, 1.0], &mut gw, &mut gb);
        let eps = 1e-6;
        for i in 0..layer.w.len() {
            let orig = layer.w[i];
            layer.w[i] = orig + eps;
            let plus: f64 = layer.forward(&x).iter().sum();
            layer.w[i] = orig - eps;
            let minus: f64 = layer.forward(&x).iter().sum();
            layer.w[i] = orig;
            assert!((gw[i] - (plus - minus) / (2.0 * eps)).abs() < 1e-6);
        }
        // dL/dx = sum over outputs of w[o][i].
        for i in 0..3 {
            let expected: f64 = (0..2).map(|o| layer.w[o * 3 + i]).sum();
            assert!((grad_in[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn adam_reduces_a_quadratic() {
        // Minimise f(w) = (w - 3)^2 from w = 0.
        let mut w = vec![0.0];
        let mut adam = Adam::new(1);
        for t in 1..=500 {
            let grad = vec![2.0 * (w[0] - 3.0)];
            adam.step(&mut w, &grad, 0.05, t);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }
}
