//! `ArcSwap`-style atomic value slot for model hot-swap.
//!
//! A [`SwapHandle`] holds an `Arc<Versioned<T>>` behind a vendored
//! poison-free `RwLock`. Readers [`load`](SwapHandle::load) a cheap
//! `Arc` clone and keep using it for as long as they like — a window
//! classified against a loaded snapshot keeps that exact model even if
//! a writer swaps mid-flight, which is how the serving layer guarantees
//! every window sees exactly one model generation. Writers
//! [`swap`](SwapHandle::swap) in a new value; the generation counter is
//! bumped monotonically and travels with the payload so detections can
//! stamp the generation they were scored by.
//!
//! Determinism note: the handle itself is passive. *When* a swap
//! happens is decided by the caller on the sim clock (window-boundary
//! only in `ids::serving`), so the same seed produces the same
//! generation sequence regardless of wall-clock scheduling.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::classifier::Classifier;

/// A payload tagged with the monotonically increasing generation it was
/// installed under.
#[derive(Debug)]
pub struct Versioned<T> {
    /// Swap counter: 0 for the initial value, +1 per swap.
    pub generation: u64,
    /// The installed payload.
    pub value: T,
}

/// A shareable slot whose value can be replaced atomically.
///
/// Cloning the handle shares the slot: a swap through one clone is
/// observed by loads through every other clone.
#[derive(Debug)]
pub struct SwapHandle<T> {
    slot: Arc<RwLock<Arc<Versioned<T>>>>,
}

impl<T> Clone for SwapHandle<T> {
    fn clone(&self) -> Self {
        SwapHandle { slot: Arc::clone(&self.slot) }
    }
}

impl<T> SwapHandle<T> {
    /// Creates a slot holding `value` at generation 0.
    pub fn new(value: T) -> Self {
        SwapHandle {
            slot: Arc::new(RwLock::new(Arc::new(Versioned { generation: 0, value }))),
        }
    }

    /// Loads the current snapshot. The returned `Arc` stays valid (and
    /// keeps its generation) across later swaps.
    pub fn load(&self) -> Arc<Versioned<T>> {
        Arc::clone(&self.slot.read())
    }

    /// The current generation without retaining the payload.
    pub fn generation(&self) -> u64 {
        self.slot.read().generation
    }

    /// Atomically installs `value`, bumping the generation. Returns the
    /// new generation. In-flight snapshots from [`load`](Self::load)
    /// are unaffected.
    pub fn swap(&self, value: T) -> u64 {
        let mut slot = self.slot.write();
        let generation = slot.generation + 1;
        *slot = Arc::new(Versioned { generation, value });
        generation
    }
}

/// The serving layer's model slot: any object-safe classifier behind a
/// swap handle.
pub type ModelHandle = SwapHandle<Box<dyn Classifier>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{KMeansConfig, KMeansDetector};
    use crate::matrix::FeatureMatrix;
    use netsim::rng::SimRng;

    #[test]
    fn load_keeps_generation_across_swap() {
        let handle = SwapHandle::new(10u32);
        let before = handle.load();
        assert_eq!(before.generation, 0);
        assert_eq!(handle.swap(20), 1);
        assert_eq!(handle.swap(30), 2);
        // The in-flight snapshot still sees the old generation/payload.
        assert_eq!(before.generation, 0);
        assert_eq!(before.value, 10);
        let after = handle.load();
        assert_eq!(after.generation, 2);
        assert_eq!(after.value, 30);
    }

    #[test]
    fn clones_share_the_slot() {
        let a = SwapHandle::new(1u8);
        let b = a.clone();
        b.swap(2);
        assert_eq!(a.load().value, 2);
        assert_eq!(a.generation(), 1);
    }

    #[test]
    fn swaps_are_visible_across_threads() {
        let handle = SwapHandle::new(0u64);
        let writer = handle.clone();
        std::thread::spawn(move || {
            writer.swap(7);
        })
        .join()
        .unwrap();
        assert_eq!(handle.load().value, 7);
        assert_eq!(handle.generation(), 1);
    }

    #[test]
    fn model_handle_boxes_classifiers() {
        let mut rows = FeatureMatrix::with_capacity(4, 2);
        for row in [[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]] {
            rows.push_row(&row);
        }
        let labels = [0usize, 0, 1, 1];
        let mut rng = SimRng::seed_from(7);
        let config = KMeansConfig { k_max: 2, ..KMeansConfig::default() };
        let detector = KMeansDetector::fit_view(rows.view(), &labels, &config, &mut rng)
            .expect("two classes");
        let handle: ModelHandle = SwapHandle::new(Box::new(detector));
        let snapshot = handle.load();
        assert_eq!(snapshot.generation, 0);
        assert_eq!(snapshot.value.predict(&[0.05, 0.0]), 0);
    }
}
