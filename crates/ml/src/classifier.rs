//! The common interface the IDS uses to drive any of the three models.

use crate::codec::DecodeError;
use crate::metrics::{ConfusionMatrix, MetricsReport};

/// A trained binary traffic classifier (0 = benign, 1 = malicious).
///
/// Object-safe so the IDS can hold `Box<dyn Classifier>` and swap models
/// at deployment time, the way the paper's IDS container selects one of
/// RF / K-Means / CNN "based on user needs".
pub trait Classifier {
    /// Human-readable model name ("RF", "K-Means", "CNN").
    fn name(&self) -> &'static str;

    /// Classifies one feature vector.
    fn predict(&self, features: &[f64]) -> usize;

    /// Classifies a batch (default: row-by-row).
    fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<usize> {
        features.iter().map(|row| self.predict(row)).collect()
    }

    /// Serialises the model (the PKL-file analogue). The blob length is
    /// the paper's "Model Size" metric.
    fn encode(&self) -> Vec<u8>;

    /// Approximate resident memory of the model's parameters and
    /// buffers, in bytes (the paper's "Memory" metric).
    fn memory_bytes(&self) -> u64;
}

/// Evaluates a classifier on labelled data, producing the paper's
/// train-time metric row.
pub fn evaluate(model: &dyn Classifier, x: &[Vec<f64>], y: &[usize]) -> MetricsReport {
    let predictions = model.predict_batch(x);
    let m = ConfusionMatrix::from_predictions(y, &predictions);
    MetricsReport::from_confusion(&m)
}

/// Error training a model on unusable data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training samples.
    EmptyDataset,
    /// Rows have inconsistent arity.
    RaggedFeatures,
    /// Labels and features differ in length.
    LabelMismatch,
    /// Training needs both classes present.
    SingleClass,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TrainError::EmptyDataset => "empty training dataset",
            TrainError::RaggedFeatures => "ragged feature matrix",
            TrainError::LabelMismatch => "labels and features differ in length",
            TrainError::SingleClass => "training data contains a single class",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TrainError {}

/// Validates a supervised training set, returning its feature arity.
pub fn validate_training_set(x: &[Vec<f64>], y: &[usize]) -> Result<usize, TrainError> {
    if x.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if x.len() != y.len() {
        return Err(TrainError::LabelMismatch);
    }
    let dims = x[0].len();
    if x.iter().any(|row| row.len() != dims) {
        return Err(TrainError::RaggedFeatures);
    }
    if y.iter().all(|&l| l == y[0]) {
        return Err(TrainError::SingleClass);
    }
    Ok(dims)
}

/// Error loading a serialised model.
pub type LoadError = DecodeError;

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(usize);
    impl Classifier for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn predict(&self, _features: &[f64]) -> usize {
            self.0
        }
        fn encode(&self) -> Vec<u8> {
            vec![self.0 as u8]
        }
        fn memory_bytes(&self) -> u64 {
            1
        }
    }

    #[test]
    fn evaluate_scores_a_constant_model() {
        let x = vec![vec![0.0]; 4];
        let y = vec![1, 1, 0, 0];
        let report = evaluate(&Always(1), &x, &y);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!((report.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn training_set_validation() {
        assert_eq!(validate_training_set(&[], &[]), Err(TrainError::EmptyDataset));
        assert_eq!(
            validate_training_set(&[vec![1.0]], &[0, 1]),
            Err(TrainError::LabelMismatch)
        );
        assert_eq!(
            validate_training_set(&[vec![1.0], vec![1.0, 2.0]], &[0, 1]),
            Err(TrainError::RaggedFeatures)
        );
        assert_eq!(
            validate_training_set(&[vec![1.0], vec![2.0]], &[1, 1]),
            Err(TrainError::SingleClass)
        );
        assert_eq!(validate_training_set(&[vec![1.0], vec![2.0]], &[0, 1]), Ok(1));
    }
}
