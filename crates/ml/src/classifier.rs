//! The common interface the IDS uses to drive any of the three models.

use crate::codec::DecodeError;
use crate::matrix::MatrixView;
use crate::metrics::{ConfusionMatrix, MetricsReport};
use crate::par;

/// A contiguous run of matrix rows belonging to one logical unit (a
/// window, a tenant) inside a coalesced batch. The serving layer stacks
/// every tenant's ready windows into one [`crate::matrix::FeatureMatrix`]
/// and classifies them in a single
/// [`Classifier::predict_batch_spans_into`] pass; the spans are what let
/// per-tenant budgets, degradation ladders and per-window work
/// attribution survive the coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSpan {
    /// First row of the span.
    pub start: usize,
    /// Number of rows in the span.
    pub len: usize,
}

impl RowSpan {
    /// The row range the span covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// A trained binary traffic classifier (0 = benign, 1 = malicious).
///
/// Object-safe so the IDS can hold `Box<dyn Classifier>` and swap models
/// at deployment time, the way the paper's IDS container selects one of
/// RF / K-Means / CNN "based on user needs". `Send + Sync` is a
/// supertrait so batch prediction can fan rows out across threads
/// (models are plain parameter data; none hold interior mutability).
pub trait Classifier: Send + Sync {
    /// Human-readable model name ("RF", "K-Means", "CNN").
    fn name(&self) -> &'static str;

    /// Classifies one feature vector.
    fn predict(&self, features: &[f64]) -> usize;

    /// Classifies one feature vector and reports the *deterministic*
    /// work the prediction performed, in model-specific units (RF: tree
    /// nodes visited; CNN: multiply-accumulates; K-Means: distance
    /// multiply-adds). Work units are a pure function of the model and
    /// the input — never wall-clock time — so telemetry built on them
    /// stays byte-identical across same-seed runs and thread counts.
    ///
    /// The default reports zero work for models without an instrumented
    /// hot path.
    fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
        (self.predict(features), 0)
    }

    /// Classifies every row visible through a flat matrix view (default:
    /// rows in parallel, results in row order — identical output at any
    /// thread count). All batch feature data travels as
    /// [`crate::matrix::FeatureMatrix`] rows; there is no nested-`Vec`
    /// batch path.
    fn predict_batch(&self, view: MatrixView<'_>) -> Vec<usize> {
        par::par_map_indexed(view.n_rows(), |i| self.predict(view.row(i)))
    }

    /// Classifies every row of a view and totals the deterministic work
    /// units (see [`Classifier::predict_with_work`]). Rows run in
    /// parallel; integer summation makes the total independent of
    /// completion order, so the figure is thread-count invariant.
    fn predict_batch_with_work(&self, view: MatrixView<'_>) -> (Vec<usize>, u64) {
        let results =
            par::par_map_indexed(view.n_rows(), |i| self.predict_with_work(view.row(i)));
        let work = results.iter().map(|&(_, w)| w).sum();
        (results.into_iter().map(|(class, _)| class).collect(), work)
    }

    /// Serial, allocation-free batch prediction into a caller-owned
    /// buffer: `out` is cleared and refilled, reusing its capacity. This
    /// is the real-time IDS hot path — after warm-up a steady-state
    /// window classifies without touching the allocator. Returns the
    /// summed deterministic work units; row order (and therefore the
    /// work total) matches [`Classifier::predict_batch_with_work`].
    fn predict_batch_into(&self, view: MatrixView<'_>, out: &mut Vec<usize>) -> u64 {
        out.clear();
        out.reserve(view.n_rows());
        let mut work = 0u64;
        for i in 0..view.n_rows() {
            let (class, w) = self.predict_with_work(view.row(i));
            out.push(class);
            work += w;
        }
        work
    }

    /// Classifies the rows of several disjoint, in-order [`RowSpan`]s in
    /// one pass: `out` receives every span's predictions back to back
    /// (span order), `span_work` receives one deterministic work total
    /// per span, and the return value is the grand total. Per-row
    /// predictions and work are identical to
    /// [`Classifier::predict_batch_into`] over the same rows — batching
    /// across spans must never change any output — which is what lets
    /// the serving layer coalesce all tenants' windows into one matrix
    /// pass while keeping per-window work attribution exact.
    fn predict_batch_spans_into(
        &self,
        view: MatrixView<'_>,
        spans: &[RowSpan],
        out: &mut Vec<usize>,
        span_work: &mut Vec<u64>,
    ) -> u64 {
        out.clear();
        out.reserve(spans.iter().map(|s| s.len).sum());
        span_work.clear();
        span_work.reserve(spans.len());
        let mut total = 0u64;
        for span in spans {
            let mut work = 0u64;
            for i in span.range() {
                let (class, w) = self.predict_with_work(view.row(i));
                out.push(class);
                work += w;
            }
            span_work.push(work);
            total += work;
        }
        total
    }

    /// Serialises the model (the PKL-file analogue). The blob length is
    /// the paper's "Model Size" metric.
    fn encode(&self) -> Vec<u8>;

    /// Approximate resident memory of the model's parameters and
    /// buffers, in bytes (the paper's "Memory" metric).
    fn memory_bytes(&self) -> u64;

    /// Clones the model behind the trait object, so one training phase
    /// can feed several independent deployments (e.g. a swarm of
    /// buggify runs replaying the same trained IDS under many seeds).
    fn clone_box(&self) -> Box<dyn Classifier>;
}

impl Clone for Box<dyn Classifier> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Evaluates a classifier on the labelled rows of a matrix view,
/// producing the paper's train-time metric row.
pub fn evaluate_view(model: &dyn Classifier, view: MatrixView<'_>, y: &[usize]) -> MetricsReport {
    let predictions = model.predict_batch(view);
    let m = ConfusionMatrix::from_predictions(y, &predictions);
    MetricsReport::from_confusion(&m)
}

/// Error training a model on unusable data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training samples.
    EmptyDataset,
    /// Rows have inconsistent arity.
    RaggedFeatures,
    /// Labels and features differ in length.
    LabelMismatch,
    /// Training needs both classes present.
    SingleClass,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TrainError::EmptyDataset => "empty training dataset",
            TrainError::RaggedFeatures => "ragged feature matrix",
            TrainError::LabelMismatch => "labels and features differ in length",
            TrainError::SingleClass => "training data contains a single class",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TrainError {}

/// Validates a supervised training set, returning its feature arity.
pub fn validate_training_set(x: &[Vec<f64>], y: &[usize]) -> Result<usize, TrainError> {
    if x.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if x.len() != y.len() {
        return Err(TrainError::LabelMismatch);
    }
    let dims = x[0].len();
    if x.iter().any(|row| row.len() != dims) {
        return Err(TrainError::RaggedFeatures);
    }
    if y.iter().all(|&l| l == y[0]) {
        return Err(TrainError::SingleClass);
    }
    Ok(dims)
}

/// Validates a supervised training view, returning its feature arity
/// (views are rectangular by construction, so ragged rows cannot occur).
pub fn validate_matrix(view: MatrixView<'_>, y: &[usize]) -> Result<usize, TrainError> {
    if view.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if view.n_rows() != y.len() {
        return Err(TrainError::LabelMismatch);
    }
    if y.iter().all(|&l| l == y[0]) {
        return Err(TrainError::SingleClass);
    }
    Ok(view.n_cols())
}

/// Error loading a serialised model.
pub type LoadError = DecodeError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::FeatureMatrix;

    struct Always(usize);
    impl Classifier for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn predict(&self, _features: &[f64]) -> usize {
            self.0
        }
        fn encode(&self) -> Vec<u8> {
            vec![self.0 as u8]
        }
        fn memory_bytes(&self) -> u64 {
            1
        }
        fn clone_box(&self) -> Box<dyn Classifier> {
            Box::new(Always(self.0))
        }
    }

    #[test]
    fn evaluate_scores_a_constant_model() {
        let x = vec![vec![0.0]; 4];
        let y = vec![1, 1, 0, 0];
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let report = evaluate_view(&Always(1), m.view(), &y);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!((report.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_view_covers_subsets() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 0, 1, 0];
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let full = evaluate_view(&Always(1), m.view(), &y);
        assert!((full.accuracy - 0.5).abs() < 1e-12);
        let subset = vec![0, 2];
        let sub = evaluate_view(&Always(1), m.subset(&subset), &[1, 1]);
        assert!((sub.accuracy - 1.0).abs() < 1e-12);
    }

    /// The three batch entry points agree row-for-row, and the into-
    /// variant reuses its output buffer without reallocating.
    #[test]
    fn batch_entry_points_agree() {
        let x = vec![vec![0.5], vec![1.5], vec![2.5]];
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let model = Always(1);
        let batch = model.predict_batch(m.view());
        let (with_work, work) = model.predict_batch_with_work(m.view());
        let mut into = Vec::with_capacity(8);
        let into_work = model.predict_batch_into(m.view(), &mut into);
        assert_eq!(batch, vec![1, 1, 1]);
        assert_eq!(batch, with_work);
        assert_eq!(batch, into);
        assert_eq!(work, into_work);
        let ptr = into.as_ptr();
        let _ = model.predict_batch_into(m.view(), &mut into);
        assert_eq!(ptr, into.as_ptr(), "into-variant must reuse its buffer");
    }

    /// Wraps `Always` with work proportional to the row's first value,
    /// so per-span work attribution is observable.
    struct Weighted;
    impl Classifier for Weighted {
        fn name(&self) -> &'static str {
            "weighted"
        }
        fn predict(&self, features: &[f64]) -> usize {
            usize::from(features[0] > 1.0)
        }
        fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
            (self.predict(features), features[0] as u64)
        }
        fn encode(&self) -> Vec<u8> {
            Vec::new()
        }
        fn memory_bytes(&self) -> u64 {
            0
        }
        fn clone_box(&self) -> Box<dyn Classifier> {
            Box::new(Weighted)
        }
    }

    /// Spans tiling the matrix must reproduce `predict_batch_into`
    /// exactly — same predictions, same total work — while splitting the
    /// work by span.
    #[test]
    fn span_batch_matches_plain_batch() {
        let x: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64]).collect();
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let model = Weighted;
        let mut plain = Vec::new();
        let plain_work = model.predict_batch_into(m.view(), &mut plain);
        let spans =
            [RowSpan { start: 0, len: 3 }, RowSpan { start: 3, len: 0 }, RowSpan { start: 3, len: 4 }];
        let mut spanned = Vec::new();
        let mut span_work = Vec::new();
        let total = model.predict_batch_spans_into(m.view(), &spans, &mut spanned, &mut span_work);
        assert_eq!(spanned, plain);
        assert_eq!(total, plain_work);
        assert_eq!(span_work, vec![0 + 1 + 2, 0, 3 + 4 + 5 + 6]);
    }

    #[test]
    fn training_set_validation() {
        assert_eq!(validate_training_set(&[], &[]), Err(TrainError::EmptyDataset));
        assert_eq!(
            validate_training_set(&[vec![1.0]], &[0, 1]),
            Err(TrainError::LabelMismatch)
        );
        assert_eq!(
            validate_training_set(&[vec![1.0], vec![1.0, 2.0]], &[0, 1]),
            Err(TrainError::RaggedFeatures)
        );
        assert_eq!(
            validate_training_set(&[vec![1.0], vec![2.0]], &[1, 1]),
            Err(TrainError::SingleClass)
        );
        assert_eq!(validate_training_set(&[vec![1.0], vec![2.0]], &[0, 1]), Ok(1));
    }

    #[test]
    fn matrix_validation_mirrors_row_validation() {
        let m = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(validate_matrix(m.view(), &[0]), Err(TrainError::LabelMismatch));
        assert_eq!(validate_matrix(m.view(), &[1, 1]), Err(TrainError::SingleClass));
        assert_eq!(validate_matrix(m.view(), &[0, 1]), Ok(1));
        let empty: Vec<usize> = Vec::new();
        assert_eq!(validate_matrix(m.subset(&empty), &[]), Err(TrainError::EmptyDataset));
    }
}
