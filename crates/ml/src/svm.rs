//! A linear Support Vector Machine — the first of the additional models
//! the paper's §V names for its extended investigation ("e.g., Support
//! Vector Machine (SVM), Isolation Forest (IF), Variational Autoencoder
//! (VAE)").
//!
//! Trained with the Pegasos primal sub-gradient method: stochastic
//! updates on the hinge loss with L2 regularisation and the classic
//! `1/(λ t)` step size.

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{validate_training_set, Classifier, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};

const SVM_MAGIC: u32 = 0x73766d31; // "svm1"

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// L2 regularisation strength λ.
    pub lambda: f64,
    /// Passes over the training set.
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig { lambda: 1e-4, epochs: 10 }
    }
}

/// A trained linear SVM (binary: 0 = benign, 1 = malicious).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains on the rows of a matrix view (materialises the rows; the
    /// Pegasos loop itself is inherently sequential).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: crate::matrix::MatrixView<'_>,
        y: &[usize],
        config: &SvmConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        LinearSvm::fit(&view.to_rows(), y, config, rng)
    }

    /// Trains with Pegasos sub-gradient descent.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &SvmConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let dims = validate_training_set(x, y)?;
        let mut weights = vec![0.0; dims];
        let mut bias = 0.0;
        let lambda = config.lambda.max(1e-12);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut t = 0usize;
        for _ in 0..config.epochs.max(1) {
            rng.shuffle(&mut order);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let label = if y[i] == 1 { 1.0 } else { -1.0 };
                let margin = label * (dot(&weights, &x[i]) + bias);
                // w <- (1 - eta*lambda) w  [+ eta*y*x on margin violation]
                let shrink = 1.0 - eta * lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, &v) in weights.iter_mut().zip(&x[i]) {
                        *w += eta * label * v;
                    }
                    bias += eta * label;
                }
            }
        }
        Ok(LinearSvm { weights, bias })
    }

    /// The signed decision value `w·x + b`.
    pub fn decision(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features) + self.bias
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Decodes a model from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(SVM_MAGIC)?;
        let weights = d.get_f64_slice()?;
        let bias = d.get_f64()?;
        Ok(LinearSvm { weights, bias })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn predict(&self, features: &[f64]) -> usize {
        usize::from(self.decision(features) >= 0.0)
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(SVM_MAGIC);
        e.put_f64_slice(&self.weights);
        e.put_f64(self.bias);
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        ((self.weights.len() + 1) * std::mem::size_of::<f64>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![center + rng.standard_normal(), rng.standard_normal()]);
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn svm_separates_blobs() {
        let mut rng = SimRng::seed_from(1);
        let (x, y) = blobs(400, &mut rng);
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| svm.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "acc {correct}/400");
        // The separating direction is along feature 0.
        assert!(svm.weights()[0].abs() > svm.weights()[1].abs());
    }

    #[test]
    fn codec_roundtrip() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = blobs(100, &mut rng);
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default(), &mut rng).unwrap();
        let back = LinearSvm::decode(&svm.encode()).unwrap();
        assert_eq!(back, svm);
    }

    #[test]
    fn svm_model_is_tiny() {
        let mut rng = SimRng::seed_from(3);
        let (x, y) = blobs(100, &mut rng);
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default(), &mut rng).unwrap();
        assert!(svm.encode().len() < 256);
        assert_eq!(svm.memory_bytes(), 3 * 8);
    }

    #[test]
    fn rejects_single_class() {
        let mut rng = SimRng::seed_from(4);
        let x = vec![vec![1.0], vec![2.0]];
        assert_eq!(
            LinearSvm::fit(&x, &[0, 0], &SvmConfig::default(), &mut rng),
            Err(TrainError::SingleClass)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SimRng::seed_from(5);
            let (x, y) = blobs(100, &mut rng);
            LinearSvm::fit(&x, &y, &SvmConfig::default(), &mut rng).unwrap().encode()
        };
        assert_eq!(run(), run());
    }
}
