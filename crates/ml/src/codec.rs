//! Compact binary model serialisation — the PKL-file analogue.
//!
//! The paper persists each trained model to a pickle file and reports
//! "Model Size (Kb)" as a sustainability metric. This module provides a
//! small, dependency-free binary codec; a model's size metric is the
//! length of its encoding.

use std::fmt;

/// Error decoding a model blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the field needed.
    UnexpectedEof,
    /// A magic/version marker did not match.
    BadMagic {
        /// What the decoder expected.
        expected: u32,
        /// What it found.
        found: u32,
    },
    /// A length or enum discriminant was out of range.
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => f.write_str("unexpected end of model blob"),
            DecodeError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:#x}, found {found:#x}")
            }
            DecodeError::Corrupt(what) => write!(f, "corrupt model blob: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A little-endian binary writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, values: &[usize]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_usize(v);
        }
    }

    /// Finishes and returns the blob.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A little-endian binary reader over a model blob.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a blob for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, DecodeError> {
        Ok(self.get_u64()? as usize)
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.get_usize()?;
        if n > self.buf.len() / 8 + 1 {
            return Err(DecodeError::Corrupt("f64 slice length"));
        }
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed `usize` slice.
    pub fn get_usize_slice(&mut self) -> Result<Vec<usize>, DecodeError> {
        let n = self.get_usize()?;
        if n > self.buf.len() / 8 + 1 {
            return Err(DecodeError::Corrupt("usize slice length"));
        }
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Verifies a magic marker.
    pub fn expect_magic(&mut self, expected: u32) -> Result<(), DecodeError> {
        let found = self.get_u32()?;
        if found != expected {
            return Err(DecodeError::BadMagic { expected, found });
        }
        Ok(())
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xdead_beef);
        e.put_u64(42);
        e.put_f64(std::f64::consts::PI);
        let blob = e.finish();
        let mut d = Decoder::new(&blob);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), 42);
        assert_eq!(d.get_f64().unwrap(), std::f64::consts::PI);
        assert!(d.is_exhausted());
    }

    #[test]
    fn slice_roundtrip() {
        let mut e = Encoder::new();
        e.put_f64_slice(&[1.0, -2.5, 3.75]);
        e.put_usize_slice(&[9, 8, 7]);
        let blob = e.finish();
        let mut d = Decoder::new(&blob);
        assert_eq!(d.get_f64_slice().unwrap(), vec![1.0, -2.5, 3.75]);
        assert_eq!(d.get_usize_slice().unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn eof_is_detected() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.get_u32(), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut e = Encoder::new();
        e.put_u32(0x1111);
        let blob = e.finish();
        let mut d = Decoder::new(&blob);
        assert!(matches!(d.expect_magic(0x2222), Err(DecodeError::BadMagic { .. })));
    }

    #[test]
    fn corrupt_lengths_are_rejected() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX); // absurd slice length
        let blob = e.finish();
        let mut d = Decoder::new(&blob);
        assert!(matches!(d.get_f64_slice(), Err(DecodeError::Corrupt(_))));
    }
}
