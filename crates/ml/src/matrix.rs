//! Flat, cache-friendly feature storage.
//!
//! The training and inference hot paths used to shuttle `Vec<Vec<f64>>`
//! around: one heap allocation per sample, pointer-chasing on every row
//! access, and full-row clones whenever a subset (train/holdout split,
//! bootstrap bag) was needed. [`FeatureMatrix`] stores all samples in one
//! contiguous row-major `Vec<f64>`, and [`MatrixView`] lets callers hand
//! out the whole matrix *or an index-based subset of its rows* without
//! copying a single feature value.

use crate::classifier::TrainError;

/// A dense row-major feature matrix: `n_rows × n_cols` values in one
/// contiguous allocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_cols: usize,
}

impl FeatureMatrix {
    /// An empty matrix whose rows will have `n_cols` features.
    pub fn new(n_cols: usize) -> Self {
        FeatureMatrix { data: Vec::new(), n_cols }
    }

    /// An empty matrix with storage reserved for `rows` rows.
    pub fn with_capacity(rows: usize, n_cols: usize) -> Self {
        FeatureMatrix { data: Vec::with_capacity(rows * n_cols), n_cols }
    }

    /// Copies a row-of-`Vec`s matrix into flat storage.
    ///
    /// # Errors
    ///
    /// [`TrainError::EmptyDataset`] when `rows` is empty,
    /// [`TrainError::RaggedFeatures`] when arities disagree.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, TrainError> {
        let first = rows.first().ok_or(TrainError::EmptyDataset)?;
        let n_cols = first.len();
        let mut m = FeatureMatrix::with_capacity(rows.len(), n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(TrainError::RaggedFeatures);
            }
            m.data.extend_from_slice(row);
        }
        Ok(m)
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "feature arity mismatch");
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.n_cols).unwrap_or(0)
    }

    /// Number of columns (features per row).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops all rows, keeping the allocation (for reuse as a per-window
    /// scratch buffer).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterates over rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols.max(1))
    }

    /// Iterates over rows mutably, in order.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_exact_mut(self.n_cols.max(1))
    }

    /// The backing storage, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A borrowing view of every row.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView { data: &self.data, n_cols: self.n_cols, indices: None }
    }

    /// A borrowing view of the rows named by `indices` (in that order,
    /// repeats allowed) — the zero-copy train/holdout split and bootstrap
    /// bag primitive.
    ///
    /// # Panics
    ///
    /// Row accesses through the view panic if an index is out of range.
    pub fn subset<'a>(&'a self, indices: &'a [usize]) -> MatrixView<'a> {
        MatrixView { data: &self.data, n_cols: self.n_cols, indices: Some(indices) }
    }
}

/// A borrowed, possibly row-subsetted window onto a [`FeatureMatrix`].
///
/// `Copy`, pointer-sized, and `Sync` — cheap to hand to every worker
/// thread of a parallel training loop.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    n_cols: usize,
    indices: Option<&'a [usize]>,
}

impl<'a> MatrixView<'a> {
    /// Number of rows visible through the view.
    pub fn n_rows(&self) -> usize {
        match self.indices {
            Some(ix) => ix.len(),
            None if self.n_cols == 0 => 0,
            None => self.data.len() / self.n_cols,
        }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Borrows the `i`-th visible row.
    ///
    /// # Panics
    ///
    /// Panics when `i` (or the subset index it maps to) is out of range.
    pub fn row(&self, i: usize) -> &'a [f64] {
        let physical = match self.indices {
            Some(ix) => ix[i],
            None => i,
        };
        &self.data[physical * self.n_cols..(physical + 1) * self.n_cols]
    }

    /// Iterates over the visible rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        (0..self.n_rows()).map(|i| self.row(i))
    }

    /// Materialises the view as owned rows (interop with the legacy
    /// `&[Vec<f64>]` APIs; copies).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }
}

/// Gathers `values[i]` for each subset index — the label-side companion
/// of [`FeatureMatrix::subset`].
pub fn gather<T: Copy>(values: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| values[i]).collect()
}

/// `out[m][n] = bias[m] + A[m] · B[n]` where `a` is row-major `m × k`,
/// `b` is row-major `n × k` (so `B` is multiplied *transposed*), and
/// `bias` has one entry per row of `A`. `out` is cleared and refilled
/// row-major `m × n`, reusing its capacity.
///
/// Each output cell is accumulated as `bias + w0*x0 + w1*x1 + …` in
/// index order — the same floating-point association as a scalar
/// convolution loop that starts from the bias — so with `A` = a conv
/// layer's `[out_ch][in_ch·kernel]` weights and `B` = im2col patches,
/// the result reproduces a direct convolution bit for bit, already in
/// channel-major `[out_ch][position]` layout.
///
/// # Panics
///
/// Panics when `a.len()`/`b.len()` are not multiples of `k`, or when
/// `bias.len()` disagrees with `a.len() / k`.
pub fn matmul_nt(a: &[f64], b: &[f64], k: usize, bias: &[f64], out: &mut Vec<f64>) {
    assert!(k > 0, "inner dimension must be positive");
    assert_eq!(a.len() % k, 0, "lhs not a multiple of k");
    assert_eq!(b.len() % k, 0, "rhs not a multiple of k");
    assert_eq!(bias.len(), a.len() / k, "bias arity mismatch");
    out.clear();
    out.reserve(bias.len() * (b.len() / k));
    for (row, &b0) in a.chunks_exact(k).zip(bias) {
        for col in b.chunks_exact(k) {
            let mut acc = b0;
            for (w, x) in row.iter().zip(col) {
                acc += w * x;
            }
            out.push(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_rows(&[
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![4.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn rows_roundtrip_through_flat_storage() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.view().to_rows(), sample().rows().map(<[f64]>::to_vec).collect::<Vec<_>>());
    }

    #[test]
    fn from_rows_rejects_bad_input() {
        assert_eq!(FeatureMatrix::from_rows(&[]), Err(TrainError::EmptyDataset));
        assert_eq!(
            FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(TrainError::RaggedFeatures)
        );
    }

    #[test]
    fn push_row_reuses_cleared_allocation() {
        let mut m = sample();
        let cap = m.data.capacity();
        m.clear();
        assert!(m.is_empty());
        m.push_row(&[9.0, 8.0]);
        assert_eq!(m.n_rows(), 1);
        assert_eq!(m.row(0), &[9.0, 8.0]);
        assert_eq!(m.data.capacity(), cap, "clear keeps the allocation");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_row_rejects_wrong_arity() {
        sample().push_row(&[1.0]);
    }

    #[test]
    fn subset_views_borrow_with_repeats() {
        let m = sample();
        let ix = vec![2, 0, 0];
        let v = m.subset(&ix);
        assert_eq!(v.n_rows(), 3);
        assert_eq!(v.row(0), &[4.0, 5.0]);
        assert_eq!(v.row(1), &[0.0, 1.0]);
        assert_eq!(v.row(2), &[0.0, 1.0]);
        assert_eq!(v.to_rows(), vec![vec![4.0, 5.0], vec![0.0, 1.0], vec![0.0, 1.0]]);
    }

    #[test]
    fn full_view_iterates_all_rows() {
        let m = sample();
        let v = m.view();
        assert_eq!(v.n_rows(), 3);
        assert_eq!(v.rows().count(), 3);
        assert_eq!(v.rows().last().unwrap(), &[4.0, 5.0]);
    }

    #[test]
    fn gather_maps_labels_through_indices() {
        assert_eq!(gather(&[10, 20, 30], &[2, 0]), vec![30, 10]);
    }

    #[test]
    fn matmul_nt_computes_biased_products_transposed() {
        // A = [[1, 2], [3, 4]] (2×2), B = [[5, 6], [7, 8], [9, 10]] (3×2).
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let bias = [0.5, -0.5];
        let mut out = Vec::new();
        matmul_nt(&a, &b, 2, &bias, &mut out);
        // out[m][n] = bias[m] + A[m]·B[n], row-major 2×3.
        assert_eq!(out, vec![17.5, 23.5, 29.5, 38.5, 52.5, 66.5]);
        let cap = out.capacity();
        matmul_nt(&a, &b, 2, &bias, &mut out);
        assert_eq!(out.capacity(), cap, "refill reuses the allocation");
    }

    #[test]
    fn mutable_rows_update_in_place() {
        let mut m = sample();
        m.row_mut(0)[1] = 7.0;
        for row in m.rows_mut() {
            row[0] += 1.0;
        }
        assert_eq!(m.row(0), &[1.0, 7.0]);
        assert_eq!(m.row(2), &[5.0, 5.0]);
    }
}
