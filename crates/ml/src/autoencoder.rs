//! A dense autoencoder anomaly detector — standing in for the
//! "Variational Autoencoder (VAE)" of the paper's §V extension list.
//!
//! The encoder compresses a feature vector through a bottleneck and the
//! decoder reconstructs it; trained on *benign traffic only*, the
//! reconstruction error is small for benign inputs and large for attack
//! traffic the network never saw. The decision threshold is calibrated
//! on the labelled training capture. (A deterministic autoencoder keeps
//! the reproduction dependency-free; the VAE's KL term changes the
//! latent geometry, not the detection principle.)

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{Classifier, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};
use crate::nn::{relu, relu_grad, Adam, Dense};

const AE_MAGIC: u32 = 0x61653131; // "ae11"

/// Autoencoder hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoencoderConfig {
    /// Bottleneck width.
    pub latent: usize,
    /// Hidden width of encoder/decoder.
    pub hidden: usize,
    /// Training epochs (on benign samples only).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        AutoencoderConfig { latent: 6, hidden: 16, epochs: 12, batch_size: 64, learning_rate: 1e-3 }
    }
}

/// A trained autoencoder anomaly detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Autoencoder {
    enc1: Dense,
    enc2: Dense,
    dec1: Dense,
    dec2: Dense,
    threshold: f64,
}

impl Autoencoder {
    /// Trains on the rows of a matrix view (materialises the rows; SGD
    /// over the benign subset is inherently sequential).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: crate::matrix::MatrixView<'_>,
        y: &[usize],
        config: &AutoencoderConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        Autoencoder::fit(&view.to_rows(), y, config, rng)
    }

    /// Trains on the benign subset of `(x, y)` and calibrates the error
    /// threshold on both classes.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &AutoencoderConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let dims = crate::classifier::validate_training_set(x, y)?;
        let benign: Vec<usize> = (0..x.len()).filter(|&i| y[i] == 0).collect();

        let mut net = Autoencoder {
            enc1: Dense::new(dims, config.hidden, rng),
            enc2: Dense::new(config.hidden, config.latent, rng),
            dec1: Dense::new(config.latent, config.hidden, rng),
            dec2: Dense::new(config.hidden, dims, rng),
            threshold: 0.0,
        };

        let mut adams = (
            Adam::new(net.enc1.w.len()),
            Adam::new(net.enc1.b.len()),
            Adam::new(net.enc2.w.len()),
            Adam::new(net.enc2.b.len()),
            Adam::new(net.dec1.w.len()),
            Adam::new(net.dec1.b.len()),
            Adam::new(net.dec2.w.len()),
            Adam::new(net.dec2.b.len()),
        );
        let mut order = benign.clone();
        let mut t = 0usize;
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut g = [
                    vec![0.0; net.enc1.w.len()],
                    vec![0.0; net.enc1.b.len()],
                    vec![0.0; net.enc2.w.len()],
                    vec![0.0; net.enc2.b.len()],
                    vec![0.0; net.dec1.w.len()],
                    vec![0.0; net.dec1.b.len()],
                    vec![0.0; net.dec2.w.len()],
                    vec![0.0; net.dec2.b.len()],
                ];
                for &i in batch {
                    net.accumulate_gradients(&x[i], &mut g);
                }
                let scale = 1.0 / batch.len() as f64;
                for grads in &mut g {
                    for v in grads.iter_mut() {
                        *v *= scale;
                    }
                }
                t += 1;
                let lr = config.learning_rate;
                adams.0.step(&mut net.enc1.w, &g[0], lr, t);
                adams.1.step(&mut net.enc1.b, &g[1], lr, t);
                adams.2.step(&mut net.enc2.w, &g[2], lr, t);
                adams.3.step(&mut net.enc2.b, &g[3], lr, t);
                adams.4.step(&mut net.dec1.w, &g[4], lr, t);
                adams.5.step(&mut net.dec1.b, &g[5], lr, t);
                adams.6.step(&mut net.dec2.w, &g[6], lr, t);
                adams.7.step(&mut net.dec2.b, &g[7], lr, t);
            }
        }

        // Calibrate: choose the error threshold with the best training
        // accuracy across candidate quantiles.
        let errors: Vec<f64> = x.iter().map(|xi| net.reconstruction_error(xi)).collect();
        // total_cmp: NaN reconstruction errors (degenerate inputs can
        // overflow the forward pass) sort last instead of panicking, and
        // the quantile candidates below come from the finite prefix.
        let mut sorted = errors.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut best = (0usize, sorted[sorted.len() / 2]);
        for q in 1..40 {
            let threshold = sorted[(q * sorted.len() / 40).min(sorted.len() - 1)];
            let correct = errors
                .iter()
                .zip(y)
                .filter(|(&e, &label)| usize::from(e > threshold) == label)
                .count();
            if correct > best.0 {
                best = (correct, threshold);
            }
        }
        net.threshold = best.1;
        Ok(net)
    }

    #[allow(clippy::type_complexity)]
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let z1 = self.enc1.forward(x);
        let mut a1 = z1.clone();
        relu(&mut a1);
        let latent = self.enc2.forward(&a1);
        let z2 = self.dec1.forward(&latent);
        let mut a2 = z2.clone();
        relu(&mut a2);
        let output = self.dec2.forward(&a2);
        (z1, a1, latent, z2, output)
    }

    fn accumulate_gradients(&self, x: &[f64], g: &mut [Vec<f64>; 8]) {
        let (z1, a1, latent, z2, output) = self.forward(x);
        let mut a2 = z2.clone();
        relu(&mut a2);
        let [g0, g1, g2, g3, g4, g5, g6, g7] = g;
        // L = mean squared error; dL/dout = 2 (out - x) / dims.
        let dims = x.len() as f64;
        let dout: Vec<f64> = output.iter().zip(x).map(|(o, v)| 2.0 * (o - v) / dims).collect();
        let mut da2 = self.dec2.backward(&a2, &dout, g6, g7);
        relu_grad(&z2, &mut da2);
        let dlatent = self.dec1.backward(&latent, &da2, g4, g5);
        let mut da1 = self.enc2.backward(&a1, &dlatent, g2, g3);
        relu_grad(&z1, &mut da1);
        let _ = self.enc1.backward(x, &da1, g0, g1);
    }

    /// Mean-squared reconstruction error of a sample.
    pub fn reconstruction_error(&self, x: &[f64]) -> f64 {
        let (_, _, _, _, output) = self.forward(x);
        output.iter().zip(x).map(|(o, v)| (o - v).powi(2)).sum::<f64>() / x.len() as f64
    }

    /// The calibrated error threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decodes a model from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(AE_MAGIC)?;
        let threshold = d.get_f64()?;
        let mut layer = || -> Result<Dense, DecodeError> {
            let input = d.get_usize()?;
            let output = d.get_usize()?;
            let w = d.get_f64_slice()?;
            let b = d.get_f64_slice()?;
            if w.len() != input * output || b.len() != output {
                return Err(DecodeError::Corrupt("dense arity"));
            }
            Ok(Dense { input, output, w, b })
        };
        Ok(Autoencoder {
            enc1: layer()?,
            enc2: layer()?,
            dec1: layer()?,
            dec2: layer()?,
            threshold,
        })
    }
}

impl Classifier for Autoencoder {
    fn name(&self) -> &'static str {
        "AE"
    }

    fn predict(&self, features: &[f64]) -> usize {
        usize::from(self.reconstruction_error(features) > self.threshold)
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(AE_MAGIC);
        e.put_f64(self.threshold);
        for layer in [&self.enc1, &self.enc2, &self.dec1, &self.dec2] {
            e.put_usize(layer.input);
            e.put_usize(layer.output);
            e.put_f64_slice(&layer.w);
            e.put_f64_slice(&layer.b);
        }
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        let params: usize = [&self.enc1, &self.enc2, &self.dec1, &self.dec2]
            .iter()
            .map(|l| l.w.len() + l.b.len())
            .sum();
        (params * std::mem::size_of::<f64>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benign points on a low-dimensional structure; anomalies off it.
    fn structured_data(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            if i % 8 == 0 {
                // Anomaly: breaks the correlation structure.
                x.push(vec![
                    rng.uniform_range(-3.0, 3.0),
                    rng.uniform_range(-3.0, 3.0),
                    rng.uniform_range(-3.0, 3.0),
                    rng.uniform_range(-3.0, 3.0),
                ]);
                y.push(1);
            } else {
                // Benign: 1-dimensional manifold x -> (x, 2x, -x, 0.5x).
                let t = rng.standard_normal();
                x.push(vec![t, 2.0 * t, -t, 0.5 * t]);
                y.push(0);
            }
        }
        (x, y)
    }

    #[test]
    fn reconstruction_error_separates_classes() {
        let mut rng = SimRng::seed_from(1);
        let (x, y) = structured_data(800, &mut rng);
        let net = Autoencoder::fit(&x, &y, &AutoencoderConfig::default(), &mut rng).unwrap();
        let mean = |label: usize| {
            let items: Vec<f64> = x
                .iter()
                .zip(&y)
                .filter(|(_, &l)| l == label)
                .map(|(xi, _)| net.reconstruction_error(xi))
                .collect();
            items.iter().sum::<f64>() / items.len() as f64
        };
        assert!(mean(1) > 3.0 * mean(0), "anomaly err {} vs benign {}", mean(1), mean(0));
    }

    #[test]
    fn calibrated_detector_classifies_well() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = structured_data(800, &mut rng);
        let net = Autoencoder::fit(&x, &y, &AutoencoderConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| net.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.9, "acc {correct}/800");
    }

    #[test]
    fn fit_survives_nan_features_in_calibration() {
        // A NaN feature row (corrupt capture, divide-by-zero upstream)
        // yields a NaN reconstruction error during threshold calibration.
        // The quantile sort must order it with total_cmp instead of
        // panicking in partial_cmp.
        let mut rng = SimRng::seed_from(4);
        let (mut x, mut y) = structured_data(200, &mut rng);
        x.push(vec![f64::NAN, 1.0, 2.0, 3.0]);
        y.push(1);
        let config = AutoencoderConfig { epochs: 2, ..AutoencoderConfig::default() };
        let net = Autoencoder::fit(&x, &y, &config, &mut rng).expect("NaN row must not abort fit");
        // The calibrated threshold comes from the finite error prefix.
        assert!(net.threshold.is_finite());
        assert_eq!(net.predict(&x[1]), net.predict(&x[1]), "model is usable");
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut rng = SimRng::seed_from(3);
        let (x, y) = structured_data(300, &mut rng);
        let config = AutoencoderConfig { epochs: 4, ..AutoencoderConfig::default() };
        let net = Autoencoder::fit(&x, &y, &config, &mut rng).unwrap();
        let back = Autoencoder::decode(&net.encode()).unwrap();
        assert_eq!(back, net);
        for xi in x.iter().take(50) {
            assert_eq!(net.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SimRng::seed_from(4);
            let (x, y) = structured_data(200, &mut rng);
            let config = AutoencoderConfig { epochs: 2, ..AutoencoderConfig::default() };
            Autoencoder::fit(&x, &y, &config, &mut rng).unwrap().encode()
        };
        assert_eq!(run(), run());
    }
}
